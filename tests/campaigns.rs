//! Job-campaign integration: checkpoint/restart cycles across the real
//! deployments, including the Young-interval planning question the
//! checkpoint literature (§III.B refs) asks.

use hcs_core::{young_interval, JobScript};
use hcs_gpfs::GpfsConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_simkit::units::{GIB, MIB};
use hcs_unifyfs::UnifyFsConfig;
use hcs_vast::vast_on_wombat;

#[test]
fn checkpoint_campaign_orders_storage_systems() {
    // 8 Wombat nodes, 48 ppn, 0.5 GiB of state per rank, 10 cycles.
    let job = JobScript::checkpoint_restart(60.0, 10, 0.5 * GIB, MIB);
    let vast = job.run(&vast_on_wombat(), 8, 48);
    let nvme = job.run(&LocalNvmeConfig::on_wombat(), 8, 48);
    let unify = job.run(&UnifyFsConfig::on_wombat(), 8, 48);

    // All agree on compute; only I/O differs.
    assert_eq!(vast.compute, nvme.compute);
    // The log-structured burst buffer absorbs synchronized checkpoints
    // best at full scale; raw NVMe pays the flush; the shared appliance
    // is contended by all 8 nodes at once.
    assert!(
        unify.step_total("checkpoint") < nvme.step_total("checkpoint"),
        "unify {} vs nvme {}",
        unify.step_total("checkpoint"),
        nvme.step_total("checkpoint")
    );
    assert!(
        unify.step_total("checkpoint") < vast.step_total("checkpoint"),
        "unify {} vs vast {}",
        unify.step_total("checkpoint"),
        vast.step_total("checkpoint")
    );
    assert!(unify.io_fraction() < vast.io_fraction());
}

#[test]
fn young_interval_shifts_with_storage_choice() {
    // Faster checkpoints => checkpoint more often for the same MTBF.
    let job = JobScript::checkpoint_restart(0.0, 1, 0.5 * GIB, MIB);
    let mtbf = 24.0 * 3600.0;
    let vast_ckpt = job.run(&vast_on_wombat(), 8, 48).step_total("checkpoint");
    let unify_ckpt = job
        .run(&UnifyFsConfig::on_wombat(), 8, 48)
        .step_total("checkpoint");
    let vast_interval = young_interval(vast_ckpt, mtbf);
    let unify_interval = young_interval(unify_ckpt, mtbf);
    assert!(
        unify_interval < vast_interval,
        "cheaper checkpoints happen more often: {unify_interval} vs {vast_interval}"
    );
}

#[test]
fn gpfs_campaign_on_lassen_is_deterministic() {
    let job = JobScript::checkpoint_restart(30.0, 5, GIB, MIB);
    let a = job.run(&GpfsConfig::on_lassen(), 16, 44);
    let b = job.run(&GpfsConfig::on_lassen(), 16, 44);
    assert_eq!(a, b);
    assert_eq!(a.per_step.len(), 11);
}
