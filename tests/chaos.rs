//! Chaos-campaign properties (PR 7).
//!
//! 1. **Generation is lawful.** Every generated timeline satisfies its
//!    [`FaultBudget`] and every spec's own [`FaultSpec::check`], for
//!    arbitrary budgets, seeds and indices.
//! 2. **The empty timeline is an identity.** Driving a run through the
//!    forced fault path with no faults reproduces the fault-free twin
//!    bit for bit — the invariant evaluator confirms it on arbitrary
//!    uniform systems.
//! 3. **The failure space is clean.** A seeded 3-system × 201-timeline
//!    smoke campaign completes with zero invariant violations and a
//!    populated Pareto frontier / fragility ranking, twice, equal.
//! 4. **Counterexamples minimize.** An injected artificial violation
//!    shrinks to its causal core (≤ 2 events).

use proptest::prelude::*;

use hcs_core::chaos::{
    evaluate_run, generate_timeline, shrink_timeline, ChaosCampaign, ChaosFaultKind, FaultBudget,
};
use hcs_core::runner::{run_phase, run_phase_chaos};
use hcs_core::scenario::{Deck, IorConfig, SweepAxes, WorkloadClass};
use hcs_core::testing::UniformSystem;
use hcs_core::{FaultSpec, PhaseSpec, Scenario, StageKind, Workload};
use hcs_experiments::run_chaos_campaign;
use hcs_simkit::units::{GIB, MIB};

fn kind_menu(selector: u32) -> Vec<ChaosFaultKind> {
    // The seven non-empty subsets of the three fault families.
    let all = ChaosFaultKind::all();
    let bits = 1 + selector % 7;
    all.iter()
        .enumerate()
        .filter(|(i, _)| bits & (1 << i) != 0)
        .map(|(_, k)| *k)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Property 1: every generated timeline is admitted by the budget
    /// that generated it, and every spec passes its own validation.
    #[test]
    fn generated_timelines_satisfy_their_budget(
        seed in any::<u64>(),
        k in 0u32..=40,
        max_faults in 1u32..=6,
        kinds_sel in 0u32..7,
        max_outage in 0.0..4.0f64,
        min_degrade in 0.05..1.0f64,
        horizon in 0.5..16.0f64,
        n_stages in 1usize..=6,
    ) {
        let budget = FaultBudget {
            max_faults,
            kinds: kind_menu(kinds_sel),
            max_outage_seconds: max_outage,
            min_degrade_factor: min_degrade,
            horizon_seconds: horizon,
        };
        let stages: Vec<StageKind> = StageKind::all()[..n_stages].to_vec();
        let specs = generate_timeline(&budget, &stages, seed, "prop-point", k);
        prop_assert!(budget.admits(&specs).is_ok(), "{:?}", budget.admits(&specs));
        for spec in &specs {
            prop_assert!(spec.check().is_ok());
            prop_assert!(stages.contains(&spec.stage));
        }
        // Index 0 is the reserved empty-timeline probe.
        if k == 0 {
            prop_assert!(specs.is_empty());
        }
        // Same draw twice: generation is a pure function of its inputs.
        let again = generate_timeline(&budget, &stages, seed, "prop-point", k);
        prop_assert_eq!(specs, again);
    }

    /// Property 2: the forced fault path with an empty schedule is
    /// bit-exact against the plain runner, and the evaluator agrees.
    #[test]
    fn empty_timeline_is_bit_exact(
        nodes in 1u32..=8,
        ppn in 1u32..=6,
        pool_gib in 1.0..64.0f64,
        node_gib in 0.1..4.0f64,
        bytes_mib in 1u32..=64,
    ) {
        let system = UniformSystem::new("toy", pool_gib * GIB).with_node_bw(node_gib * GIB);
        let phase = PhaseSpec::seq_write(MIB, bytes_mib as f64 * MIB);
        let twin = run_phase(&system, nodes, ppn, &phase);
        let run = run_phase_chaos(&system, nodes, ppn, &phase, &[]).unwrap();
        prop_assert_eq!(run.outcome.duration.to_bits(), twin.duration.to_bits());
        prop_assert_eq!(
            run.outcome.agg_bandwidth.to_bits(),
            twin.agg_bandwidth.to_bits()
        );
        for (a, b) in run
            .outcome
            .per_node_duration
            .iter()
            .zip(&twin.per_node_duration)
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(run.report.events_applied, 0);
        prop_assert_eq!(run.report.stall_seconds, 0.0);
        let eval = evaluate_run(&[], &run, None, &twin);
        prop_assert!(eval.violations.is_empty(), "{:?}", eval.violations);
        prop_assert!(!eval.checked.is_empty());
    }
}

/// Property 3: a seeded campaign over three real systems — 3 points ×
/// 67 timelines = 201 engine-checked runs — finds zero invariant
/// violations, produces a populated report, and reproduces itself
/// exactly on a second run.
#[test]
fn three_system_smoke_campaign_is_clean() {
    let base = Scenario::new(
        "vast-lassen",
        Workload::Ior(IorConfig::smoke(WorkloadClass::Scientific, 2, 4)),
    );
    let deck = Deck {
        name: "chaos-smoke".into(),
        title: String::new(),
        base,
        axes: SweepAxes {
            systems: vec!["vast-lassen".into(), "gpfs".into(), "lustre-ruby".into()],
            ..SweepAxes::default()
        },
    };
    let mut campaign = ChaosCampaign::new("three-system-smoke", deck);
    campaign.seed = 1726;
    campaign.population = 67;
    let report = run_chaos_campaign(&campaign).unwrap();
    assert_eq!(report.points, 3);
    assert_eq!(report.timelines, 201);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    for stat in &report.invariants {
        assert_eq!(stat.passed, stat.checked, "{:?}", stat.invariant);
        assert!(stat.checked > 0, "{:?} never applied", stat.invariant);
    }
    assert!(!report.pareto.is_empty());
    assert!(!report.fragility.is_empty());
    assert!(report.max_slowdown >= 1.0);
    let again = run_chaos_campaign(&campaign).unwrap();
    assert_eq!(report, again);
}

/// Property 4: the greedy shrinker reduces an artificial violation —
/// "these two specific windows together" buried in a 7-event timeline —
/// to exactly its 2-event causal core.
#[test]
fn injected_violation_minimizes_to_two_events() {
    let specs: Vec<FaultSpec> = (0..7)
        .map(|i| {
            FaultSpec::degrade(
                StageKind::all()[i % StageKind::all().len()],
                i as f64,
                i as f64 + 0.75,
                0.5,
            )
        })
        .collect();
    let needs = |cand: &[FaultSpec]| {
        cand.iter().any(|s| s.start == 2.0) && cand.iter().any(|s| s.start == 5.0)
    };
    let minimized = shrink_timeline(&specs, |cand| needs(cand));
    assert!(minimized.len() <= 2, "not minimal: {minimized:#?}");
    assert!(needs(&minimized), "shrinker lost the violation");
}
