//! Metamorphic invariants on deployment edits and telemetry timelines.
//!
//! Three relations the simulator must respect regardless of the exact
//! calibration numbers:
//!
//! 1. **Widening helps (or is neutral).** `widen_gateway` adds parallel
//!    gateway shards without touching per-shard capacity; doubling the
//!    width must never lower any workload's aggregate bandwidth.
//! 2. **Scale helps until something saturates.** Doubling the client
//!    node count never lowers aggregate bandwidth — for any shard count
//!    `c`, `ceil(2n/c) <= 2*ceil(n/c)`, so the most-loaded shard cannot
//!    get relatively worse under doubling — and once the sweep flattens
//!    the outcome must *attribute* the saturation to a stage.
//! 3. **Timelines are feasible.** The per-epoch utilization samples the
//!    telemetry layer records never exceed capacity at any timestep —
//!    the timeline extension of the PR-1 conservation proptest.

use proptest::prelude::*;

use hcs_core::runner::{run_phase, run_phase_traced};
use hcs_core::telemetry::Recorder;
use hcs_core::{
    DeploymentGraph, PhaseSpec, Reconfigured, Stage, StageKind, StageScope, StorageSystem,
};
use hcs_gpfs::GpfsConfig;
use hcs_simkit::units::MIB;
use hcs_vast::{vast_on_lassen, vast_on_ruby};

// ---------------------------------------------------------------------
// 1. widen_gateway never lowers bandwidth
// ---------------------------------------------------------------------

#[test]
fn widening_the_gateway_never_lowers_bandwidth() {
    let phase = PhaseSpec::seq_read(MIB, 256.0 * MIB);
    // Doubling widths: round-robin shard assignment cannot penalize a
    // doubled shard count (the ceil argument in the module docs).
    for base in [vast_on_lassen, vast_on_ruby] {
        for nodes in [1u32, 4, 16] {
            let mut prev = 0.0_f64;
            for width in [1u32, 2, 4, 8, 16] {
                let sys = Reconfigured::new(base(), move |g: &mut DeploymentGraph| {
                    g.widen_gateway(width)
                });
                let bw = run_phase(&sys, nodes, 8, &phase).agg_bandwidth;
                assert!(
                    bw >= prev * (1.0 - 1e-9),
                    "widen_gateway lowered bandwidth at {nodes} nodes: width {width} \
                     gives {bw}, previous width gave {prev}"
                );
                prev = bw;
            }
        }
    }
}

#[test]
fn widening_helps_where_the_gateway_binds() {
    // Ruby's VAST deployment funnels through 8×40 GbE gateways; with
    // enough clients the funnel binds, so doubling it must materially
    // raise bandwidth — and the narrow run must say the gateway bound it.
    let phase = PhaseSpec::seq_read(MIB, 256.0 * MIB);
    let narrow = run_phase(&vast_on_ruby(), 128, 8, &phase);
    assert_eq!(
        narrow.bottleneck.as_ref().map(|b| b.kind),
        Some(StageKind::Gateway),
        "precondition: the narrow Ruby run should be gateway-bound, got {:?}",
        narrow.bottleneck
    );
    let wide_sys = Reconfigured::new(vast_on_ruby(), |g: &mut DeploymentGraph| {
        g.widen_gateway(16)
    });
    let wide = run_phase(&wide_sys, 128, 8, &phase);
    assert!(
        wide.agg_bandwidth > narrow.agg_bandwidth * 1.2,
        "doubling a binding gateway should raise bandwidth materially: \
         {} vs {}",
        wide.agg_bandwidth,
        narrow.agg_bandwidth
    );
}

// ---------------------------------------------------------------------
// 2. node scaling is monotone up to the attributed saturation stage
// ---------------------------------------------------------------------

#[test]
fn node_doubling_is_monotone_and_saturation_is_attributed() {
    let phase = PhaseSpec::seq_read(MIB, 256.0 * MIB);
    for (name, sys) in [
        (
            "vast-lassen",
            Box::new(vast_on_lassen()) as Box<dyn StorageSystem>,
        ),
        ("vast-ruby", Box::new(vast_on_ruby())),
        ("gpfs-lassen", Box::new(GpfsConfig::on_lassen())),
    ] {
        let counts = [1u32, 2, 4, 8, 16, 32, 64, 128, 256];
        let outcomes: Vec<_> = counts
            .iter()
            .map(|&n| run_phase(sys.as_ref(), n, 8, &phase))
            .collect();
        for (w, pair) in counts.windows(2).zip(outcomes.windows(2)) {
            assert!(
                pair[1].agg_bandwidth >= pair[0].agg_bandwidth * (1.0 - 1e-9),
                "{name}: doubling {} -> {} nodes lowered bandwidth: {} -> {}",
                w[0],
                w[1],
                pair[0].agg_bandwidth,
                pair[1].agg_bandwidth
            );
        }
        // The sweep must flatten eventually (256 full client nodes dwarf
        // these deployments), and the flat point must name a *shared*
        // saturated stage — while scaling is linear, attribution goes to
        // the per-node client mount, which a bigger job simply brings
        // more of; the hand-off to a shared stage is the saturation.
        let last = outcomes.last().unwrap();
        let prev = &outcomes[outcomes.len() - 2];
        assert!(
            last.agg_bandwidth < prev.agg_bandwidth * 1.05,
            "{name}: still scaling at 256 nodes?"
        );
        let kind = last
            .bottleneck
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: saturated point must attribute a stage"))
            .kind;
        assert_ne!(
            kind,
            StageKind::ClientMount,
            "{name}: a flat sweep point cannot be client-bound"
        );
    }
}

#[test]
fn scaling_is_linear_until_a_shared_stage_is_attributed() {
    // The "up to the attributed saturation stage" half of the relation:
    // while the outcome attributes its bottleneck to the per-node client
    // mount, doubling nodes doubles bandwidth exactly; once a shared
    // stage takes over the attribution, further doubling is futile.
    let phase = PhaseSpec::seq_read(MIB, 256.0 * MIB);
    let counts = [1u32, 2, 4, 8, 16, 32, 64, 128, 256];
    for (name, sys) in [
        (
            "vast-lassen",
            Box::new(vast_on_lassen()) as Box<dyn StorageSystem>,
        ),
        ("vast-ruby", Box::new(vast_on_ruby())),
        ("gpfs-lassen", Box::new(GpfsConfig::on_lassen())),
    ] {
        let outcomes: Vec<_> = counts
            .iter()
            .map(|&n| run_phase(sys.as_ref(), n, 8, &phase))
            .collect();
        let mut handed_off = false;
        for pair in outcomes.windows(2) {
            let gain = pair[1].agg_bandwidth / pair[0].agg_bandwidth;
            let kind = |o: &hcs_core::PhaseOutcome| o.bottleneck.as_ref().map(|b| b.kind);
            if kind(&pair[1]) == Some(StageKind::ClientMount) {
                // Both points client-bound: perfectly linear regime.
                assert!(
                    (gain - 2.0).abs() < 2.0 * 1e-6,
                    "{name}: client-bound doubling should double bandwidth, got {gain}"
                );
            }
            if kind(&pair[0]).is_some_and(|k| k != StageKind::ClientMount) {
                // Already saturated on a shared stage: no more scaling,
                // and attribution never hands back to the client mount.
                handed_off = true;
                assert!(
                    gain < 1.05,
                    "{name}: doubling past saturation still gained {gain}x"
                );
                assert_ne!(kind(&pair[1]), Some(StageKind::ClientMount), "{name}");
            }
        }
        assert!(
            handed_off,
            "{name}: sweep never handed off to a shared stage — widen the range"
        );
    }
}

// ---------------------------------------------------------------------
// 3. per-timestep utilization never exceeds capacity (timelines)
// ---------------------------------------------------------------------

/// An arbitrary deployment graph, as in `tests/properties.rs`.
fn deployment_graph() -> impl Strategy<Value = DeploymentGraph> {
    let kind = prop_oneof![
        Just(StageKind::ClientMount),
        Just(StageKind::Gateway),
        Just(StageKind::OpsPool),
        Just(StageKind::ServerPool),
        Just(StageKind::Fabric),
        Just(StageKind::Media),
    ];
    let scope = prop_oneof![
        Just(StageScope::Shared),
        (1u32..5).prop_map(|count| StageScope::Sharded { count }),
        Just(StageScope::PerNode),
    ];
    let stage = (kind, scope, 1.0e8..1.0e11f64);
    (
        prop::collection::vec(stage, 1..=6),
        1.0e8..1.0e10f64, // per_stream_bw
        0.0..1.0e-3f64,   // per_op_latency
    )
        .prop_map(|(stages, stream, lat)| {
            let mut g = DeploymentGraph::new(stream, lat, 0.0);
            for (i, (kind, scope, bw)) in stages.into_iter().enumerate() {
                g.stages.push(Stage {
                    name: format!("s{i}:"),
                    kind,
                    scope,
                    capacity: hcs_core::Capacity::Bandwidth(bw),
                });
            }
            g
        })
}

/// Minimal `StorageSystem` around a fixed graph.
struct GraphSystem(DeploymentGraph);

impl StorageSystem for GraphSystem {
    fn name(&self) -> &str {
        "graph-under-test"
    }

    fn plan(&self, _nodes: u32, _ppn: u32, _phase: &PhaseSpec) -> DeploymentGraph {
        self.0.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every allocation sample of every recorded timeline is feasible,
    /// timelines are time-ordered, and tracing the run changes nothing.
    #[test]
    fn timelines_never_exceed_capacity(
        graph in deployment_graph(),
        nodes in 1u32..6,
        ppn in 1u32..8,
    ) {
        let sys = GraphSystem(graph);
        let phase = PhaseSpec::seq_read(1.0e6, 6.4e7);
        let plain = run_phase(&sys, nodes, ppn, &phase);
        let mut rec = Recorder::new();
        let traced = run_phase_traced(&sys, nodes, ppn, &phase, &mut rec);

        // Zero perturbation, down to the bits.
        prop_assert_eq!(plain.duration.to_bits(), traced.duration.to_bits());
        prop_assert_eq!(plain.agg_bandwidth.to_bits(), traced.agg_bandwidth.to_bits());

        prop_assert!(!rec.timelines().is_empty(), "a traced run records timelines");
        for tl in rec.timelines() {
            prop_assert!(!tl.samples.is_empty(), "{}: empty timeline", tl.name);
            for w in tl.samples.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "{}: samples out of time order", tl.name);
            }
            for &(t, alloc, cap) in &tl.samples {
                prop_assert!(
                    alloc <= cap * (1.0 + 1e-6),
                    "{} over capacity at t={}: {} > {}",
                    tl.name, t, alloc, cap
                );
                prop_assert!(alloc >= 0.0 && cap >= 0.0, "{}: negative sample", tl.name);
            }
            prop_assert!(
                tl.end >= tl.samples.last().unwrap().0,
                "{}: window ends before its last sample", tl.name
            );
        }

        // The summary's derived fractions stay in range.
        let summary = rec.metrics_summary();
        for r in &summary.resources {
            prop_assert!(
                (0.0..=1.0 + 1e-9).contains(&r.busy_fraction),
                "{}: busy fraction {}", r.name, r.busy_fraction
            );
            prop_assert!(
                (0.0..=1.0 + 1e-6).contains(&r.mean_utilization),
                "{}: mean utilization {}", r.name, r.mean_utilization
            );
        }
        for b in &summary.bottlenecks {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&b.share), "share {}", b.share);
        }
    }
}
