//! Golden parity fixtures for the deployment-graph port.
//!
//! The refactor that moved every backend's `provision()` onto the shared
//! [`hcs_core::graph`] planner must not change a single bit of any
//! simulated outcome: the figures, takeaways and calibration tests all
//! sit on top of `run_phase`. This test pins that guarantee. Fixtures
//! were captured from the pre-port imperative implementations (every
//! backend × every `PhaseSpec` preset × several scales) with every
//! float stored as its exact IEEE-754 bit pattern; the current code must
//! reproduce them byte-for-byte.
//!
//! Regenerate (only when an *intentional* physics change lands) with:
//!
//! ```text
//! HCS_BLESS_PARITY=1 cargo test -p hcs-apps --test graph_parity
//! ```

use serde::{Deserialize, Serialize};

use hcs_core::runner::run_phase;
use hcs_core::{PhaseSpec, StorageSystem};
use hcs_gpfs::GpfsConfig;
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_simkit::units::MIB;
use hcs_unifyfs::{DataPlacement, UnifyFsConfig};
use hcs_vast::{vast_on_lassen, vast_on_quartz, vast_on_ruby, vast_on_wombat};

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/graph_parity.json"
);

/// One `run_phase` call and everything numeric it produced, with floats
/// as hex bit patterns so JSON round-trips cannot lose precision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ParityRecord {
    system: String,
    phase: String,
    nodes: u32,
    ppn: u32,
    total_bytes: String,
    duration: String,
    agg_bandwidth: String,
    per_node_duration: Vec<String>,
    /// `(resource name, allocated bits, capacity bits)` in provisioning
    /// order — pins resource names, count and order too.
    utilization: Vec<(String, String, String)>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ParityFile {
    records: Vec<ParityRecord>,
}

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn systems() -> Vec<(String, Box<dyn StorageSystem>)> {
    vec![
        (
            "vast-lassen".into(),
            Box::new(vast_on_lassen()) as Box<dyn StorageSystem>,
        ),
        ("vast-ruby".into(), Box::new(vast_on_ruby())),
        ("vast-quartz".into(), Box::new(vast_on_quartz())),
        ("vast-wombat".into(), Box::new(vast_on_wombat())),
        ("gpfs-lassen".into(), Box::new(GpfsConfig::on_lassen())),
        ("lustre-ruby".into(), Box::new(LustreConfig::on_ruby())),
        ("lustre-quartz".into(), Box::new(LustreConfig::on_quartz())),
        ("nvme-wombat".into(), Box::new(LocalNvmeConfig::on_wombat())),
        ("unifyfs-local".into(), Box::new(UnifyFsConfig::on_wombat())),
        (
            "unifyfs-rr".into(),
            Box::new(UnifyFsConfig::on_wombat().with_placement(DataPlacement::RoundRobin)),
        ),
    ]
}

fn phases() -> Vec<(String, PhaseSpec)> {
    let bytes = 256.0 * MIB;
    vec![
        ("seq_write".into(), PhaseSpec::seq_write(MIB, bytes)),
        ("seq_read".into(), PhaseSpec::seq_read(MIB, bytes)),
        ("random_read".into(), PhaseSpec::random_read(MIB, bytes)),
        (
            "seq_write_fsync".into(),
            PhaseSpec::seq_write(MIB, bytes).with_fsync(true),
        ),
        ("shared_file_write".into(), {
            let mut p = PhaseSpec::seq_write(MIB, bytes);
            p.file_per_proc = false;
            p
        }),
        (
            // File-per-sample DL input pipeline: exercises the ops-pool
            // byte-capacity conversion.
            "meta_heavy_read".into(),
            PhaseSpec::random_read(0.25 * MIB, bytes)
                .with_metadata_ops_per_byte(3.0 / (0.25 * MIB)),
        ),
    ]
}

fn scales() -> Vec<(u32, u32)> {
    vec![(1, 4), (2, 8), (4, 16)]
}

fn capture() -> ParityFile {
    let mut records = Vec::new();
    for (sys_name, sys) in systems() {
        for (phase_name, phase) in phases() {
            for (nodes, ppn) in scales() {
                let out = run_phase(sys.as_ref(), nodes, ppn, &phase);
                records.push(ParityRecord {
                    system: sys_name.clone(),
                    phase: phase_name.clone(),
                    nodes,
                    ppn,
                    total_bytes: bits(out.total_bytes),
                    duration: bits(out.duration),
                    agg_bandwidth: bits(out.agg_bandwidth),
                    per_node_duration: out.per_node_duration.iter().copied().map(bits).collect(),
                    utilization: out
                        .utilization
                        .iter()
                        .map(|(name, alloc, cap)| (name.clone(), bits(*alloc), bits(*cap)))
                        .collect(),
                });
            }
        }
    }
    ParityFile { records }
}

#[test]
fn outcomes_match_pre_port_fixtures() {
    let current = capture();
    if std::env::var_os("HCS_BLESS_PARITY").is_some() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixtures");
        std::fs::write(FIXTURE_PATH, json + "\n").expect("write fixtures");
        return;
    }
    let json = std::fs::read_to_string(FIXTURE_PATH).unwrap_or_else(|e| {
        panic!("missing parity fixtures at {FIXTURE_PATH} ({e}); run with HCS_BLESS_PARITY=1")
    });
    let golden: ParityFile = serde_json::from_str(&json).expect("parse fixtures");
    assert_eq!(
        golden.records.len(),
        current.records.len(),
        "fixture record count changed"
    );
    for (want, got) in golden.records.iter().zip(current.records.iter()) {
        assert_eq!(
            want, got,
            "bit-level outcome drift for {} / {} @ {}x{}",
            want.system, want.phase, want.nodes, want.ppn
        );
    }
}
