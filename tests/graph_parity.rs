//! Golden parity fixtures for the deployment-graph port.
//!
//! The refactor that moved every backend's `provision()` onto the shared
//! [`hcs_core::graph`] planner must not change a single bit of any
//! simulated outcome: the figures, takeaways and calibration tests all
//! sit on top of `run_phase`. This test pins that guarantee. Fixtures
//! were captured from the pre-port imperative implementations (every
//! backend × every `PhaseSpec` preset × several scales) with every
//! float stored as its exact IEEE-754 bit pattern; the current code must
//! reproduce them byte-for-byte.
//!
//! Regenerate (only when an *intentional* physics change lands) with:
//!
//! ```text
//! HCS_BLESS_PARITY=1 cargo test -p hcs-apps --test graph_parity
//! ```

use serde::{Deserialize, Serialize};

use hcs_core::runner::run_phase;
use hcs_core::{PhaseSpec, StorageSystem};
use hcs_gpfs::GpfsConfig;
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_simkit::units::MIB;
use hcs_unifyfs::{DataPlacement, UnifyFsConfig};
use hcs_vast::{vast_on_lassen, vast_on_quartz, vast_on_ruby, vast_on_wombat};

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/graph_parity.json"
);

/// One `run_phase` call and everything numeric it produced, with floats
/// as hex bit patterns so JSON round-trips cannot lose precision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ParityRecord {
    system: String,
    phase: String,
    nodes: u32,
    ppn: u32,
    total_bytes: String,
    duration: String,
    agg_bandwidth: String,
    per_node_duration: Vec<String>,
    /// `(resource name, allocated bits, capacity bits)` in provisioning
    /// order — pins resource names, count and order too.
    utilization: Vec<(String, String, String)>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ParityFile {
    records: Vec<ParityRecord>,
}

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn systems() -> Vec<(String, Box<dyn StorageSystem>)> {
    vec![
        (
            "vast-lassen".into(),
            Box::new(vast_on_lassen()) as Box<dyn StorageSystem>,
        ),
        ("vast-ruby".into(), Box::new(vast_on_ruby())),
        ("vast-quartz".into(), Box::new(vast_on_quartz())),
        ("vast-wombat".into(), Box::new(vast_on_wombat())),
        ("gpfs-lassen".into(), Box::new(GpfsConfig::on_lassen())),
        ("lustre-ruby".into(), Box::new(LustreConfig::on_ruby())),
        ("lustre-quartz".into(), Box::new(LustreConfig::on_quartz())),
        ("nvme-wombat".into(), Box::new(LocalNvmeConfig::on_wombat())),
        ("unifyfs-local".into(), Box::new(UnifyFsConfig::on_wombat())),
        (
            "unifyfs-rr".into(),
            Box::new(UnifyFsConfig::on_wombat().with_placement(DataPlacement::RoundRobin)),
        ),
    ]
}

fn phases() -> Vec<(String, PhaseSpec)> {
    let bytes = 256.0 * MIB;
    vec![
        ("seq_write".into(), PhaseSpec::seq_write(MIB, bytes)),
        ("seq_read".into(), PhaseSpec::seq_read(MIB, bytes)),
        ("random_read".into(), PhaseSpec::random_read(MIB, bytes)),
        (
            "seq_write_fsync".into(),
            PhaseSpec::seq_write(MIB, bytes).with_fsync(true),
        ),
        ("shared_file_write".into(), {
            let mut p = PhaseSpec::seq_write(MIB, bytes);
            p.file_per_proc = false;
            p
        }),
        (
            // File-per-sample DL input pipeline: exercises the ops-pool
            // byte-capacity conversion.
            "meta_heavy_read".into(),
            PhaseSpec::random_read(0.25 * MIB, bytes)
                .with_metadata_ops_per_byte(3.0 / (0.25 * MIB)),
        ),
    ]
}

fn scales() -> Vec<(u32, u32)> {
    vec![(1, 4), (2, 8), (4, 16)]
}

fn capture() -> ParityFile {
    let mut records = Vec::new();
    for (sys_name, sys) in systems() {
        for (phase_name, phase) in phases() {
            for (nodes, ppn) in scales() {
                let out = run_phase(sys.as_ref(), nodes, ppn, &phase);
                records.push(ParityRecord {
                    system: sys_name.clone(),
                    phase: phase_name.clone(),
                    nodes,
                    ppn,
                    total_bytes: bits(out.total_bytes),
                    duration: bits(out.duration),
                    agg_bandwidth: bits(out.agg_bandwidth),
                    per_node_duration: out.per_node_duration.iter().copied().map(bits).collect(),
                    utilization: out
                        .utilization
                        .iter()
                        .map(|(name, alloc, cap)| (name.clone(), bits(*alloc), bits(*cap)))
                        .collect(),
                });
            }
        }
    }
    ParityFile { records }
}

// ---------------------------------------------------------------------------
// Class-split fixtures: the equivalence-class planner must be invisible.
//
// When the planner aggregates a per-node stage into one multi-instance
// resource, a fault spec naming a single member must still behave
// exactly like the PR-5 expanded resolution: the planner splits the
// class so the named node becomes its own (exactly-named) resource, and
// the resolved timeline and every simulated outcome — including the
// `ResilienceMetrics` of the shipped outage example deck — stay
// bit-identical to the expanded plan's.

use hcs_core::graph::{with_forced_aggregation, AggregateMode, PlanOptions};
use hcs_core::runner::{resolve_faults, resolve_faults_planned};
use hcs_core::{FaultSpec, StageKind};
use hcs_experiments::deck::run_scenario_metered;
use hcs_simkit::flownet::FlowNet;

/// A timeline flattened to comparable, bit-exact tuples. Events are
/// compared by *resource name*, not id, so an aggregated and an
/// expanded plan (which allocate different id spaces) can be diffed.
fn named_events(
    timeline: &hcs_simkit::faults::FaultTimeline,
    net: &FlowNet,
) -> Vec<(String, u64, u64)> {
    let mut v: Vec<(String, u64, u64)> = timeline
        .events()
        .iter()
        .map(|e| {
            (
                net.resource_name(e.resource).to_string(),
                e.at.to_bits(),
                e.factor.to_bits(),
            )
        })
        .collect();
    v.sort();
    v
}

/// A named per-node fault inside an aggregated class splits the class
/// and resolves to exactly the events the expanded PR-5 path produces.
#[test]
fn named_fault_split_resolves_like_expanded_plan() {
    let sys = vast_on_lassen();
    let phase = PhaseSpec::seq_write(MIB, 64.0 * MIB);
    let faults = vec![FaultSpec::outage(StageKind::ClientMount, 0.2, 0.4).named("vast:mount2")];

    // Expanded plan: per-node resources, the original resolution path.
    let mut net_e = FlowNet::new();
    let prov_e = sys.provision_classed(
        &mut net_e,
        4,
        4,
        &phase,
        &PlanOptions {
            aggregate: AggregateMode::Never,
            faults: &faults,
        },
    );
    assert!(prov_e.aggregates.is_empty(), "Never must expand");
    let tl_e = resolve_faults(&faults, &net_e, &prov_e.stage_kinds).expect("expanded resolves");

    // Aggregated plan: the named node must be split into a singleton
    // aggregate carrying its exact expanded name.
    let mut net_a = FlowNet::new();
    let prov_a = sys.provision_classed(
        &mut net_a,
        4,
        4,
        &phase,
        &PlanOptions {
            aggregate: AggregateMode::Always,
            faults: &faults,
        },
    );
    let mount_aggs: Vec<_> = prov_a
        .aggregates
        .iter()
        .filter(|a| a.stage_name == "vast:mount")
        .collect();
    assert_eq!(mount_aggs.len(), 2, "class must split into two");
    let singleton = mount_aggs
        .iter()
        .find(|a| a.members == vec![2])
        .expect("named node split off as a singleton");
    assert_eq!(net_a.resource_name(singleton.id), "vast:mount2");
    let rest = mount_aggs.iter().find(|a| a.members.len() == 3).unwrap();
    assert_eq!(rest.members, vec![0, 1, 3]);

    let tl_a = resolve_faults_planned(&faults, &net_a, &prov_a).expect("aggregated resolves");
    // Both plans schedule the same two events on the same-named
    // resource; the expanded plan's events land on its per-node
    // "vast:mount2", the aggregated plan's on the split singleton.
    let want = vec![
        (
            "vast:mount2".to_string(),
            0.2f64.to_bits(),
            0.0f64.to_bits(),
        ),
        (
            "vast:mount2".to_string(),
            0.4f64.to_bits(),
            1.0f64.to_bits(),
        ),
    ];
    assert_eq!(named_events(&tl_e, &net_e), want);
    assert_eq!(named_events(&tl_a, &net_a), want);
}

/// The shipped outage example deck (`fault.gateway-outage.json`) yields
/// bit-identical `ResilienceMetrics` whether each point runs on the
/// expanded or the class-aggregated plan. Points run sequentially in
/// this thread: the forced-aggregation override is thread-local, so the
/// rayon deck executor must not be used here.
#[test]
fn outage_example_deck_resilience_is_aggregation_invariant() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/fault.gateway-outage.json"
    );
    let json = std::fs::read_to_string(path).expect("shipped outage deck");
    let deck: hcs_core::Deck = serde_json::from_str(&json).expect("deck parses");
    let points = deck.expand();
    assert_eq!(points.len(), 2, "fault-free twin + faulted point");
    for scenario in &points {
        let expanded = with_forced_aggregation(false, || run_scenario_metered(scenario));
        let aggregated = with_forced_aggregation(true, || run_scenario_metered(scenario));
        let (me, ma) = (
            expanded.metrics.as_ref().unwrap(),
            aggregated.metrics.as_ref().unwrap(),
        );
        let bw_e = expanded.outcome.ior().outcome.summary.mean;
        let bw_a = aggregated.outcome.ior().outcome.summary.mean;
        assert_eq!(
            bw_e.to_bits(),
            bw_a.to_bits(),
            "bandwidth drift on '{}'",
            scenario.name
        );
        assert_eq!(
            me.solver_epochs, ma.solver_epochs,
            "epoch drift on '{}'",
            scenario.name
        );
        match (&me.resilience, &ma.resilience) {
            (None, None) => assert!(scenario.faults.is_empty()),
            (Some(re), Some(ra)) => {
                for (label, e, a) in [
                    ("slowdown_factor", re.slowdown_factor, ra.slowdown_factor),
                    (
                        "fault_free_seconds",
                        re.fault_free_seconds,
                        ra.fault_free_seconds,
                    ),
                    ("faulted_seconds", re.faulted_seconds, ra.faulted_seconds),
                    ("stall_seconds", re.stall_seconds, ra.stall_seconds),
                    ("drain_seconds", re.drain_seconds, ra.drain_seconds),
                ] {
                    assert_eq!(
                        e.to_bits(),
                        a.to_bits(),
                        "{label} drift on '{}': {e} vs {a}",
                        scenario.name
                    );
                }
                assert_eq!(re.fault_events, ra.fault_events);
            }
            _ => panic!(
                "resilience presence differs across plans on '{}'",
                scenario.name
            ),
        }
    }
}

#[test]
fn outcomes_match_pre_port_fixtures() {
    let current = capture();
    if std::env::var_os("HCS_BLESS_PARITY").is_some() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixtures");
        std::fs::write(FIXTURE_PATH, json + "\n").expect("write fixtures");
        return;
    }
    let json = std::fs::read_to_string(FIXTURE_PATH).unwrap_or_else(|e| {
        panic!("missing parity fixtures at {FIXTURE_PATH} ({e}); run with HCS_BLESS_PARITY=1")
    });
    let golden: ParityFile = serde_json::from_str(&json).expect("parse fixtures");
    assert_eq!(
        golden.records.len(),
        current.records.len(),
        "fixture record count changed"
    );
    for (want, got) in golden.records.iter().zip(current.records.iter()) {
        assert_eq!(
            want, got,
            "bit-level outcome drift for {} / {} @ {}x{}",
            want.system, want.phase, want.nodes, want.ppn
        );
    }
}
