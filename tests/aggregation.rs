//! Differential tests for the equivalence-class planner and the
//! incremental max-min solver.
//!
//! The planner contract: below [`AGGREGATE_NODE_THRESHOLD`] nodes
//! nothing changes (the golden parity fixtures pin that bit-for-bit);
//! when aggregation kicks in, a run over N interchangeable nodes
//! compiles to one weighted flow per *class* over aggregate resources —
//! and for the symmetric shapes the runner produces (weight 1.0,
//! uniform per-stage capacities, balanced classes), the outcome is
//! IEEE-754 bit-identical to the expanded plan. The proptest suites
//! below drive random graphs × node counts × capacities through both
//! plans and assert exact bit equality; the incremental-solver suite
//! churns a raw [`FlowNet`] and checks every allocation against the
//! from-scratch progressive-filling oracle.

use proptest::prelude::*;

use hcs_core::graph::{
    with_forced_aggregation, AggregateMode, PlanOptions, AGGREGATE_NODE_THRESHOLD,
};
use hcs_core::runner::{run_phase, run_phase_traced, run_phase_with_faults};
use hcs_core::scenario::FaultSpec;
use hcs_core::telemetry::Recorder;
use hcs_core::testing::UniformSystem;
use hcs_core::{DeploymentGraph, PhaseSpec, Stage, StageKind};
use hcs_simkit::units::{GIB, MIB};
use hcs_simkit::{FlowNet, FlowSpec, ResourceSpec};

/// A test system that plans a fixed graph: per-node mount, sharded
/// gateway, shared pool — the smallest shape exercising every stage
/// scope the class partitioner handles.
struct ShardedSystem {
    graph: DeploymentGraph,
}

impl ShardedSystem {
    fn new(shards: u32, mount_bw: f64, gw_bw: f64, pool_bw: f64, stream_bw: f64) -> Self {
        let graph = DeploymentGraph::new(stream_bw, 0.0, 0.0)
            .stage(Stage::per_node("t:mount", StageKind::ClientMount, mount_bw))
            .stage(Stage::sharded("t:gw", StageKind::Gateway, shards, gw_bw))
            .stage(Stage::shared("t:pool", StageKind::ServerPool, pool_bw));
        ShardedSystem { graph }
    }
}

impl hcs_core::StorageSystem for ShardedSystem {
    fn name(&self) -> &str {
        "t"
    }
    fn plan(&self, _nodes: u32, _ppn: u32, _phase: &PhaseSpec) -> DeploymentGraph {
        self.graph.clone()
    }
}

#[test]
fn partition_is_deterministic_and_splits_on_named_faults() {
    let sys = ShardedSystem::new(2, GIB, 4.0 * GIB, 16.0 * GIB, f64::INFINITY);
    let phase = PhaseSpec::seq_write(MIB, 16.0 * MIB);
    let faults = [FaultSpec::outage(StageKind::ClientMount, 0.1, 0.2).named("t:mount3")];
    let mut net = FlowNet::new();
    let prov = sys.graph.provision_classed(
        &mut net,
        8,
        &phase,
        &PlanOptions {
            aggregate: AggregateMode::Always,
            faults: &faults,
        },
    );
    // lcm(shards)=2, plus the name filter splits node 3 out of the
    // residue-1 class. First-occurrence order over nodes 0..8:
    let members: Vec<Vec<u32>> = prov.classes.iter().map(|c| c.members.clone()).collect();
    assert_eq!(members, vec![vec![0, 2, 4, 6], vec![1, 5, 7], vec![3]]);
    assert_eq!(prov.client_nodes(), 8);
    assert!(prov.node_paths.is_empty());
    // Aggregate naming: multi-member classes are labeled, the split-off
    // singleton keeps its exact expanded name (jitter RNG streams split
    // by resource name).
    let names: Vec<&str> = prov
        .aggregates
        .iter()
        .map(|a| net.resource_name(a.id))
        .collect();
    assert_eq!(names, vec!["t:mount[4x0]", "t:mount[3x1]", "t:mount3"]);
    // Deterministic: a second provisioning yields the same partition.
    let mut net2 = FlowNet::new();
    let prov2 = sys.graph.provision_classed(
        &mut net2,
        8,
        &phase,
        &PlanOptions {
            aggregate: AggregateMode::Always,
            faults: &faults,
        },
    );
    let members2: Vec<Vec<u32>> = prov2.classes.iter().map(|c| c.members.clone()).collect();
    assert_eq!(members, members2);
}

#[test]
fn auto_mode_only_aggregates_past_the_threshold() {
    let sys = ShardedSystem::new(2, GIB, 4.0 * GIB, 16.0 * GIB, f64::INFINITY);
    let phase = PhaseSpec::seq_write(MIB, 16.0 * MIB);
    let mut net = FlowNet::new();
    let small = sys
        .graph
        .provision_classed(&mut net, 8, &phase, &PlanOptions::auto(&[]));
    assert!(small.classes.is_empty(), "paper scale stays expanded");
    assert_eq!(small.node_paths.len(), 8);
    let mut net = FlowNet::new();
    let big = sys.graph.provision_classed(
        &mut net,
        AGGREGATE_NODE_THRESHOLD + 1,
        &phase,
        &PlanOptions::auto(&[]),
    );
    assert!(!big.classes.is_empty(), "datacenter scale aggregates");
    assert_eq!(big.client_nodes(), AGGREGATE_NODE_THRESHOLD as usize + 1);
}

/// Runs the phase under both plans and returns (expanded, aggregated).
fn both_modes<T>(f: impl Fn() -> T) -> (T, T) {
    let expanded = with_forced_aggregation(false, &f);
    let aggregated = with_forced_aggregation(true, &f);
    (expanded, aggregated)
}

#[test]
fn counters_survive_aggregation_unchanged() {
    let sys = UniformSystem::new("toy", 10.0 * GIB).with_node_bw(GIB);
    let phase = PhaseSpec::seq_write(MIB, 64.0 * MIB);
    let (exp, agg) = both_modes(|| {
        let mut rec = Recorder::new();
        let out = run_phase_traced(&sys, 6, 4, &phase, &mut rec);
        (out, rec.solver_epochs(), rec.flow_groups())
    });
    // Per-member-equivalent counters: PointMetrics and BENCH_deck.json
    // stay comparable across the refactor.
    assert_eq!(exp.1, agg.1, "solver epochs");
    assert_eq!(exp.2, agg.2, "flow groups (per-member-equivalent)");
    assert_eq!(exp.2, 6, "one group per node either way");
    assert_eq!(exp.0.duration.to_bits(), agg.0.duration.to_bits());
    assert_eq!(exp.0.agg_bandwidth.to_bits(), agg.0.agg_bandwidth.to_bits());
    for (a, b) in exp.0.per_node_duration.iter().zip(&agg.0.per_node_duration) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn fault_accounting_survives_aggregation_unchanged() {
    let sys = UniformSystem::new("toy", 100.0 * GIB).with_node_bw(GIB);
    let phase = PhaseSpec::seq_write(MIB, 64.0 * MIB);
    let faults = [FaultSpec::outage(StageKind::ClientMount, 0.01, 0.03)];
    let (exp, agg) = both_modes(|| run_phase_with_faults(&sys, 6, 2, &phase, &faults).unwrap());
    assert_eq!(exp.0.duration.to_bits(), agg.0.duration.to_bits());
    assert_eq!(
        exp.1.stall_seconds.to_bits(),
        agg.1.stall_seconds.to_bits(),
        "stall seconds survive aggregation"
    );
    // 6 mounts x (outage + recovery): the aggregate counts each of its
    // member instances per capacity event.
    assert_eq!(exp.1.events_applied, 12);
    assert_eq!(agg.1.events_applied, 12);
}

#[test]
fn named_mount_fault_splits_class_and_matches_expanded() {
    let sys = UniformSystem::new("toy", 100.0 * GIB).with_node_bw(GIB);
    let phase = PhaseSpec::seq_write(MIB, 64.0 * MIB);
    let faults = [FaultSpec::outage(StageKind::ClientMount, 0.01, 0.03).named("toy:mount5")];
    let (exp, agg) = both_modes(|| run_phase_with_faults(&sys, 6, 2, &phase, &faults).unwrap());
    assert_eq!(exp.0.duration.to_bits(), agg.0.duration.to_bits());
    for (a, b) in exp.0.per_node_duration.iter().zip(&agg.0.per_node_duration) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(exp.1.stall_seconds.to_bits(), agg.1.stall_seconds.to_bits());
    // Exactly one mount is hit in both plans.
    assert_eq!(exp.1.events_applied, 2);
    assert_eq!(agg.1.events_applied, 2);
}

#[test]
fn million_clients_plan_and_run() {
    let sys = UniformSystem::new("dc", 100.0 * GIB).with_node_bw(GIB);
    let phase = PhaseSpec::seq_write(MIB, 16.0 * MIB);
    let out = run_phase(&sys, 1_000_000, 1, &phase);
    assert_eq!(out.per_node_duration.len(), 1_000_000);
    assert!(
        (out.agg_bandwidth - 100.0 * GIB).abs() < 0.1 * GIB,
        "pool saturates: {}",
        out.agg_bandwidth / GIB
    );
}

proptest! {
    /// Aggregated vs expanded, fault-free: random balanced shapes
    /// (nodes a multiple of the shard count, uniform per-stage
    /// capacities — exactly the symmetry the runner's weight-1.0 flows
    /// guarantee), bit-identical completion.
    #[test]
    fn aggregated_matches_expanded_bitwise(
        shards in 1u32..=4,
        k in 1u32..=5,
        ppn in 1u32..=4,
        mount_bw in 1.0e8..1.0e10f64,
        gw_bw in 1.0e8..1.0e10f64,
        pool_bw in 1.0e8..1.0e10f64,
        stream_bw in prop::option::of(1.0e7..1.0e9f64),
        bytes_mib in 1u32..=64,
    ) {
        let nodes = shards * k;
        let sys = ShardedSystem::new(
            shards, mount_bw, gw_bw, pool_bw,
            stream_bw.unwrap_or(f64::INFINITY),
        );
        let phase = PhaseSpec::seq_write(MIB, bytes_mib as f64 * MIB);
        let (exp, agg) = both_modes(|| run_phase(&sys, nodes, ppn, &phase));
        prop_assert_eq!(exp.duration.to_bits(), agg.duration.to_bits());
        prop_assert_eq!(exp.agg_bandwidth.to_bits(), agg.agg_bandwidth.to_bits());
        for (a, b) in exp.per_node_duration.iter().zip(&agg.per_node_duration) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Aggregated vs expanded under a named per-node fault: the class
    /// split keeps resolution all-or-nothing and the outcome
    /// bit-identical. Unsharded graphs only — the split-off singleton
    /// freezes alone (exact arithmetic), while shard-load asymmetry
    /// during the window would introduce benign last-ulp divergence.
    #[test]
    fn faulted_split_matches_expanded_bitwise(
        k in 2u32..=8,
        ppn in 1u32..=4,
        mount_bw in 1.0e8..1.0e10f64,
        pool_bw in 1.0e8..1.0e10f64,
        bytes_mib in 8u32..=64,
        outage in any::<bool>(),
        factor in 0.1..0.9f64,
    ) {
        let sys = ShardedSystem::new(1, mount_bw, 1.0e11, pool_bw, f64::INFINITY);
        let phase = PhaseSpec::seq_write(MIB, bytes_mib as f64 * MIB);
        // `k-1` is unambiguous under the digit-suffix name filter for
        // any k <= 10 (no node index extends it).
        let name = format!("t:mount{}", k - 1);
        let spec = if outage {
            FaultSpec::outage(StageKind::ClientMount, 0.001, 0.002)
        } else {
            FaultSpec::degrade(StageKind::ClientMount, 0.001, 0.002, factor)
        };
        let faults = [spec.named(name)];
        let (exp, agg) =
            both_modes(|| run_phase_with_faults(&sys, k, ppn, &phase, &faults).unwrap());
        prop_assert_eq!(exp.0.duration.to_bits(), agg.0.duration.to_bits());
        prop_assert_eq!(
            exp.1.stall_seconds.to_bits(),
            agg.1.stall_seconds.to_bits()
        );
        prop_assert_eq!(exp.1.events_applied, agg.1.events_applied);
        for (a, b) in exp.0.per_node_duration.iter().zip(&agg.0.per_node_duration) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Incremental vs scratch: arbitrary graphs and weights (no
    /// symmetry needed — both solvers share the inner arithmetic), the
    /// dirty-set solver's allocations match the full progressive-filling
    /// re-solve after every mutation.
    #[test]
    fn incremental_solver_matches_scratch(
        caps in prop::collection::vec(1.0e6..1.0e9f64, 1..5),
        flows in prop::collection::vec(
            (
                prop::collection::vec(0usize..4, 1..4),
                1.0e3..1.0e8f64,
                0.1..8.0f64,
                1u32..5,
            ),
            1..10,
        ),
        kills in prop::collection::vec(any::<bool>(), 10),
        recap in prop::option::of((0usize..4, 0.5..2.0f64)),
    ) {
        let mut net = FlowNet::new();
        let ids: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, c)| net.add_resource(ResourceSpec::new(format!("r{i}"), *c)))
            .collect();
        let check = |net: &mut FlowNet, keys: &[hcs_simkit::FlowId]| {
            let oracle = net.scratch_rates();
            for key in keys {
                if let Some(rate) = net.flow_rate(*key) {
                    let want = oracle
                        .iter()
                        .find(|(k, _)| k == key)
                        .map(|(_, r)| *r)
                        .expect("live flow in oracle");
                    prop_assert_eq!(rate.to_bits(), want.to_bits());
                }
            }
            Ok(())
        };
        let mut keys = Vec::new();
        for (path, bytes, weight, mult) in &flows {
            let path: Vec<_> = path.iter().map(|&i| ids[i % ids.len()]).collect();
            let key = net.add_flow(
                FlowSpec::new(path, *bytes)
                    .with_weight(*weight)
                    .with_multiplicity(*mult),
            );
            keys.push(key);
            check(&mut net, &keys)?;
        }
        if let Some((ri, factor)) = recap {
            let ri = ri % ids.len();
            net.set_resource_capacity(ids[ri], caps[ri] * factor);
            check(&mut net, &keys)?;
        }
        for (key, kill) in keys.clone().iter().zip(&kills) {
            if *kill {
                net.cancel(*key);
            } else {
                net.advance_to(net.now() + 1e-3);
            }
            check(&mut net, &keys)?;
        }
    }
}
