//! Latency-provenance guarantees on real runs.
//!
//! Two properties make the blame attribution trustworthy:
//!
//! 1. **Conservation** — every completed op's shares reassemble its
//!    measured submit→finish latency *exactly*: ideal service is
//!    defined as the canonical subtraction-chain remainder
//!    `((((latency ⊖ queueing) ⊖ stall) ⊖ blame₀) … ⊖ blameₖ)`, so
//!    recomputing the chain from the stored components must reproduce
//!    the stored ideal bit-for-bit, on arbitrary topologies driven
//!    through the real max-min solver.
//! 2. **Non-perturbation** — the probe is a pure listener: an
//!    observed run's outcome is bit-identical to the unobserved twin
//!    on every field, with or without faults.

use hcs_core::{Arrival, Discipline, FaultSpec, StageKind};
use hcs_ior::{run_ior_open_loop, run_ior_open_loop_observed, IorConfig, WorkloadClass};
use hcs_simkit::{FlowNet, FlowSpec, ProvenanceHandle, ProvenanceLog, ResourceSpec};
use proptest::prelude::*;

/// Asserts every op in the log conserves: the stored ideal equals the
/// recomputed subtraction-chain remainder bitwise, and the naive
/// reassembly lands within float-addition rounding of the latency.
fn assert_conserved(log: &ProvenanceLog) {
    for op in &log.ops {
        assert_eq!(
            op.ideal.to_bits(),
            op.remainder().to_bits(),
            "op {:?}: stored ideal is not the canonical remainder",
            op.id
        );
        let blame: f64 = op.blame.iter().map(|(_, s)| s).sum();
        let reassembled = op.queueing + op.stall + blame + op.ideal;
        assert!(
            (reassembled - op.latency).abs() <= 1e-9 * op.latency.abs().max(1.0),
            "op {:?}: shares reassemble {} but latency is {}",
            op.id,
            reassembled,
            op.latency
        );
        assert!(op.queueing >= 0.0 && op.stall >= 0.0, "negative share");
        assert!(op.blame.iter().all(|(_, s)| *s >= 0.0), "negative blame");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random topologies, sizes, arrival times, queueing backlogs,
    /// multiplicities and rate caps through the real solver: every
    /// completed op's decomposition conserves exactly.
    #[test]
    fn per_op_blame_shares_reassemble_measured_latency(
        caps in prop::collection::vec(1.0f64..1000.0, 1..4),
        flows in prop::collection::vec(
            (
                0u8..8,                         // path mask over the resources
                1.0f64..5000.0,                 // bytes
                0.0f64..10.0,                   // admission time
                0.0f64..3.0,                    // submit→admission backlog
                1u32..4,                        // multiplicity
                prop::option::of(1.0f64..500.0) // optional rate cap
            ),
            1..12
        ),
    ) {
        let mut net = FlowNet::new();
        let prov = ProvenanceHandle::attach(&mut net);
        let rs: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, c)| net.add_resource(ResourceSpec::new(format!("r{i}"), *c)))
            .collect();
        let mut flows = flows;
        flows.sort_by(|a, b| a.2.total_cmp(&b.2));
        let mut expected = 0u32;
        for (mask, bytes, admit_t, backlog, mult, rate_cap) in flows {
            let path: Vec<_> = rs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, r)| *r)
                .collect();
            let path = if path.is_empty() { vec![rs[0]] } else { path };
            net.advance_to(admit_t);
            let mut spec = FlowSpec::new(path, bytes)
                .with_multiplicity(mult)
                .submitted_at((admit_t - backlog).max(0.0));
            if let Some(cap) = rate_cap {
                spec = spec.with_rate_cap(cap);
            }
            net.add_flow(spec);
            expected += 1;
        }
        net.run_to_completion(|_, _| {});
        let log = prov.snapshot();
        prop_assert_eq!(log.ops.len(), expected as usize);
        assert_conserved(&log);
    }
}

fn open_arrival(rate: f64, seed: u64) -> Arrival {
    Arrival::Open {
        rate,
        discipline: Discipline::Poisson,
        duration: 0.3,
        seed,
    }
}

/// Provenance-on must be bit-identical to provenance-off on every
/// outcome field — the PR-2 parity discipline applied to the probe.
#[test]
fn observed_open_loop_runs_match_unobserved_bit_for_bit() {
    let vast = hcs_vast::vast_on_lassen();
    let config = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4);
    let arrival = open_arrival(400.0, 11);
    let (plain_report, plain) = run_ior_open_loop(&vast, &config, &arrival, &[]).expect("runs");
    let (obs_report, observed) =
        run_ior_open_loop_observed(&vast, &config, &arrival, &[], None).expect("runs");
    assert_eq!(plain_report, obs_report, "IOR report perturbed");
    let prov = observed
        .provenance
        .as_ref()
        .expect("observed run decomposes");
    assert_eq!(prov.ops, observed.ops_completed, "every op decomposed");
    assert!(plain.provenance.is_none());
    let mut scrubbed = observed.clone();
    scrubbed.provenance = None;
    assert_eq!(plain, scrubbed, "open-loop outcome perturbed by the probe");
}

/// Same parity under a mid-run outage: fault stall windows are
/// observed, not altered, and the faulted tail stays bit-identical.
#[test]
fn observed_faulted_runs_match_and_land_stall_in_the_decomposition() {
    let vast = hcs_vast::vast_on_lassen();
    let config = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4);
    let arrival = open_arrival(200.0, 7);
    let faults = vec![FaultSpec::outage(StageKind::Gateway, 0.05, 0.15)];
    let (plain_report, plain) = run_ior_open_loop(&vast, &config, &arrival, &faults).expect("runs");
    let (obs_report, observed) =
        run_ior_open_loop_observed(&vast, &config, &arrival, &faults, None).expect("runs");
    assert_eq!(plain_report, obs_report, "faulted IOR report perturbed");
    let prov = observed.provenance.as_ref().expect("decomposes");
    assert!(
        prov.stall_seconds > 0.0,
        "a mid-run outage must surface as stall time"
    );
    let mut scrubbed = observed.clone();
    scrubbed.provenance = None;
    assert_eq!(plain, scrubbed, "faulted outcome perturbed by the probe");
}
