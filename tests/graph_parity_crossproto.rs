//! Golden parity fixtures for the cross-protocol backends.
//!
//! The object gateway and DAOS land after the deployment-graph port, so
//! unlike `graph_parity` these fixtures were not captured from a
//! pre-port implementation — they pin the *initial* physics of both
//! backends so later planner refactors (or accidental constant edits)
//! cannot silently move a figure. Every float is stored as its exact
//! IEEE-754 bit pattern.
//!
//! The second half proves the equivalence-class planner handles the two
//! shapes these backends introduce — a *sharded ops-rate* gateway stage
//! (objstore's request plane) and a sharded SCM metadata pool behind a
//! mountless client (DAOS) — bit-identically to the expanded plan at
//! datacenter scale.
//!
//! Regenerate (only when an *intentional* physics change lands) with:
//!
//! ```text
//! HCS_BLESS_PARITY=1 cargo test -p hcs-apps --test graph_parity_crossproto
//! ```

use serde::{Deserialize, Serialize};

use hcs_core::graph::with_forced_aggregation;
use hcs_core::runner::run_phase;
use hcs_core::{PhaseSpec, Reconfigured, StorageSystem};
use hcs_daos::{native_api_edit, DaosConfig, DaosInterface};
use hcs_objstore::ObjectGatewayConfig;
use hcs_simkit::units::{KIB, MIB};

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/graph_parity_crossproto.json"
);

/// One `run_phase` call and everything numeric it produced, with floats
/// as hex bit patterns so JSON round-trips cannot lose precision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ParityRecord {
    system: String,
    phase: String,
    nodes: u32,
    ppn: u32,
    total_bytes: String,
    duration: String,
    agg_bandwidth: String,
    per_node_duration: Vec<String>,
    /// `(resource name, allocated bits, capacity bits)` in provisioning
    /// order — pins resource names, count and order too.
    utilization: Vec<(String, String, String)>,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ParityFile {
    records: Vec<ParityRecord>,
}

fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn systems() -> Vec<(String, Box<dyn StorageSystem>)> {
    vec![
        (
            "objstore-wombat".into(),
            Box::new(ObjectGatewayConfig::on_wombat()) as Box<dyn StorageSystem>,
        ),
        (
            "objstore-wide".into(),
            Box::new(ObjectGatewayConfig::on_wombat().with_gateways(16)),
        ),
        ("daos-posix".into(), Box::new(DaosConfig::on_wombat())),
        (
            "daos-native".into(),
            Box::new(DaosConfig::on_wombat().with_interface(DaosInterface::NativeObject)),
        ),
        (
            // The deck-sweepable form of the interface ablation: the
            // POSIX base under the native-API graph edit. Must track
            // the md-pool capacity of daos-native (the edit is the
            // whole point of shipping one registry entry, not two).
            "daos-posix+edit".into(),
            Box::new(Reconfigured::new(DaosConfig::on_wombat(), |g| {
                native_api_edit().apply(g)
            })),
        ),
    ]
}

fn phases() -> Vec<(String, PhaseSpec)> {
    let bytes = 256.0 * MIB;
    vec![
        // 4 KiB ops: the object gateway's request plane and DAOS's SCM
        // metadata pool are the binding stages.
        ("small_write".into(), PhaseSpec::seq_write(4.0 * KIB, bytes)),
        ("small_read".into(), PhaseSpec::seq_read(4.0 * KIB, bytes)),
        // 1 MiB: the crossover regime.
        ("seq_write".into(), PhaseSpec::seq_write(MIB, bytes)),
        ("random_read".into(), PhaseSpec::random_read(MIB, bytes)),
        // 64 MiB: multipart fan-out through the gateway pool (8 parts),
        // NVMe bulk pool on DAOS.
        (
            "bulk_read".into(),
            PhaseSpec::seq_read(64.0 * MIB, 1024.0 * MIB),
        ),
        // fsync lands on SCM for DAOS (effectively free) and is
        // absorbed by the gateway's backend flash on objstore.
        (
            "seq_write_fsync".into(),
            PhaseSpec::seq_write(MIB, bytes).with_fsync(true),
        ),
    ]
}

fn scales() -> Vec<(u32, u32)> {
    vec![(1, 4), (2, 8), (4, 16)]
}

fn capture() -> ParityFile {
    let mut records = Vec::new();
    for (sys_name, sys) in systems() {
        for (phase_name, phase) in phases() {
            for (nodes, ppn) in scales() {
                let out = run_phase(sys.as_ref(), nodes, ppn, &phase);
                records.push(ParityRecord {
                    system: sys_name.clone(),
                    phase: phase_name.clone(),
                    nodes,
                    ppn,
                    total_bytes: bits(out.total_bytes),
                    duration: bits(out.duration),
                    agg_bandwidth: bits(out.agg_bandwidth),
                    per_node_duration: out.per_node_duration.iter().copied().map(bits).collect(),
                    utilization: out
                        .utilization
                        .iter()
                        .map(|(name, alloc, cap)| (name.clone(), bits(*alloc), bits(*cap)))
                        .collect(),
                });
            }
        }
    }
    ParityFile { records }
}

#[test]
fn outcomes_match_blessed_fixtures() {
    let current = capture();
    if std::env::var_os("HCS_BLESS_PARITY").is_some() {
        let json = serde_json::to_string_pretty(&current).expect("serialize fixtures");
        std::fs::write(FIXTURE_PATH, json + "\n").expect("write fixtures");
        return;
    }
    let json = std::fs::read_to_string(FIXTURE_PATH).unwrap_or_else(|e| {
        panic!("missing parity fixtures at {FIXTURE_PATH} ({e}); run with HCS_BLESS_PARITY=1")
    });
    let golden: ParityFile = serde_json::from_str(&json).expect("parse fixtures");
    assert_eq!(
        golden.records.len(),
        current.records.len(),
        "fixture record count changed"
    );
    for (want, got) in golden.records.iter().zip(current.records.iter()) {
        assert_eq!(
            want, got,
            "bit-level outcome drift for {} / {} @ {}x{}",
            want.system, want.phase, want.nodes, want.ppn
        );
    }
}

// ---------------------------------------------------------------------------
// Aggregation bit-parity at datacenter scale: the class planner folds
// per-node stages above AGGREGATE_NODE_THRESHOLD (1024) nodes into one
// multi-instance resource. The gateway's sharded OpsRate request plane
// and DAOS's sharded SCM pool must survive that fold bit-identically.

/// Runs one phase expanded and aggregated and asserts every scalar
/// outcome is bit-equal (utilization rows differ by construction — the
/// aggregated plan has fewer, wider resources).
fn assert_aggregation_parity(sys: &dyn StorageSystem, nodes: u32, ppn: u32, phase: &PhaseSpec) {
    let expanded = with_forced_aggregation(false, || run_phase(sys, nodes, ppn, phase));
    let aggregated = with_forced_aggregation(true, || run_phase(sys, nodes, ppn, phase));
    for (label, e, a) in [
        ("total_bytes", expanded.total_bytes, aggregated.total_bytes),
        ("duration", expanded.duration, aggregated.duration),
        (
            "agg_bandwidth",
            expanded.agg_bandwidth,
            aggregated.agg_bandwidth,
        ),
    ] {
        assert_eq!(
            e.to_bits(),
            a.to_bits(),
            "{label} drift at {nodes}x{ppn}: {e} vs {a}"
        );
    }
}

#[test]
fn objstore_request_plane_is_aggregation_invariant() {
    let sys = ObjectGatewayConfig::on_wombat();
    // 2048 nodes crosses the aggregation threshold; 4 KiB keeps the
    // sharded OpsRate request plane the binding stage.
    assert_aggregation_parity(&sys, 2048, 8, &PhaseSpec::seq_write(4.0 * KIB, 16.0 * MIB));
    assert_aggregation_parity(&sys, 2048, 8, &PhaseSpec::seq_read(8.0 * MIB, 256.0 * MIB));
}

#[test]
fn daos_sharded_md_pool_is_aggregation_invariant() {
    let sys = DaosConfig::on_wombat();
    assert_aggregation_parity(&sys, 2048, 8, &PhaseSpec::seq_write(4.0 * KIB, 16.0 * MIB));
    // And under the native-API edit, since that is how decks sweep it.
    let native = Reconfigured::new(DaosConfig::on_wombat(), |g| native_api_edit().apply(g));
    assert_aggregation_parity(
        &native,
        2048,
        8,
        &PhaseSpec::seq_write(4.0 * KIB, 16.0 * MIB),
    );
}

#[test]
fn crossproto_backends_run_at_e5_node_scale() {
    // 100k clients: the aggregated plan must solve (quickly) and both
    // backends must pin at their cluster-side ceilings, not at some
    // accidental per-node fold artifact.
    let phase = PhaseSpec::seq_write(MIB, 64.0 * MIB);
    let o = ObjectGatewayConfig::on_wombat();
    let out = run_phase(&o, 100_000, 1, &phase);
    let gw_pool = o.per_gateway_bw * o.gateways as f64;
    assert!(out.agg_bandwidth <= gw_pool.min(o.backend_bw(&phase)) * 1.001);
    assert!(out.agg_bandwidth > 0.5 * gw_pool.min(o.backend_bw(&phase)));

    let d = DaosConfig::on_wombat();
    let out = run_phase(&d, 100_000, 1, &phase);
    let engine_pool = d.per_engine_bw * d.engines as f64;
    assert!(out.agg_bandwidth <= engine_pool.min(d.media_bw(&phase)) * 1.001);
    assert!(out.agg_bandwidth > 0.5 * engine_pool.min(d.media_bw(&phase)));
}
