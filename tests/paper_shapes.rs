//! End-to-end shape assertions for every figure of the paper, run at
//! smoke scale (identical physics, reduced node lists and repetitions).
//! EXPERIMENTS.md records the full-scale numbers; these tests pin the
//! qualitative claims so a regression in any substrate trips CI.

use hcs_experiments::figures::{fig2, fig3, fig4, fig5, fig6, takeaways};
use hcs_experiments::shapes;
use hcs_experiments::{Figure, Scale};

fn get<'a>(figs: &'a [Figure], id: &str) -> &'a Figure {
    figs.iter()
        .find(|f| f.id == id)
        .unwrap_or_else(|| panic!("missing figure {id}"))
}

#[test]
fn fig2a_lassen_vast_flat_gpfs_scaling() {
    let figs = fig2::generate(Scale::Smoke);

    // Scientific (sequential write): GPFS keeps scaling, VAST flattens
    // at the gateway ("VAST does not scale linearly on Lassen as
    // opposed to GPFS", §V.A).
    let sci = get(&figs, "fig2a.scientific");
    let gpfs = sci.series_named("GPFS").unwrap();
    let vast = sci.series_named("VAST").unwrap();
    assert!(shapes::scales_with_factor(gpfs, 1.6), "GPFS write scaling");
    assert!(
        shapes::saturates_from(vast, 32.0, 0.10),
        "VAST gateway ceiling"
    );
    assert!(
        vast.y_max() < 30.0,
        "ceiling ~25 GB/s, got {}",
        vast.y_max()
    );

    // Data analytics: GPFS saturates high; VAST stays under the gateway.
    let da = get(&figs, "fig2a.analytics");
    assert!(shapes::dominates(
        da.series_named("GPFS").unwrap(),
        da.series_named("VAST").unwrap()
    ));

    // ML: GPFS drops hard versus its own sequential reads; VAST does not.
    let ml = get(&figs, "fig2a.ml");
    let g_ml = ml.series_named("GPFS").unwrap();
    let g_da = da.series_named("GPFS").unwrap();
    let v_ml = ml.series_named("VAST").unwrap();
    let v_da = da.series_named("VAST").unwrap();
    let x = 16.0;
    let g_ratio = g_ml.y_at(x).unwrap() / g_da.y_at(x).unwrap();
    let v_ratio = v_ml.y_at(x).unwrap() / v_da.y_at(x).unwrap();
    assert!(g_ratio < 0.3, "GPFS random/seq at {x} nodes = {g_ratio}");
    assert!(v_ratio > 0.6, "VAST random/seq at {x} nodes = {v_ratio}");
}

#[test]
fn fig2b_wombat_vast_saturates_nvme_scales() {
    let figs = fig2::generate(Scale::Smoke);
    let ml = get(&figs, "fig2b.ml");
    let vast = ml.series_named("VAST").unwrap();
    let nvme = ml.series_named("NVMe").unwrap();

    // "VAST is able to outperform the NVMe on small scales" but
    // "saturates on eight nodes" (§V.C).
    assert!(vast.y_at(1.0).unwrap() > nvme.y_at(1.0).unwrap());
    assert!(shapes::saturates_from(vast, 4.0, 0.10));
    assert!(
        shapes::scales_with_factor(nvme, 1.95),
        "local drives scale linearly"
    );
    assert!(nvme.y_at(8.0).unwrap() > vast.y_at(8.0).unwrap());

    // Global ceiling ≈ 22.5 GB/s (§V.C).
    assert!(
        (14.0..26.0).contains(&vast.y_max()),
        "VAST@Wombat ML ceiling = {}",
        vast.y_max()
    );
}

#[test]
fn fig3_single_node_fsync_shapes() {
    let figs = fig3::generate(Scale::Smoke);

    // Lustre ramps near-linearly on both Quartz and Ruby and behaves
    // similarly on the two (Fig 3b/3c).
    let q = get(&figs, "fig3b.scientific")
        .series_named("Lustre")
        .unwrap()
        .clone();
    let r = get(&figs, "fig3c.scientific")
        .series_named("Lustre")
        .unwrap()
        .clone();
    assert!(shapes::scales_with_factor(&q, 1.5));
    assert!(shapes::scales_with_factor(&r, 1.5));
    for p in &q.points {
        let rr = r.y_at(p.x).unwrap();
        assert!((0.6..1.6).contains(&(p.y / rr)), "Quartz~Ruby at {}", p.x);
    }

    // Wombat: VAST ≈ 5× NVMe at 32 procs; VAST peaks near 5.8 GB/s.
    let d = get(&figs, "fig3d.scientific");
    let vast = d.series_named("VAST").unwrap();
    let ratio = shapes::ratio_at(vast, d.series_named("NVMe").unwrap(), 32.0).unwrap();
    assert!((3.0..8.0).contains(&ratio), "VAST/NVMe = {ratio}");
    assert!((4.0..7.5).contains(&vast.y_at(32.0).unwrap()));

    // VAST single-node ordering across the LC machines (§V.A).
    let a = get(&figs, "fig3a.scientific")
        .series_named("VAST")
        .unwrap()
        .y_at(32.0)
        .unwrap();
    let c = get(&figs, "fig3c.scientific")
        .series_named("VAST")
        .unwrap()
        .y_at(32.0)
        .unwrap();
    let b = get(&figs, "fig3b.scientific")
        .series_named("VAST")
        .unwrap()
        .y_at(32.0)
        .unwrap();
    assert!(a > c && c > b, "Lassen {a} > Ruby {c} > Quartz {b}");
}

#[test]
fn fig4_io_time_decomposition_shapes() {
    let figs = fig4::generate(Scale::Smoke);
    let a = get(&figs, "fig4a");
    let b = get(&figs, "fig4b");

    // ResNet-50: VAST's I/O time exceeds GPFS's but mostly overlaps.
    let v_over = a.series_named("VAST overlapping").unwrap();
    let v_non = a.series_named("VAST non-overlapping").unwrap();
    for p in &v_over.points {
        assert!(
            p.y > v_non.y_at(p.x).unwrap(),
            "overlap dominates at {}",
            p.x
        );
    }

    // Cosmoflow: VAST's non-overlap dwarfs GPFS's.
    let vb = b.series_named("VAST non-overlapping").unwrap();
    let gb = b.series_named("GPFS non-overlapping").unwrap();
    for p in &vb.points {
        assert!(p.y > 3.0 * gb.y_at(p.x).unwrap().max(1e-9));
    }

    // And Cosmoflow (minutes of I/O) dwarfs ResNet-50 (seconds) on
    // VAST — §VI.C.
    let resnet_io = v_over.y_at(1.0).unwrap() + v_non.y_at(1.0).unwrap();
    let cosmo_io = b
        .series_named("VAST overlapping")
        .unwrap()
        .y_at(1.0)
        .unwrap()
        + vb.y_at(1.0).unwrap();
    assert!(cosmo_io > 5.0 * resnet_io, "{cosmo_io} vs {resnet_io}");
}

#[test]
fn fig5_fig6_throughput_shapes() {
    let f5 = fig5::generate(Scale::Smoke);
    let app = get(&f5, "fig5a");
    let sys = get(&f5, "fig5b");
    let x = app.series_named("VAST").unwrap().points.last().unwrap().x;
    let app_gap = app.series_named("GPFS").unwrap().y_at(x).unwrap()
        / app.series_named("VAST").unwrap().y_at(x).unwrap();
    let sys_gap = sys.series_named("GPFS").unwrap().y_at(x).unwrap()
        / sys.series_named("VAST").unwrap().y_at(x).unwrap();
    assert!(
        app_gap < 1.4,
        "app throughput only slightly apart: {app_gap}"
    );
    assert!(sys_gap > 2.0, "system throughput very different: {sys_gap}");

    let f6 = fig6::generate(Scale::Smoke);
    let app6 = get(&f6, "fig6a");
    for p in &app6.series_named("GPFS").unwrap().points {
        let v = app6.series_named("VAST").unwrap().y_at(p.x).unwrap();
        assert!(
            p.y > 1.2 * v,
            "GPFS serves Cosmoflow better at {} nodes",
            p.x
        );
    }
}

#[test]
fn section7_takeaways() {
    let t = takeaways::measure(Scale::Smoke);
    assert!(
        (4.0..13.0).contains(&t.rdma_over_tcp),
        "8x takeaway: {}",
        t.rdma_over_tcp
    );
    assert!(
        (0.75..0.97).contains(&t.gpfs_drop),
        "90% drop: {}",
        t.gpfs_drop
    );
    assert!(
        (3.0..8.0).contains(&t.vast_over_nvme),
        "5x takeaway: {}",
        t.vast_over_nvme
    );
    assert!(
        t.resnet_compute_fraction > 0.9,
        "97% compute: {}",
        t.resnet_compute_fraction
    );
    assert!(
        t.vast_rand_read > 0.6 * t.vast_seq_read,
        "VAST pattern consistency"
    );
}
