//! Bottleneck attribution: the runner names the binding resource of
//! every run, so the paper's causal diagnoses become assertions rather
//! than prose. Each test pins one of the paper's attributions.

use hcs_core::runner::run_phase;
use hcs_core::{Bottleneck, PhaseSpec, StageKind};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{IorConfig, WorkloadClass};
use hcs_simkit::units::MIB;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

fn phase_of(cfg: &IorConfig) -> PhaseSpec {
    cfg.phase()
}

fn bn(kind: StageKind, name: &str) -> Bottleneck {
    Bottleneck {
        kind,
        name: name.into(),
    }
}

#[test]
fn lassen_vast_at_scale_is_gateway_bound() {
    // §V.A: "there is a network bottleneck relevant to VAST's
    // deployment on Lassen" — the single gateway.
    let cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 64, 44);
    let out = run_phase(&vast_on_lassen(), 64, 44, &phase_of(&cfg));
    assert_eq!(out.bottleneck, Some(bn(StageKind::Gateway, "vast:gw0")));
}

#[test]
fn lassen_vast_single_node_is_mount_bound() {
    // One node never fills the gateway; the single TCP connection does.
    let cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 1, 44);
    let out = run_phase(&vast_on_lassen(), 1, 44, &phase_of(&cfg));
    assert_eq!(
        out.bottleneck,
        Some(bn(StageKind::ClientMount, "vast:mount0"))
    );
}

#[test]
fn wombat_vast_reads_at_scale_are_dnode_bound() {
    // §V.C: saturation "likely due to its configuration" — in this
    // model, the BlueField DNode forwarding pool.
    let cfg = IorConfig::paper_scalability(WorkloadClass::MachineLearning, 8, 48);
    let out = run_phase(&vast_on_wombat(), 8, 48, &phase_of(&cfg));
    assert_eq!(out.bottleneck, Some(bn(StageKind::Media, "vast:media")));
}

#[test]
fn wombat_vast_writes_are_cnode_bound() {
    // The similarity-reduction write path on eight CNodes.
    let cfg = IorConfig::paper_scalability(WorkloadClass::Scientific, 8, 48);
    let out = run_phase(&vast_on_wombat(), 8, 48, &phase_of(&cfg));
    assert_eq!(
        out.bottleneck,
        Some(bn(StageKind::ServerPool, "vast:cnode-pool"))
    );
}

#[test]
fn gpfs_single_node_reads_are_client_engine_bound() {
    // The §VII 14.5 GB/s per node is a client-side ceiling.
    let cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 1, 44);
    let out = run_phase(&GpfsConfig::on_lassen(), 1, 44, &phase_of(&cfg));
    assert_eq!(
        out.bottleneck,
        Some(bn(StageKind::ClientMount, "gpfs:client0"))
    );
}

#[test]
fn gpfs_seq_reads_at_scale_are_server_bound() {
    // The 32-node saturation of Fig 2a is the NSD pool.
    let cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 64, 44);
    let out = run_phase(&GpfsConfig::on_lassen(), 64, 44, &phase_of(&cfg));
    assert_eq!(
        out.bottleneck,
        Some(bn(StageKind::ServerPool, "gpfs:server-pool"))
    );
}

#[test]
fn stream_limited_runs_report_no_resource_bottleneck() {
    // GPFS random reads at small scale: each rank is latency-bound
    // (the thrash penalty), no shared resource saturates.
    let cfg = IorConfig::paper_scalability(WorkloadClass::MachineLearning, 2, 44);
    let out = run_phase(&GpfsConfig::on_lassen(), 2, 44, &phase_of(&cfg));
    assert_eq!(out.bottleneck, None, "{:?}", out.bottleneck);
}

#[test]
fn utilization_is_reported_for_every_resource() {
    let cfg = IorConfig::paper_scalability(WorkloadClass::Scientific, 2, 8);
    let out = run_phase(&vast_on_lassen(), 2, 8, &phase_of(&cfg));
    // gateway + cnode + fabric + media + iops + 2 mounts = 7 resources.
    assert_eq!(out.utilization.len(), 7);
    for (name, alloc, cap) in &out.utilization {
        assert!(*alloc <= cap * 1.000001, "{name} infeasible");
    }
}

#[test]
fn gateway_widening_is_a_graph_edit() {
    // The README's worked example: §V.A diagnoses the Lassen gateway;
    // a generic graph edit widens it, the ceiling lifts ~2×, and the
    // bottleneck moves inward to the media pool — widening one funnel
    // exposes the next one, which is the point of typed attribution.
    use hcs_core::Reconfigured;
    let phase = PhaseSpec::seq_read(MIB, 256.0 * MIB);
    let stock = run_phase(&vast_on_lassen(), 64, 44, &phase);
    assert_eq!(
        stock.bottleneck.as_ref().map(|b| b.kind),
        Some(StageKind::Gateway)
    );
    let wider = Reconfigured::new(vast_on_lassen(), |g| g.scale_pool(StageKind::Gateway, 4.0));
    let out = run_phase(&wider, 64, 44, &phase);
    assert!(
        out.agg_bandwidth > 1.9 * stock.agg_bandwidth,
        "4x gateway should at least double throughput: {} vs {}",
        out.agg_bandwidth,
        stock.agg_bandwidth
    );
    assert_eq!(
        out.bottleneck.as_ref().map(|b| b.kind),
        Some(StageKind::Media),
        "the next funnel inward should now bind: {:?}",
        out.bottleneck
    );
}

#[test]
fn degraded_gateway_moves_the_bottleneck() {
    // Failure injection changes the attribution, not just the number.
    let mut v = vast_on_lassen();
    if let Some(g) = &mut v.gateway {
        g.uplink.bandwidth /= 100.0;
    }
    let phase = PhaseSpec::seq_read(MIB, 256.0 * MIB);
    let out = run_phase(&v, 1, 44, &phase);
    assert_eq!(out.bottleneck, Some(bn(StageKind::Gateway, "vast:gw0")));
}
