//! Differential tests for the telemetry layer: zero perturbation.
//!
//! The recorder is specified as a *pure listener* — attaching it must
//! not change a single bit of any simulated outcome, the same guarantee
//! `tests/graph_parity.rs` pinned for the planner port. Every backend ×
//! IOR workload class runs with and without a recorder and the
//! `PhaseOutcome`s are compared at the IEEE-754 bit level; campaigns,
//! IOR reports and the DLIO pipeline get the same treatment.
//!
//! A golden Chrome-trace fixture additionally pins the *content* of the
//! telemetry (event names, categories, pids, byte-exact timestamps) for
//! one small run. Regenerate after an intentional telemetry change:
//!
//! ```text
//! HCS_BLESS_TELEMETRY=1 cargo test -p hcs-apps --test telemetry_parity
//! ```

use hcs_core::runner::{run_phase, run_phase_traced};
use hcs_core::telemetry::Recorder;
use hcs_core::{JobScript, PhaseOutcome, PhaseSpec, StorageSystem};
use hcs_dlio::{resnet50, run_dlio, run_dlio_traced};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, run_ior_traced, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_simkit::units::MIB;
use hcs_unifyfs::UnifyFsConfig;
use hcs_vast::vast_on_lassen;

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/telemetry_trace.json"
);

/// The five storage backends.
fn backends() -> Vec<(String, Box<dyn StorageSystem>)> {
    vec![
        (
            "vast-lassen".into(),
            Box::new(vast_on_lassen()) as Box<dyn StorageSystem>,
        ),
        ("gpfs-lassen".into(), Box::new(GpfsConfig::on_lassen())),
        ("lustre-ruby".into(), Box::new(LustreConfig::on_ruby())),
        ("nvme-wombat".into(), Box::new(LocalNvmeConfig::on_wombat())),
        ("unifyfs-local".into(), Box::new(UnifyFsConfig::on_wombat())),
    ]
}

fn classes() -> [WorkloadClass; 3] {
    [
        WorkloadClass::Scientific,
        WorkloadClass::DataAnalytics,
        WorkloadClass::MachineLearning,
    ]
}

/// Bit-level equality for every numeric field of a `PhaseOutcome`
/// (`PartialEq` on f64 would let `-0.0 == 0.0` slip through).
fn assert_bit_exact(plain: &PhaseOutcome, traced: &PhaseOutcome, ctx: &str) {
    assert_eq!(plain.nodes, traced.nodes, "{ctx}: nodes");
    assert_eq!(plain.ppn, traced.ppn, "{ctx}: ppn");
    assert_eq!(
        plain.total_bytes.to_bits(),
        traced.total_bytes.to_bits(),
        "{ctx}: total_bytes"
    );
    assert_eq!(
        plain.duration.to_bits(),
        traced.duration.to_bits(),
        "{ctx}: duration"
    );
    assert_eq!(
        plain.agg_bandwidth.to_bits(),
        traced.agg_bandwidth.to_bits(),
        "{ctx}: agg_bandwidth"
    );
    let p: Vec<u64> = plain
        .per_node_duration
        .iter()
        .map(|x| x.to_bits())
        .collect();
    let t: Vec<u64> = traced
        .per_node_duration
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(p, t, "{ctx}: per_node_duration");
    assert_eq!(
        plain.utilization.len(),
        traced.utilization.len(),
        "{ctx}: utilization length"
    );
    for (i, ((pn, pa, pc), (tn, ta, tc))) in plain
        .utilization
        .iter()
        .zip(traced.utilization.iter())
        .enumerate()
    {
        assert_eq!(pn, tn, "{ctx}: utilization[{i}] name");
        assert_eq!(pa.to_bits(), ta.to_bits(), "{ctx}: utilization[{i}] alloc");
        assert_eq!(pc.to_bits(), tc.to_bits(), "{ctx}: utilization[{i}] cap");
    }
    assert_eq!(plain.bottleneck, traced.bottleneck, "{ctx}: bottleneck");
}

#[test]
fn run_phase_is_unperturbed_across_backends_and_classes() {
    for (name, sys) in backends() {
        for class in classes() {
            for (nodes, ppn) in [(1, 4), (4, 8)] {
                let cfg = IorConfig::smoke(class, nodes, ppn);
                let phase = cfg.phase();
                let plain = run_phase(sys.as_ref(), nodes, ppn, &phase);
                let mut rec = Recorder::new();
                let traced = run_phase_traced(sys.as_ref(), nodes, ppn, &phase, &mut rec);
                let ctx = format!("{name} / {class:?} @ {nodes}x{ppn}");
                assert_bit_exact(&plain, &traced, &ctx);
                assert!(
                    !rec.tracer().is_empty(),
                    "{ctx}: traced run produced no events"
                );
            }
        }
    }
}

#[test]
fn ior_reports_are_unperturbed() {
    for (name, sys) in backends() {
        for class in classes() {
            let cfg = IorConfig::smoke(class, 2, 8);
            let plain = run_ior(sys.as_ref(), &cfg);
            let mut rec = Recorder::new();
            let traced = run_ior_traced(sys.as_ref(), &cfg, &mut rec);
            let p: Vec<u64> = plain
                .outcome
                .bandwidths
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let t: Vec<u64> = traced
                .outcome
                .bandwidths
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(p, t, "{name} / {class:?}: per-rep bandwidths drifted");
            assert_eq!(plain, traced, "{name} / {class:?}: report drifted");
        }
    }
}

#[test]
fn campaigns_are_unperturbed() {
    let job = JobScript::checkpoint_restart(25.0, 3, 64.0 * MIB, MIB);
    for (name, sys) in backends() {
        let plain = job.run(sys.as_ref(), 2, 8);
        let mut rec = Recorder::new();
        let traced = job.run_traced(sys.as_ref(), 2, 8, &mut rec);
        assert_eq!(
            plain.total.to_bits(),
            traced.total.to_bits(),
            "{name}: job total drifted"
        );
        assert_eq!(plain, traced, "{name}: job outcome drifted");
        // One compute span per compute step, one phase span per IO step.
        let compute_events = rec
            .tracer()
            .by_category(&hcs_dftrace::EventCategory::Compute)
            .count();
        assert_eq!(compute_events, 3, "{name}: compute spans");
        let phase_events = rec
            .tracer()
            .by_category(&hcs_dftrace::EventCategory::Phase)
            .count();
        assert_eq!(phase_events, 4, "{name}: restart + 3 checkpoints");
    }
}

#[test]
fn dlio_pipeline_is_unperturbed() {
    let sys = GpfsConfig::on_lassen();
    let cfg = resnet50().smoke().with_checkpointing(16, 100e6);
    let plain = run_dlio(&sys, &cfg, 2);
    let mut rec = Recorder::new();
    let traced = run_dlio_traced(&sys, &cfg, 2, &mut rec);
    assert_eq!(
        plain.duration.to_bits(),
        traced.duration.to_bits(),
        "duration drifted"
    );
    assert_eq!(
        plain.app_throughput.to_bits(),
        traced.app_throughput.to_bits()
    );
    assert_eq!(
        plain.system_throughput.to_bits(),
        traced.system_throughput.to_bits()
    );
    assert_eq!(plain.mean_per_node, traced.mean_per_node);
    assert_eq!(plain.tracer, traced.tracer, "application events drifted");
    // The recorder holds the application events plus the flow layer's.
    assert!(rec.tracer().len() > plain.tracer.len());
    assert!(
        rec.tracer()
            .by_category(&hcs_dftrace::EventCategory::Resource)
            .count()
            > 0,
        "flow-engine utilization missing from DLIO trace"
    );
}

#[test]
fn recorder_reuse_across_runs_is_still_unperturbed() {
    // A recorder that already holds a campaign must not influence the
    // next run absorbed into it.
    let sys = vast_on_lassen();
    let phase = PhaseSpec::seq_write(MIB, 64.0 * MIB);
    let plain = run_phase(&sys, 2, 4, &phase);
    let mut rec = Recorder::new();
    let job = JobScript::checkpoint_restart(10.0, 2, 32.0 * MIB, MIB);
    job.run_traced(&sys, 2, 4, &mut rec);
    let clock_before = rec.clock();
    let traced = run_phase_traced(&sys, 2, 4, &phase, &mut rec);
    assert_bit_exact(&plain, &traced, "after-campaign run");
    assert!(rec.clock() > clock_before, "clock advances monotonically");
}

#[test]
fn golden_chrome_trace_fixture() {
    // One small but representative run: IOR smoke on VAST@Lassen with
    // two nodes — flows, a phase span, resource segments.
    let sys = vast_on_lassen();
    let cfg = IorConfig::smoke(WorkloadClass::Scientific, 2, 4);
    let mut rec = Recorder::new();
    run_ior_traced(&sys, &cfg, &mut rec);
    let json = rec.to_chrome_json();

    if std::env::var_os("HCS_BLESS_TELEMETRY").is_some() {
        std::fs::write(FIXTURE_PATH, json + "\n").expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE_PATH).unwrap_or_else(|e| {
        panic!("missing telemetry fixture at {FIXTURE_PATH} ({e}); run with HCS_BLESS_TELEMETRY=1")
    });
    assert_eq!(
        golden.trim_end(),
        json,
        "telemetry trace drifted from the golden fixture"
    );
}

#[test]
fn chrome_trace_parses_back_losslessly() {
    // The acceptance criterion behind `hcs --trace`: the emitted JSON
    // must survive a parse → re-serialize cycle byte-for-byte (floats
    // print shortest-round-trip, so equality in the serialized domain
    // is exact, not approximate).
    let sys = vast_on_lassen();
    let cfg = IorConfig::smoke(WorkloadClass::MachineLearning, 2, 4);
    let mut rec = Recorder::new();
    run_ior_traced(&sys, &cfg, &mut rec);
    let json = rec.to_chrome_json();
    let parsed = hcs_dftrace::chrome::from_json(&json).expect("emitted trace must parse");
    assert_eq!(parsed.len(), rec.tracer().len());
    let rejson = hcs_dftrace::chrome::to_json(&parsed);
    assert_eq!(json, rejson, "trace does not round-trip losslessly");
}
