//! Differential and golden tests for deck-native observability.
//!
//! The metered executors are specified the same way the recorder was in
//! PR 2: collection is a *pure listener*. Running a deck with
//! `--metrics` must not change a single bit of any workload outcome or
//! of the Chrome trace a traced run emits — metrics ride alongside, in
//! optional fields that do not even appear in un-metered JSON.
//!
//! A golden markdown fixture additionally pins the `hcs report` output
//! for the shipped `examples/scenarios/fig2a.json` deck at smoke scale.
//! Regenerate after an intentional report change:
//!
//! ```text
//! HCS_BLESS_REPORT=1 cargo test -p hcs-apps --test report_golden
//! ```

use hcs_core::telemetry::Recorder;
use hcs_experiments::figures::example_deck;
use hcs_experiments::{
    render_markdown, run_deck, run_deck_traced, run_deck_traced_with_metrics,
    run_deck_with_metrics, to_report_json,
};

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/report_fig2a.md"
);

#[test]
fn metrics_do_not_perturb_outcomes() {
    let deck = example_deck().smoked();
    let plain = run_deck(&deck);
    let metered = run_deck_with_metrics(&deck);
    assert_eq!(plain.points.len(), metered.points.len());
    for (p, m) in plain.points.iter().zip(&metered.points) {
        assert_eq!(p.scenario, m.scenario);
        assert_eq!(
            p.outcome, m.outcome,
            "metrics collection perturbed {}",
            p.scenario.name
        );
        assert!(p.metrics.is_none(), "plain runs must not carry metrics");
        assert!(m.metrics.is_some(), "metered runs must carry metrics");
    }
    // Un-metered serialization is byte-compatible with pre-metrics
    // releases: the optional fields must not appear at all.
    let json = serde_json::to_string_pretty(&plain).expect("serialize");
    assert!(
        !json.contains("\"metrics\""),
        "plain deck JSON must not mention metrics"
    );
    let back: hcs_experiments::DeckResult = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, plain, "plain deck JSON round-trips");
    // And the metered result round-trips too, metrics included.
    let mjson = serde_json::to_string_pretty(&metered).expect("serialize");
    let mback: hcs_experiments::DeckResult = serde_json::from_str(&mjson).expect("parse");
    assert_eq!(mback, metered, "metered deck JSON round-trips");
}

#[test]
fn traced_metrics_match_plain_trace() {
    // The metered traced path runs each point into a private recorder
    // and stacks them; the trace must be bit-identical to the shared-
    // recorder path and the outcomes identical to all other paths.
    let deck = example_deck().smoked();
    let mut plain_rec = Recorder::new();
    let plain = run_deck_traced(&deck, &mut plain_rec);
    let mut metered_rec = Recorder::new();
    let metered = run_deck_traced_with_metrics(&deck, &mut metered_rec);
    for (p, m) in plain.points.iter().zip(&metered.points) {
        assert_eq!(p.outcome, m.outcome);
    }
    assert_eq!(
        plain_rec.to_chrome_json(),
        metered_rec.to_chrome_json(),
        "stacked per-point recorders must reproduce the shared trace"
    );
    assert_eq!(plain_rec.clock(), metered_rec.clock());
    assert_eq!(plain_rec.metrics_summary(), metered_rec.metrics_summary());
}

#[test]
fn report_matches_golden_fixture() {
    let deck = example_deck().smoked();
    let result = run_deck_with_metrics(&deck);
    let markdown = render_markdown(&result);

    if std::env::var_os("HCS_BLESS_REPORT").is_some() {
        std::fs::write(FIXTURE_PATH, &markdown).expect("write fixture");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE_PATH).unwrap_or_else(|e| {
        panic!("missing report fixture at {FIXTURE_PATH} ({e}); run with HCS_BLESS_REPORT=1")
    });
    assert_eq!(
        golden, markdown,
        "report drifted from the golden fixture; bless with HCS_BLESS_REPORT=1 if intentional"
    );
}

#[test]
fn report_json_mirrors_the_markdown() {
    let deck = example_deck().smoked();
    let result = run_deck_with_metrics(&deck);
    let json = to_report_json(&result);
    assert_eq!(json.name, result.name);
    assert_eq!(json.points.len(), result.points.len());
    assert!(json.summary.is_some(), "metered deck carries a summary");
    for (jp, p) in json.points.iter().zip(&result.points) {
        assert_eq!(jp.headline, p.outcome.headline());
        assert_eq!(jp.metrics, p.metrics);
    }
}

#[test]
fn unmetered_report_renders_a_hint() {
    let deck = example_deck().smoked();
    let result = run_deck(&deck);
    let markdown = render_markdown(&result);
    assert!(
        markdown.contains("hcs run"),
        "hint to re-run with --metrics"
    );
    assert!(
        !markdown.contains("## Cross-rep"),
        "no stats without metrics"
    );
}
