//! Serialization round-trips for every public configuration and result
//! type — the suite's configs are meant to be stored, diffed and
//! shared as JSON.

use hcs_dlio::{cosmoflow, resnet50, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_topology::all_clusters;
use hcs_vast::{vast_on_lassen, vast_on_quartz, vast_on_ruby, vast_on_wombat};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    serde_json::from_str(&serde_json::to_string(value).expect("serialize")).expect("deserialize")
}

#[test]
fn all_storage_configs_round_trip() {
    for v in [
        vast_on_lassen(),
        vast_on_ruby(),
        vast_on_quartz(),
        vast_on_wombat(),
    ] {
        assert_eq!(round_trip(&v), v);
    }
    let g = GpfsConfig::on_lassen();
    assert_eq!(round_trip(&g), g);
    for l in [LustreConfig::on_ruby(), LustreConfig::on_quartz()] {
        assert_eq!(round_trip(&l), l);
    }
    let n = LocalNvmeConfig::on_wombat();
    assert_eq!(round_trip(&n), n);
}

#[test]
fn clusters_round_trip() {
    for c in all_clusters() {
        assert_eq!(round_trip(&c), c);
    }
}

#[test]
fn benchmark_configs_round_trip() {
    for w in WorkloadClass::all() {
        let c = IorConfig::paper_scalability(w, 8, 44);
        assert_eq!(round_trip(&c), c);
    }
    for d in [resnet50(), cosmoflow()] {
        assert_eq!(round_trip(&d), d);
    }
}

#[test]
fn results_round_trip() {
    let sys = vast_on_wombat();
    let rep = run_ior(&sys, &IorConfig::smoke(WorkloadClass::Scientific, 2, 4));
    assert_eq!(round_trip(&rep), rep);

    let dlio = run_dlio(&GpfsConfig::on_lassen(), &resnet50().smoke(), 1);
    assert_eq!(round_trip(&dlio), dlio);
}

#[test]
fn chrome_trace_round_trips_through_disk_format() {
    let result = run_dlio(&vast_on_lassen(), &resnet50().smoke(), 1);
    let json = hcs_dftrace::chrome::to_json(&result.tracer);
    let back = hcs_dftrace::chrome::from_json(&json).expect("parse");
    assert_eq!(back.len(), result.tracer.len());
    // The re-derived decomposition matches.
    let orig = hcs_dftrace::decompose(&result.tracer, None);
    let re = hcs_dftrace::decompose(&back, None);
    assert!((orig.io_total - re.io_total).abs() < 1e-9);
    assert!((orig.overlapping_io - re.overlapping_io).abs() < 1e-9);
}
