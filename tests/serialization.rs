//! Serialization round-trips for every public configuration and result
//! type — the suite's configs are meant to be stored, diffed and
//! shared as JSON.

use hcs_core::scenario::{MdtestConfig, SweepAxes};
use hcs_core::{Deck, GraphEdit, Scale, Scenario, StageKind, Workload};
use hcs_dlio::{cosmoflow, resnet50, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_topology::all_clusters;
use hcs_vast::{vast_on_lassen, vast_on_quartz, vast_on_ruby, vast_on_wombat};
use proptest::prelude::*;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    serde_json::from_str(&serde_json::to_string(value).expect("serialize")).expect("deserialize")
}

#[test]
fn all_storage_configs_round_trip() {
    for v in [
        vast_on_lassen(),
        vast_on_ruby(),
        vast_on_quartz(),
        vast_on_wombat(),
    ] {
        assert_eq!(round_trip(&v), v);
    }
    let g = GpfsConfig::on_lassen();
    assert_eq!(round_trip(&g), g);
    for l in [LustreConfig::on_ruby(), LustreConfig::on_quartz()] {
        assert_eq!(round_trip(&l), l);
    }
    let n = LocalNvmeConfig::on_wombat();
    assert_eq!(round_trip(&n), n);
}

#[test]
fn clusters_round_trip() {
    for c in all_clusters() {
        assert_eq!(round_trip(&c), c);
    }
}

#[test]
fn benchmark_configs_round_trip() {
    for w in WorkloadClass::all() {
        let c = IorConfig::paper_scalability(w, 8, 44);
        assert_eq!(round_trip(&c), c);
    }
    for d in [resnet50(), cosmoflow()] {
        assert_eq!(round_trip(&d), d);
    }
}

#[test]
fn results_round_trip() {
    let sys = vast_on_wombat();
    let rep = run_ior(&sys, &IorConfig::smoke(WorkloadClass::Scientific, 2, 4));
    assert_eq!(round_trip(&rep), rep);

    let dlio = run_dlio(&GpfsConfig::on_lassen(), &resnet50().smoke(), 1);
    assert_eq!(round_trip(&dlio), dlio);
}

#[test]
fn scenarios_and_decks_round_trip() {
    for scale in [Scale::Paper, Scale::Smoke] {
        assert_eq!(round_trip(&scale), scale);
        for deck in hcs_experiments::figures::all_decks(scale) {
            assert_eq!(round_trip(&deck), deck, "deck {}", deck.name);
            for point in deck.expand() {
                assert_eq!(round_trip(&point), point, "point {}", point.name);
            }
        }
    }
    // Graph edits survive inside a scenario.
    let sc = Scenario::new("vast-lassen", Workload::Mdtest(MdtestConfig::new(2, 4))).with_reps(3);
    let mut sc = sc;
    sc.edits = vec![
        GraphEdit::WidenGateway { count: 4 },
        GraphEdit::ScalePool {
            kind: StageKind::Gateway,
            factor: 2.0,
        },
    ];
    assert_eq!(round_trip(&sc), sc);
}

#[test]
fn shipped_example_deck_is_the_golden_fixture() {
    // examples/scenarios/fig2a.json is what `hcs decks --export` writes
    // for the example deck; `hcs run examples/scenarios/fig2a.json`
    // must execute exactly the builtin.
    let json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/fig2a.json"
    ))
    .expect("shipped fixture exists");
    let deck: Deck = serde_json::from_str(&json).expect("fixture parses as a deck");
    assert_eq!(deck, hcs_experiments::figures::example_deck());
}

proptest! {
    /// Deck expansion is duplicate-free (every point name is unique)
    /// and stable-ordered (expanding twice yields the same list), for
    /// arbitrary axis contents including duplicated axis values.
    #[test]
    fn deck_expansion_is_duplicate_free_and_stable(
        systems in proptest::collection::vec(
            prop_oneof![
                Just("vast-lassen".to_string()),
                Just("vast-wombat".to_string()),
                Just("gpfs".to_string()),
                Just("nvme".to_string()),
            ],
            0..4,
        ),
        nodes in proptest::collection::vec(1u32..6, 0..4),
        ppn in proptest::collection::vec(1u32..5, 0..3),
        transfer_sizes in proptest::collection::vec(
            prop_oneof![Just(4096.0f64), Just(65536.0f64), Just(1048576.0f64)],
            0..3,
        ),
        widen in 0u32..3,
    ) {
        let base = Scenario::new(
            "gpfs",
            Workload::Ior(IorConfig::smoke(WorkloadClass::Scientific, 1, 2)),
        );
        let mut deck = Deck::single("prop", base);
        deck.axes = SweepAxes {
            systems,
            nodes,
            ppn,
            transfer_sizes,
            edit_sets: (0..widen)
                .map(|i| vec![GraphEdit::WidenGateway { count: i + 1 }])
                .collect(),
            fault_sets: Vec::new(),
            offered_load: Vec::new(),
        };
        let points = deck.expand();
        let mut names: Vec<&str> = points.iter().map(|p| p.name.as_str()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        prop_assert_eq!(names.len(), total, "duplicate point names");
        prop_assert_eq!(deck.expand(), points, "expansion is not stable");
    }
}

#[test]
fn chrome_trace_round_trips_through_disk_format() {
    let result = run_dlio(&vast_on_lassen(), &resnet50().smoke(), 1);
    let json = hcs_dftrace::chrome::to_json(&result.tracer);
    let back = hcs_dftrace::chrome::from_json(&json).expect("parse");
    assert_eq!(back.len(), result.tracer.len());
    // The re-derived decomposition matches.
    let orig = hcs_dftrace::decompose(&result.tracer, None);
    let re = hcs_dftrace::decompose(&back, None);
    assert!((orig.io_total - re.io_total).abs() < 1e-9);
    assert!((orig.overlapping_io - re.overlapping_io).abs() < 1e-9);
}
