//! Full paper-geometry shape assertions. These run the complete node
//! lists and 10 repetitions — everything `EXPERIMENTS.md` tabulates —
//! and are `#[ignore]`d by default to keep `cargo test` fast. Run them
//! with:
//!
//! ```sh
//! cargo test --release --test paper_scale_full -- --ignored
//! ```

use hcs_experiments::figures::{fig2, fig3, takeaways};
use hcs_experiments::{shapes, Scale};

#[test]
#[ignore = "full paper geometry; run with --ignored"]
fn fig2_full_scale_shapes() {
    let figs = fig2::generate(Scale::Paper);

    let sci = figs.iter().find(|f| f.id == "fig2a.scientific").unwrap();
    let vast = sci.series_named("VAST").unwrap();
    let gpfs = sci.series_named("GPFS").unwrap();
    // The full 1–128 node curves: VAST pinned at the gateway from 32
    // nodes on, GPFS within 2× of linear the whole way.
    assert!(shapes::saturates_from(vast, 32.0, 0.10));
    assert!((20.0..30.0).contains(&vast.y_max()));
    assert!(gpfs.y_at(128.0).unwrap() > 300.0);

    let ml = figs.iter().find(|f| f.id == "fig2b.ml").unwrap();
    let vast_w = ml.series_named("VAST").unwrap();
    assert!((18.0..26.0).contains(&vast_w.y_max()), "~22.5 GB/s ceiling");
}

#[test]
#[ignore = "full paper geometry; run with --ignored"]
fn fig3_full_scale_shapes() {
    let figs = fig3::generate(Scale::Paper);
    let d = figs.iter().find(|f| f.id == "fig3d.scientific").unwrap();
    let vast = d.series_named("VAST").unwrap();
    let nvme = d.series_named("NVMe").unwrap();
    // The §V.A numbers at full repetition count.
    let ratio = vast.y_at(32.0).unwrap() / nvme.y_at(32.0).unwrap();
    assert!(
        (4.0..7.5).contains(&ratio),
        "5x takeaway at full scale: {ratio}"
    );
    assert!(
        (5.0..7.5).contains(&vast.y_at(32.0).unwrap()),
        "~5.8 GB/s peak"
    );
}

#[test]
#[ignore = "full paper geometry; run with --ignored"]
fn takeaways_full_scale() {
    let t = takeaways::measure(Scale::Paper);
    assert!((0.8..1.4).contains(&t.tcp_per_node_write));
    assert!((13.0..16.5).contains(&t.gpfs_seq_read));
    assert!((0.84..0.93).contains(&t.gpfs_drop));
    assert!((4.5..7.0).contains(&t.vast_over_nvme));
    assert!(t.resnet_compute_fraction > 0.95);
}
