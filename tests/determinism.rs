//! Determinism guarantees: identical inputs produce bit-identical
//! outputs across the whole stack — the property that makes the
//! experiment suite reviewable.

use hcs_dlio::{cosmoflow, resnet50, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_simkit::SimRng;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

#[test]
fn ior_reports_are_bit_identical() {
    let systems: Vec<Box<dyn hcs_core::StorageSystem>> = vec![
        Box::new(vast_on_lassen()),
        Box::new(vast_on_wombat()),
        Box::new(GpfsConfig::on_lassen()),
        Box::new(LustreConfig::on_ruby()),
        Box::new(LocalNvmeConfig::on_wombat()),
    ];
    for sys in &systems {
        for w in WorkloadClass::all() {
            let cfg = IorConfig::smoke(w, 2, 8);
            let a = run_ior(sys.as_ref(), &cfg);
            let b = run_ior(sys.as_ref(), &cfg);
            assert_eq!(
                a.outcome.bandwidths,
                b.outcome.bandwidths,
                "{} / {:?}",
                sys.name(),
                w
            );
        }
    }
}

#[test]
fn dlio_runs_are_bit_identical() {
    let vast = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    for cfg in [resnet50().smoke(), cosmoflow().smoke()] {
        let a = run_dlio(&vast, &cfg, 2);
        let b = run_dlio(&vast, &cfg, 2);
        assert_eq!(a.tracer.events(), b.tracer.events(), "{} on VAST", cfg.name);
        let c = run_dlio(&gpfs, &cfg, 2);
        let d = run_dlio(&gpfs, &cfg, 2);
        assert_eq!(c.duration, d.duration, "{} on GPFS", cfg.name);
    }
}

#[test]
fn seeds_matter_but_only_seeds() {
    let sys = GpfsConfig::on_lassen();
    let mut a = IorConfig::smoke(WorkloadClass::DataAnalytics, 2, 8);
    let mut b = a.clone();
    b.seed = a.seed + 1;
    let ra = run_ior(&sys, &a);
    let rb = run_ior(&sys, &b);
    assert_ne!(
        ra.outcome.bandwidths, rb.outcome.bandwidths,
        "seed changes noise"
    );
    // But the underlying (noise-free) mean is stable within noise.
    let ratio = ra.mean_bandwidth() / rb.mean_bandwidth();
    assert!((0.8..1.2).contains(&ratio), "means stay close: {ratio}");
    a.seed += 1;
    assert_eq!(run_ior(&sys, &a).outcome.bandwidths, rb.outcome.bandwidths);
}

#[test]
fn rng_streams_are_stable_across_runs() {
    // Pin a few draws so an accidental RNG swap is caught loudly.
    let mut r = SimRng::new(42).split("pinned");
    let draws: Vec<u64> = (0..4).map(|_| r.below(1_000_000)).collect();
    let mut r2 = SimRng::new(42).split("pinned");
    let again: Vec<u64> = (0..4).map(|_| r2.below(1_000_000)).collect();
    assert_eq!(draws, again);
}

#[test]
fn parallel_figure_generation_is_deterministic() {
    // rayon sweeps must not leak scheduling order into results.
    use hcs_experiments::figures::fig2;
    use hcs_experiments::Scale;
    let a = fig2::generate(Scale::Smoke);
    let b = fig2::generate(Scale::Smoke);
    assert_eq!(a, b);
}

#[test]
fn deck_results_are_independent_of_worker_count() {
    // The deck executor fans points out over the rayon pool; a run
    // pinned to one worker must be bit-identical to a run on several —
    // the scheduling never reaches the physics.
    use hcs_experiments::run_deck;
    let deck = hcs_experiments::figures::example_deck().smoked();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_deck(&deck);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run_deck(&deck);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a, b, "point {} differs across pool sizes", a.scenario.name);
    }
}

#[test]
fn deck_metrics_are_independent_of_worker_count() {
    // The metered executor also fans out over the pool. Wall clock is
    // the *only* non-deterministic metric (and is excluded from the
    // deck summary and reports); everything else must be bit-identical
    // across pool sizes.
    use hcs_experiments::run_deck_with_metrics;
    let deck = hcs_experiments::figures::example_deck().smoked();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_deck_with_metrics(&deck);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run_deck_with_metrics(&deck);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(serial.metrics, parallel.metrics, "deck summaries differ");
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        let (ma, mb) = (a.metrics.as_ref().unwrap(), b.metrics.as_ref().unwrap());
        let mut mb = mb.clone();
        mb.wall_clock_seconds = ma.wall_clock_seconds;
        assert_eq!(
            *ma, mb,
            "metrics for {} differ across pool sizes",
            a.scenario.name
        );
    }
}

mod stats_merge {
    //! The deck summary is built from [`hcs_core::Stats`] accumulators
    //! merged across points; merge is concatenation, so it must be
    //! associative *at the bit level* and equal to sequential pushes —
    //! the algebra behind the worker-count independence above.
    use hcs_core::Stats;
    use proptest::prelude::*;

    fn merged(chunks: &[&[f64]]) -> Stats {
        let mut out = Stats::new();
        for c in chunks {
            out.merge(&Stats::from_values(c.to_vec()));
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn merge_is_associative_and_matches_pushes(
            a in prop::collection::vec(-1e12f64..1e12, 0..8),
            b in prop::collection::vec(-1e12f64..1e12, 0..8),
            c in prop::collection::vec(-1e12f64..1e12, 0..8),
        ) {
            // ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) bitwise.
            let mut left = merged(&[&a, &b]);
            left.merge(&Stats::from_values(c.clone()));
            let mut bc = Stats::from_values(b.clone());
            bc.merge(&Stats::from_values(c.clone()));
            let mut right = Stats::from_values(a.clone());
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // And both equal pushing every value in order.
            let mut seq = Stats::new();
            for v in a.iter().chain(&b).chain(&c) {
                seq.push(*v);
            }
            prop_assert_eq!(&left, &seq);
            // Derived statistics are recomputed from the stored values,
            // so they agree bitwise too.
            prop_assert_eq!(left.summary(), seq.summary());
        }
    }
}
