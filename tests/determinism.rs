//! Determinism guarantees: identical inputs produce bit-identical
//! outputs across the whole stack — the property that makes the
//! experiment suite reviewable.

use hcs_dlio::{cosmoflow, resnet50, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_simkit::SimRng;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

#[test]
fn ior_reports_are_bit_identical() {
    let systems: Vec<Box<dyn hcs_core::StorageSystem>> = vec![
        Box::new(vast_on_lassen()),
        Box::new(vast_on_wombat()),
        Box::new(GpfsConfig::on_lassen()),
        Box::new(LustreConfig::on_ruby()),
        Box::new(LocalNvmeConfig::on_wombat()),
    ];
    for sys in &systems {
        for w in WorkloadClass::all() {
            let cfg = IorConfig::smoke(w, 2, 8);
            let a = run_ior(sys.as_ref(), &cfg);
            let b = run_ior(sys.as_ref(), &cfg);
            assert_eq!(
                a.outcome.bandwidths,
                b.outcome.bandwidths,
                "{} / {:?}",
                sys.name(),
                w
            );
        }
    }
}

#[test]
fn dlio_runs_are_bit_identical() {
    let vast = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    for cfg in [resnet50().smoke(), cosmoflow().smoke()] {
        let a = run_dlio(&vast, &cfg, 2);
        let b = run_dlio(&vast, &cfg, 2);
        assert_eq!(a.tracer.events(), b.tracer.events(), "{} on VAST", cfg.name);
        let c = run_dlio(&gpfs, &cfg, 2);
        let d = run_dlio(&gpfs, &cfg, 2);
        assert_eq!(c.duration, d.duration, "{} on GPFS", cfg.name);
    }
}

#[test]
fn seeds_matter_but_only_seeds() {
    let sys = GpfsConfig::on_lassen();
    let mut a = IorConfig::smoke(WorkloadClass::DataAnalytics, 2, 8);
    let mut b = a.clone();
    b.seed = a.seed + 1;
    let ra = run_ior(&sys, &a);
    let rb = run_ior(&sys, &b);
    assert_ne!(
        ra.outcome.bandwidths, rb.outcome.bandwidths,
        "seed changes noise"
    );
    // But the underlying (noise-free) mean is stable within noise.
    let ratio = ra.mean_bandwidth() / rb.mean_bandwidth();
    assert!((0.8..1.2).contains(&ratio), "means stay close: {ratio}");
    a.seed += 1;
    assert_eq!(run_ior(&sys, &a).outcome.bandwidths, rb.outcome.bandwidths);
}

#[test]
fn rng_streams_are_stable_across_runs() {
    // Pin a few draws so an accidental RNG swap is caught loudly.
    let mut r = SimRng::new(42).split("pinned");
    let draws: Vec<u64> = (0..4).map(|_| r.below(1_000_000)).collect();
    let mut r2 = SimRng::new(42).split("pinned");
    let again: Vec<u64> = (0..4).map(|_| r2.below(1_000_000)).collect();
    assert_eq!(draws, again);
}

#[test]
fn parallel_figure_generation_is_deterministic() {
    // rayon sweeps must not leak scheduling order into results.
    use hcs_experiments::figures::fig2;
    use hcs_experiments::Scale;
    let a = fig2::generate(Scale::Smoke);
    let b = fig2::generate(Scale::Smoke);
    assert_eq!(a, b);
}

#[test]
fn deck_results_are_independent_of_worker_count() {
    // The deck executor fans points out over the rayon pool; a run
    // pinned to one worker must be bit-identical to a run on several —
    // the scheduling never reaches the physics.
    use hcs_experiments::run_deck;
    let deck = hcs_experiments::figures::example_deck().smoked();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_deck(&deck);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run_deck(&deck);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a, b, "point {} differs across pool sizes", a.scenario.name);
    }
}

#[test]
fn deck_metrics_are_independent_of_worker_count() {
    // The metered executor also fans out over the pool. Wall clock is
    // the *only* non-deterministic metric (and is excluded from the
    // deck summary and reports); everything else must be bit-identical
    // across pool sizes.
    use hcs_experiments::run_deck_with_metrics;
    let deck = hcs_experiments::figures::example_deck().smoked();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_deck_with_metrics(&deck);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run_deck_with_metrics(&deck);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(serial.metrics, parallel.metrics, "deck summaries differ");
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        let (ma, mb) = (a.metrics.as_ref().unwrap(), b.metrics.as_ref().unwrap());
        let mut mb = mb.clone();
        mb.wall_clock_seconds = ma.wall_clock_seconds;
        assert_eq!(
            *ma, mb,
            "metrics for {} differ across pool sizes",
            a.scenario.name
        );
    }
}

#[test]
fn open_loop_deck_metrics_are_independent_of_worker_count() {
    // Open-loop points carry latency histograms and the deck summary
    // gains knee verdicts; both are built from integer bucket counts,
    // so they must be bit-identical across pool sizes too.
    use hcs_core::{Arrival, Deck, Discipline, Scenario, Workload};
    use hcs_experiments::run_deck_with_metrics;
    let scenario = Scenario::new(
        "vast-lassen",
        Workload::Ior(IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4)),
    )
    .with_arrival(Arrival::Open {
        rate: 1.0,
        discipline: Discipline::Poisson,
        duration: 0.3,
        seed: 11,
    });
    let mut deck = Deck::single("open-parity", scenario);
    deck.axes.offered_load = vec![100.0, 200.0];
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_deck_with_metrics(&deck);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run_deck_with_metrics(&deck);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(serial.metrics, parallel.metrics, "deck summaries differ");
    let knees = &serial.metrics.as_ref().unwrap().knees;
    assert_eq!(knees.len(), 1, "offered-load sweep yields a knee verdict");
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        let (ma, mb) = (a.metrics.as_ref().unwrap(), b.metrics.as_ref().unwrap());
        assert!(!ma.latency.is_empty(), "open-loop points carry latency");
        let mut mb = mb.clone();
        mb.wall_clock_seconds = ma.wall_clock_seconds;
        assert_eq!(
            *ma, mb,
            "metrics for {} differ across pool sizes",
            a.scenario.name
        );
    }
}

#[test]
fn provenance_blame_reports_are_independent_of_worker_count() {
    // The blame probe attributes per-op latency in completion order
    // and the report renderer omits wall clock, so a provenance deck
    // pinned to one worker must render the same blame report — Tail
    // forensics section included — as a run on several.
    use hcs_core::{Arrival, Deck, Discipline, Scenario, Workload};
    use hcs_experiments::{render_markdown, run_deck_with_provenance};
    let scenario = Scenario::new(
        "vast-lassen",
        Workload::Ior(IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4)),
    )
    .with_arrival(Arrival::Open {
        rate: 1.0,
        discipline: Discipline::Poisson,
        duration: 0.3,
        seed: 11,
    });
    let mut deck = Deck::single("blame-parity", scenario);
    deck.axes.offered_load = vec![100.0, 2000.0];
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_deck_with_provenance(&deck);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run_deck_with_provenance(&deck);
    std::env::remove_var("RAYON_NUM_THREADS");
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        let pa = a.metrics.as_ref().unwrap().provenance.as_ref();
        let pb = b.metrics.as_ref().unwrap().provenance.as_ref();
        assert!(pa.is_some(), "provenance deck decomposes every point");
        assert_eq!(
            pa, pb,
            "blame attribution for {} differs across pool sizes",
            a.scenario.name
        );
    }
    let (ra, rb) = (render_markdown(&serial), render_markdown(&parallel));
    assert_eq!(ra, rb, "blame reports differ across pool sizes");
    assert!(ra.contains("## Tail forensics"), "{ra}");
}

mod latency_histogram {
    //! The latency histogram is the other merge algebra behind
    //! worker-count independence: counts are exact integers, so merge
    //! must be a bitwise-exact commutative monoid, and a recorded value
    //! must read back from `percentile` within its own bucket width.
    use hcs_core::LatencyHistogram;
    use proptest::prelude::*;

    fn from_ticks(ticks: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &t in ticks {
            h.record(t as f64 / 1e6);
        }
        h
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn merge_is_associative_and_commutative(
            a in prop::collection::vec(0u64..10_000_000_000, 0..16),
            b in prop::collection::vec(0u64..10_000_000_000, 0..16),
            c in prop::collection::vec(0u64..10_000_000_000, 0..16),
        ) {
            let (ha, hb, hc) = (from_ticks(&a), from_ticks(&b), from_ticks(&c));
            // ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) bitwise.
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // b ⊕ a == a ⊕ b bitwise.
            let mut ab = ha.clone();
            ab.merge(&hb);
            let mut ba = hb.clone();
            ba.merge(&ha);
            prop_assert_eq!(&ab, &ba);
            // And the merge equals recording every value in one pass.
            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&left, &from_ticks(&all));
        }

        #[test]
        fn percentile_round_trips_within_one_bucket_width(
            ticks in 0u64..10_000_000_000,
            p in 0.0f64..=100.0,
        ) {
            // A lone sample is every quantile; the reported value is its
            // bucket's upper edge, which bounds the sample from above
            // within 1/32 relative error (exact below 32 µs).
            let h = from_ticks(&[ticks]);
            let got = (h.percentile(p).expect("one sample recorded") * 1e6).round() as u64;
            prop_assert!(got >= ticks, "{got} < {ticks}");
            prop_assert!(
                got <= ticks + ticks / 32,
                "{got} beyond one bucket width above {ticks}"
            );
        }
    }
}

mod stats_merge {
    //! The deck summary is built from [`hcs_core::Stats`] accumulators
    //! merged across points; merge is concatenation, so it must be
    //! associative *at the bit level* and equal to sequential pushes —
    //! the algebra behind the worker-count independence above.
    use hcs_core::Stats;
    use proptest::prelude::*;

    fn merged(chunks: &[&[f64]]) -> Stats {
        let mut out = Stats::new();
        for c in chunks {
            out.merge(&Stats::from_values(c.to_vec()));
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn merge_is_associative_and_matches_pushes(
            a in prop::collection::vec(-1e12f64..1e12, 0..8),
            b in prop::collection::vec(-1e12f64..1e12, 0..8),
            c in prop::collection::vec(-1e12f64..1e12, 0..8),
        ) {
            // ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) bitwise.
            let mut left = merged(&[&a, &b]);
            left.merge(&Stats::from_values(c.clone()));
            let mut bc = Stats::from_values(b.clone());
            bc.merge(&Stats::from_values(c.clone()));
            let mut right = Stats::from_values(a.clone());
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // And both equal pushing every value in order.
            let mut seq = Stats::new();
            for v in a.iter().chain(&b).chain(&c) {
                seq.push(*v);
            }
            prop_assert_eq!(&left, &seq);
            // Derived statistics are recomputed from the stored values,
            // so they agree bitwise too.
            prop_assert_eq!(left.summary(), seq.summary());
        }
    }
}
