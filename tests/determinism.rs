//! Determinism guarantees: identical inputs produce bit-identical
//! outputs across the whole stack — the property that makes the
//! experiment suite reviewable.

use hcs_dlio::{cosmoflow, resnet50, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_simkit::SimRng;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

#[test]
fn ior_reports_are_bit_identical() {
    let systems: Vec<Box<dyn hcs_core::StorageSystem>> = vec![
        Box::new(vast_on_lassen()),
        Box::new(vast_on_wombat()),
        Box::new(GpfsConfig::on_lassen()),
        Box::new(LustreConfig::on_ruby()),
        Box::new(LocalNvmeConfig::on_wombat()),
    ];
    for sys in &systems {
        for w in WorkloadClass::all() {
            let cfg = IorConfig::smoke(w, 2, 8);
            let a = run_ior(sys.as_ref(), &cfg);
            let b = run_ior(sys.as_ref(), &cfg);
            assert_eq!(
                a.outcome.bandwidths,
                b.outcome.bandwidths,
                "{} / {:?}",
                sys.name(),
                w
            );
        }
    }
}

#[test]
fn dlio_runs_are_bit_identical() {
    let vast = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    for cfg in [resnet50().smoke(), cosmoflow().smoke()] {
        let a = run_dlio(&vast, &cfg, 2);
        let b = run_dlio(&vast, &cfg, 2);
        assert_eq!(a.tracer.events(), b.tracer.events(), "{} on VAST", cfg.name);
        let c = run_dlio(&gpfs, &cfg, 2);
        let d = run_dlio(&gpfs, &cfg, 2);
        assert_eq!(c.duration, d.duration, "{} on GPFS", cfg.name);
    }
}

#[test]
fn seeds_matter_but_only_seeds() {
    let sys = GpfsConfig::on_lassen();
    let mut a = IorConfig::smoke(WorkloadClass::DataAnalytics, 2, 8);
    let mut b = a.clone();
    b.seed = a.seed + 1;
    let ra = run_ior(&sys, &a);
    let rb = run_ior(&sys, &b);
    assert_ne!(
        ra.outcome.bandwidths, rb.outcome.bandwidths,
        "seed changes noise"
    );
    // But the underlying (noise-free) mean is stable within noise.
    let ratio = ra.mean_bandwidth() / rb.mean_bandwidth();
    assert!((0.8..1.2).contains(&ratio), "means stay close: {ratio}");
    a.seed += 1;
    assert_eq!(run_ior(&sys, &a).outcome.bandwidths, rb.outcome.bandwidths);
}

#[test]
fn rng_streams_are_stable_across_runs() {
    // Pin a few draws so an accidental RNG swap is caught loudly.
    let mut r = SimRng::new(42).split("pinned");
    let draws: Vec<u64> = (0..4).map(|_| r.below(1_000_000)).collect();
    let mut r2 = SimRng::new(42).split("pinned");
    let again: Vec<u64> = (0..4).map(|_| r2.below(1_000_000)).collect();
    assert_eq!(draws, again);
}

#[test]
fn parallel_figure_generation_is_deterministic() {
    // rayon sweeps must not leak scheduling order into results.
    use hcs_experiments::figures::fig2;
    use hcs_experiments::Scale;
    let a = fig2::generate(Scale::Smoke);
    let b = fig2::generate(Scale::Smoke);
    assert_eq!(a, b);
}

#[test]
fn deck_results_are_independent_of_worker_count() {
    // The deck executor fans points out over the rayon pool; a run
    // pinned to one worker must be bit-identical to a run on several —
    // the scheduling never reaches the physics.
    use hcs_experiments::run_deck;
    let deck = hcs_experiments::figures::example_deck().smoked();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_deck(&deck);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let parallel = run_deck(&deck);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(serial.points.len(), parallel.points.len());
    for (a, b) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(a, b, "point {} differs across pool sizes", a.scenario.name);
    }
}
