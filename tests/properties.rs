//! Property-based tests (proptest) on the suite's core invariants.

use proptest::prelude::*;

use hcs_core::runner::run_phase;
use hcs_core::testing::UniformSystem;
use hcs_core::PhaseSpec;
use hcs_simkit::{FlowNet, FlowSpec, IntervalSet, ResourceSpec};

// ---------------------------------------------------------------------
// Flow engine invariants
// ---------------------------------------------------------------------

/// One generated flow: path indices, bytes, weight, multiplicity, cap.
type GenFlow = (Vec<usize>, f64, f64, u32, Option<f64>);

/// Arbitrary small topology: resource capacities plus flows with random
/// paths, sizes, weights, caps and multiplicities.
fn flow_world() -> impl Strategy<Value = (Vec<f64>, Vec<GenFlow>)> {
    let caps = prop::collection::vec(1.0e6..1.0e9f64, 1..6);
    caps.prop_flat_map(|caps| {
        let n = caps.len();
        let flow = (
            prop::collection::vec(0..n, 1..=n.min(4)),
            1.0e3..1.0e8f64,            // bytes
            0.1..8.0f64,                // weight
            1u32..5,                    // multiplicity
            prop::option::of(1.0e5..1.0e9f64), // rate cap
        );
        (Just(caps), prop::collection::vec(flow, 1..12))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No resource is ever allocated beyond its capacity, and every
    /// flow's rate respects its cap.
    #[test]
    fn max_min_allocation_is_feasible((caps, flows) in flow_world()) {
        let mut net = FlowNet::new();
        let ids: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| net.add_resource(ResourceSpec::new(format!("r{i}"), c)))
            .collect();
        let mut flow_ids = Vec::new();
        for (path, bytes, weight, mult, cap) in &flows {
            let mut dedup: Vec<_> = path.iter().map(|&i| ids[i]).collect();
            dedup.dedup();
            let mut spec = FlowSpec::new(dedup, *bytes)
                .with_weight(*weight)
                .with_multiplicity(*mult);
            if let Some(c) = cap {
                spec = spec.with_rate_cap(*c);
            }
            flow_ids.push((net.add_flow(spec), *cap));
        }
        for (name, alloc, capacity) in net.resource_utilization() {
            prop_assert!(
                alloc <= capacity * (1.0 + 1e-6),
                "{name} over-allocated: {alloc} > {capacity}"
            );
        }
        for (id, cap) in flow_ids {
            if let (Some(rate), Some(cap)) = (net.flow_rate(id), cap) {
                prop_assert!(rate <= cap * (1.0 + 1e-9), "rate {rate} above cap {cap}");
            }
        }
    }

    /// Work conservation on a single resource: if any flow wants more,
    /// the resource is fully used (no capacity is wasted).
    #[test]
    fn single_resource_is_work_conserving(
        cap in 1.0e6..1.0e9f64,
        sizes in prop::collection::vec(1.0e6..1.0e9f64, 1..10),
    ) {
        let mut net = FlowNet::new();
        let r = net.add_resource(ResourceSpec::new("r", cap));
        for s in &sizes {
            net.add_flow(FlowSpec::new(vec![r], *s));
        }
        let agg = net.aggregate_rate();
        prop_assert!((agg - cap).abs() < cap * 1e-9, "agg {agg} != cap {cap}");
    }

    /// Completion order on a fair single resource follows size order,
    /// and the makespan equals total bytes over capacity.
    #[test]
    fn single_resource_completion_order(
        cap in 1.0e6..1.0e8f64,
        mut sizes in prop::collection::vec(1.0e5..1.0e8f64, 2..8),
    ) {
        let mut net = FlowNet::new();
        let r = net.add_resource(ResourceSpec::new("r", cap));
        let total: f64 = sizes.iter().sum();
        for (i, s) in sizes.iter().enumerate() {
            net.add_flow(FlowSpec::new(vec![r], *s).with_tag(i as u64));
        }
        let mut order = Vec::new();
        let end = net.run_to_completion(|_, c| order.push(c.tag as usize));
        // Makespan: the resource never idles.
        prop_assert!((end - total / cap).abs() < end * 1e-6);
        // Completions sorted by size (ties can go either way).
        for w in order.windows(2) {
            prop_assert!(
                sizes[w[0]] <= sizes[w[1]] * (1.0 + 1e-9),
                "completion out of size order"
            );
        }
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}

// ---------------------------------------------------------------------
// Interval algebra laws
// ---------------------------------------------------------------------

fn intervals() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..100.0f64, 0.0..10.0f64), 0..12)
        .prop_map(|v| v.into_iter().map(|(s, d)| (s, s + d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// |A| = |A ∩ B| + |A \ B| — the decomposition the paper's overlap
    /// analysis rests on.
    #[test]
    fn interval_partition_law(a in intervals(), b in intervals()) {
        let sa = IntervalSet::from_intervals(a);
        let sb = IntervalSet::from_intervals(b);
        let lhs = sa.total();
        let rhs = sa.intersect(&sb).total() + sa.subtract(&sb).total();
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.max(1.0), "{lhs} vs {rhs}");
    }

    /// Inclusion–exclusion: |A ∪ B| = |A| + |B| − |A ∩ B|.
    #[test]
    fn interval_inclusion_exclusion(a in intervals(), b in intervals()) {
        let sa = IntervalSet::from_intervals(a);
        let sb = IntervalSet::from_intervals(b);
        let lhs = sa.union(&sb).total();
        let rhs = sa.total() + sb.total() - sa.intersect(&sb).total();
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.max(1.0));
    }

    /// Inserting one by one equals building at once.
    #[test]
    fn insert_equals_batch(a in intervals()) {
        let batch = IntervalSet::from_intervals(a.clone());
        let mut inc = IntervalSet::new();
        for (s, e) in a {
            inc.insert(s, e);
        }
        prop_assert_eq!(batch, inc);
    }
}

// ---------------------------------------------------------------------
// Runner accounting identities
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IOR accounting: bandwidth × slowest-rank duration = total bytes,
    /// and scaling nodes never lowers aggregate bandwidth on an
    /// uncontended pool.
    #[test]
    fn runner_accounting_identity(
        pool in 1.0e9..1.0e11f64,
        nodes in 1u32..12,
        ppn in 1u32..16,
        per_rank in 1.0e7..1.0e9f64,
    ) {
        let sys = UniformSystem::new("p", pool);
        let phase = PhaseSpec::seq_read(1.0e6, per_rank);
        let out = run_phase(&sys, nodes, ppn, &phase);
        let identity = out.agg_bandwidth * out.duration;
        prop_assert!((identity - out.total_bytes).abs() < out.total_bytes * 1e-9);
        prop_assert!(out.agg_bandwidth <= pool * (1.0 + 1e-9));

        if nodes > 1 {
            let smaller = run_phase(&sys, nodes - 1, ppn, &phase);
            prop_assert!(out.agg_bandwidth >= smaller.agg_bandwidth * (1.0 - 1e-9));
        }
    }
}
