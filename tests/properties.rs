//! Property-based tests (proptest) on the suite's core invariants.

use proptest::prelude::*;

use hcs_core::runner::run_phase;
use hcs_core::testing::UniformSystem;
use hcs_core::{DeploymentGraph, PhaseSpec, Stage, StageKind, StageScope};
use hcs_simkit::{FlowNet, FlowSpec, IntervalSet, ResourceSpec};

// ---------------------------------------------------------------------
// Flow engine invariants
// ---------------------------------------------------------------------

/// One generated flow: path indices, bytes, weight, multiplicity, cap.
type GenFlow = (Vec<usize>, f64, f64, u32, Option<f64>);

/// Arbitrary small topology: resource capacities plus flows with random
/// paths, sizes, weights, caps and multiplicities.
fn flow_world() -> impl Strategy<Value = (Vec<f64>, Vec<GenFlow>)> {
    let caps = prop::collection::vec(1.0e6..1.0e9f64, 1..6);
    caps.prop_flat_map(|caps| {
        let n = caps.len();
        let flow = (
            prop::collection::vec(0..n, 1..=n.min(4)),
            1.0e3..1.0e8f64,                   // bytes
            0.1..8.0f64,                       // weight
            1u32..5,                           // multiplicity
            prop::option::of(1.0e5..1.0e9f64), // rate cap
        );
        (Just(caps), prop::collection::vec(flow, 1..12))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No resource is ever allocated beyond its capacity, and every
    /// flow's rate respects its cap.
    #[test]
    fn max_min_allocation_is_feasible((caps, flows) in flow_world()) {
        let mut net = FlowNet::new();
        let ids: Vec<_> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| net.add_resource(ResourceSpec::new(format!("r{i}"), c)))
            .collect();
        let mut flow_ids = Vec::new();
        for (path, bytes, weight, mult, cap) in &flows {
            let mut dedup: Vec<_> = path.iter().map(|&i| ids[i]).collect();
            dedup.dedup();
            let mut spec = FlowSpec::new(dedup, *bytes)
                .with_weight(*weight)
                .with_multiplicity(*mult);
            if let Some(c) = cap {
                spec = spec.with_rate_cap(*c);
            }
            flow_ids.push((net.add_flow(spec), *cap));
        }
        for (name, alloc, capacity) in net.resource_utilization() {
            prop_assert!(
                alloc <= capacity * (1.0 + 1e-6),
                "{name} over-allocated: {alloc} > {capacity}"
            );
        }
        for (id, cap) in flow_ids {
            if let (Some(rate), Some(cap)) = (net.flow_rate(id), cap) {
                prop_assert!(rate <= cap * (1.0 + 1e-9), "rate {rate} above cap {cap}");
            }
        }
    }

    /// Work conservation on a single resource: if any flow wants more,
    /// the resource is fully used (no capacity is wasted).
    #[test]
    fn single_resource_is_work_conserving(
        cap in 1.0e6..1.0e9f64,
        sizes in prop::collection::vec(1.0e6..1.0e9f64, 1..10),
    ) {
        let mut net = FlowNet::new();
        let r = net.add_resource(ResourceSpec::new("r", cap));
        for s in &sizes {
            net.add_flow(FlowSpec::new(vec![r], *s));
        }
        let agg = net.aggregate_rate();
        prop_assert!((agg - cap).abs() < cap * 1e-9, "agg {agg} != cap {cap}");
    }

    /// Completion order on a fair single resource follows size order,
    /// and the makespan equals total bytes over capacity.
    #[test]
    fn single_resource_completion_order(
        cap in 1.0e6..1.0e8f64,
        mut sizes in prop::collection::vec(1.0e5..1.0e8f64, 2..8),
    ) {
        let mut net = FlowNet::new();
        let r = net.add_resource(ResourceSpec::new("r", cap));
        let total: f64 = sizes.iter().sum();
        for (i, s) in sizes.iter().enumerate() {
            net.add_flow(FlowSpec::new(vec![r], *s).with_tag(i as u64));
        }
        let mut order = Vec::new();
        let end = net.run_to_completion(|_, c| order.push(c.tag as usize));
        // Makespan: the resource never idles.
        prop_assert!((end - total / cap).abs() < end * 1e-6);
        // Completions sorted by size (ties can go either way).
        for w in order.windows(2) {
            prop_assert!(
                sizes[w[0]] <= sizes[w[1]] * (1.0 + 1e-9),
                "completion out of size order"
            );
        }
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}

// ---------------------------------------------------------------------
// Interval algebra laws
// ---------------------------------------------------------------------

fn intervals() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0..100.0f64, 0.0..10.0f64), 0..12)
        .prop_map(|v| v.into_iter().map(|(s, d)| (s, s + d)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// |A| = |A ∩ B| + |A \ B| — the decomposition the paper's overlap
    /// analysis rests on.
    #[test]
    fn interval_partition_law(a in intervals(), b in intervals()) {
        let sa = IntervalSet::from_intervals(a);
        let sb = IntervalSet::from_intervals(b);
        let lhs = sa.total();
        let rhs = sa.intersect(&sb).total() + sa.subtract(&sb).total();
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.max(1.0), "{lhs} vs {rhs}");
    }

    /// Inclusion–exclusion: |A ∪ B| = |A| + |B| − |A ∩ B|.
    #[test]
    fn interval_inclusion_exclusion(a in intervals(), b in intervals()) {
        let sa = IntervalSet::from_intervals(a);
        let sb = IntervalSet::from_intervals(b);
        let lhs = sa.union(&sb).total();
        let rhs = sa.total() + sb.total() - sa.intersect(&sb).total();
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.max(1.0));
    }

    /// Inserting one by one equals building at once.
    #[test]
    fn insert_equals_batch(a in intervals()) {
        let batch = IntervalSet::from_intervals(a.clone());
        let mut inc = IntervalSet::new();
        for (s, e) in a {
            inc.insert(s, e);
        }
        prop_assert_eq!(batch, inc);
    }
}

// ---------------------------------------------------------------------
// Deployment-graph planner invariants
// ---------------------------------------------------------------------

/// An arbitrary deployment graph: 1–6 stages of random kind, scope and
/// capacity, with a positive per-stream ceiling.
fn deployment_graph() -> impl Strategy<Value = DeploymentGraph> {
    let kind = prop_oneof![
        Just(StageKind::ClientMount),
        Just(StageKind::Gateway),
        Just(StageKind::OpsPool),
        Just(StageKind::ServerPool),
        Just(StageKind::Fabric),
        Just(StageKind::Media),
    ];
    let scope = prop_oneof![
        Just(StageScope::Shared),
        (1u32..5).prop_map(|count| StageScope::Sharded { count }),
        Just(StageScope::PerNode),
    ];
    let stage = (kind, scope, 1.0e8..1.0e11f64);
    (
        prop::collection::vec(stage, 1..=6),
        1.0e8..1.0e10f64, // per_stream_bw
        0.0..1.0e-3f64,   // per_op_latency
    )
        .prop_map(|(stages, stream, lat)| {
            let mut g = DeploymentGraph::new(stream, lat, 0.0);
            for (i, (kind, scope, bw)) in stages.into_iter().enumerate() {
                g.stages.push(Stage {
                    name: format!("s{i}:"),
                    kind,
                    scope,
                    capacity: hcs_core::Capacity::Bandwidth(bw),
                });
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The planner conserves capacity at every stage: no resource is
    /// allocated past what the graph declares, every resource carries a
    /// stage kind, and every node path visits its stages client→media.
    #[test]
    fn planner_conserves_stage_capacity(
        graph in deployment_graph(),
        nodes in 1u32..6,
        ppn in 1u32..8,
    ) {
        let phase = PhaseSpec::seq_read(1.0e6, 6.4e7);
        let out = run_phase(&GraphSystem(graph.clone()), nodes, ppn, &phase);

        // Resource count is exactly what the scopes promise.
        let expected: usize = graph.stages.iter().map(|s| match s.scope {
            StageScope::Shared => 1,
            StageScope::Sharded { count } => count as usize,
            StageScope::PerNode => nodes as usize,
        }).sum();
        prop_assert_eq!(out.utilization.len(), expected);

        // Conservation: allocation never exceeds the declared capacity.
        for (name, alloc, cap) in &out.utilization {
            prop_assert!(
                *alloc <= cap * (1.0 + 1e-6),
                "{} over-allocated: {} > {}", name, alloc, cap
            );
        }

        // Paths visit stage kinds in client→media order.
        let mut net = FlowNet::new();
        let prov = graph.provision(&mut net, nodes, &phase);
        prop_assert_eq!(prov.stage_kinds.len(), expected);
        for path in &prov.node_paths {
            let kinds: Vec<StageKind> = path
                .iter()
                .map(|id| {
                    prov.stage_kinds
                        .iter()
                        .find(|(rid, _)| rid == id)
                        .expect("path resource has a stage kind")
                        .1
                })
                .collect();
            for w in kinds.windows(2) {
                prop_assert!(w[0] <= w[1], "path out of stage order: {:?}", kinds);
            }
        }
    }
}

/// Minimal `StorageSystem` around a fixed graph, for planner tests.
struct GraphSystem(DeploymentGraph);

impl hcs_core::StorageSystem for GraphSystem {
    fn name(&self) -> &str {
        "graph-under-test"
    }

    fn plan(&self, _nodes: u32, _ppn: u32, _phase: &PhaseSpec) -> DeploymentGraph {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Runner accounting identities
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IOR accounting: bandwidth × slowest-rank duration = total bytes,
    /// and scaling nodes never lowers aggregate bandwidth on an
    /// uncontended pool.
    #[test]
    fn runner_accounting_identity(
        pool in 1.0e9..1.0e11f64,
        nodes in 1u32..12,
        ppn in 1u32..16,
        per_rank in 1.0e7..1.0e9f64,
    ) {
        let sys = UniformSystem::new("p", pool);
        let phase = PhaseSpec::seq_read(1.0e6, per_rank);
        let out = run_phase(&sys, nodes, ppn, &phase);
        let identity = out.agg_bandwidth * out.duration;
        prop_assert!((identity - out.total_bytes).abs() < out.total_bytes * 1e-9);
        prop_assert!(out.agg_bandwidth <= pool * (1.0 + 1e-9));

        if nodes > 1 {
            let smaller = run_phase(&sys, nodes - 1, ppn, &phase);
            prop_assert!(out.agg_bandwidth >= smaller.agg_bandwidth * (1.0 - 1e-9));
        }
    }
}
