//! Degradation and failure-injection scenarios: what happens to the
//! storage systems when links shrink, servers disappear or caches are
//! disabled. These exercise the model's causal structure — removing a
//! component must hurt exactly the metrics that depend on it.

use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_simkit::{FlowLogHandle, FlowNet, FlowSpec, ResourceSpec};
use hcs_vast::{vast_on_lassen, vast_on_wombat};

#[test]
fn mid_run_link_degradation_slows_flows() {
    let mut net = FlowNet::new();
    let link = net.add_resource(ResourceSpec::new("link", 100.0));
    net.add_flow(FlowSpec::new(vec![link], 1000.0));
    net.advance_to(2.0); // 200 bytes done
    net.set_resource_capacity(link, 10.0); // degraded 10x
    let t = net.next_completion_time().expect("still flowing");
    assert!((t - 82.0).abs() < 1e-6, "t = {t}");
}

#[test]
fn total_link_failure_stalls_then_recovers() {
    let mut net = FlowNet::new();
    let probe = FlowLogHandle::attach(&mut net);
    let link = net.add_resource(ResourceSpec::new("link", 100.0));
    net.add_flow(FlowSpec::new(vec![link], 1000.0));
    net.advance_to(1.0);
    net.set_resource_capacity(link, 0.0);
    assert_eq!(net.next_completion_time(), None, "stalled");
    net.advance_to(5.0); // time passes, nothing moves
    net.set_resource_capacity(link, 100.0);
    let t = net.next_completion_time().expect("recovered");
    assert!((t - 14.0).abs() < 1e-6, "t = {t}");

    // The telemetry timeline must show the outage as a utilization hole:
    // full rate until the failure, a dead window [1, 5), full rate again
    // on recovery — the step function a Chrome-trace viewer would draw.
    let timeline = probe.snapshot().utilization_of(link);
    let expect = [(0.0, 100.0, 100.0), (1.0, 0.0, 0.0), (5.0, 100.0, 100.0)];
    assert_eq!(timeline.len(), expect.len(), "timeline: {timeline:?}");
    for ((t, alloc, cap), (et, ea, ec)) in timeline.iter().zip(expect) {
        assert!(
            (t - et).abs() < 1e-9 && (alloc - ea).abs() < 1e-9 && (cap - ec).abs() < 1e-9,
            "stall window mis-recorded: {timeline:?}"
        );
    }
}

#[test]
fn losing_cnodes_degrades_vast_writes_proportionally() {
    let full = vast_on_wombat();
    let mut degraded = vast_on_wombat();
    degraded.cnodes = 4; // half the CNodes down

    let cfg = IorConfig::smoke(WorkloadClass::Scientific, 4, 48);
    let f = run_ior(&full, &cfg).mean_bandwidth();
    let d = run_ior(&degraded, &cfg).mean_bandwidth();
    let ratio = d / f;
    assert!(
        (0.4..0.65).contains(&ratio),
        "halving CNodes should roughly halve CNode-bound writes: {ratio}"
    );
}

#[test]
fn losing_a_dbox_degrades_wombat_reads() {
    let full = vast_on_wombat();
    let mut degraded = vast_on_wombat();
    degraded.dboxes = 3; // one enclosure offline

    let cfg = IorConfig::smoke(WorkloadClass::DataAnalytics, 8, 48);
    let f = run_ior(&full, &cfg).mean_bandwidth();
    let d = run_ior(&degraded, &cfg).mean_bandwidth();
    assert!(d < f, "fewer DNode forwarders must hurt saturated reads");
    assert!(d > 0.6 * f, "but only by about the lost fraction");
}

#[test]
fn gateway_outage_throttles_lassen_vast_only_at_scale() {
    let full = vast_on_lassen();
    let mut degraded = vast_on_lassen();
    if let Some(g) = &mut degraded.gateway {
        g.uplink.bandwidth /= 4.0; // three of four uplink lanes down
    }

    // One node: the single TCP stream never saw the full gateway anyway.
    let single = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 44);
    let f1 = run_ior(&full, &single).mean_bandwidth();
    let d1 = run_ior(&degraded, &single).mean_bandwidth();
    assert!(
        (d1 / f1 - 1.0).abs() < 0.05,
        "single node unaffected: {}",
        d1 / f1
    );

    // 64 nodes: the funnel is the bottleneck; losing lanes bites fully.
    let wide = IorConfig::smoke(WorkloadClass::DataAnalytics, 64, 44);
    let f64n = run_ior(&full, &wide).mean_bandwidth();
    let d64n = run_ior(&degraded, &wide).mean_bandwidth();
    assert!(
        (0.2..0.35).contains(&(d64n / f64n)),
        "quartered funnel quarters 64-node bandwidth: {}",
        d64n / f64n
    );
}

#[test]
fn gpfs_without_nsd_servers_loses_aggregate_not_per_node() {
    let full = GpfsConfig::on_lassen();
    let mut degraded = GpfsConfig::on_lassen();
    degraded.nsd_servers = 4; // 12 of 16 servers down
    degraded.hdd_count = full.hdd_count / 4;

    let single = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 44);
    let f1 = run_ior(&full, &single).mean_bandwidth();
    let d1 = run_ior(&degraded, &single).mean_bandwidth();
    assert!(
        d1 > 0.9 * f1,
        "one client is engine-bound, not server-bound"
    );

    let wide = IorConfig::smoke(WorkloadClass::DataAnalytics, 64, 44);
    let fw = run_ior(&full, &wide).mean_bandwidth();
    let dw = run_ior(&degraded, &wide).mean_bandwidth();
    assert!(dw < 0.5 * fw, "aggregate collapses with the server pool");
}

#[test]
fn zero_capacity_media_stalls_loudly() {
    // A storage system provisioned over dead media must stall, not
    // silently complete.
    let mut net = FlowNet::new();
    let dead = net.add_resource(ResourceSpec::new("dead", 0.0));
    net.add_flow(FlowSpec::new(vec![dead], 100.0));
    assert_eq!(net.next_completion_time(), None);
    assert_eq!(net.active_flow_count(), 1);
}

#[test]
fn cancelling_flows_releases_capacity_for_survivors() {
    let mut net = FlowNet::new();
    let link = net.add_resource(ResourceSpec::new("link", 100.0));
    let a = net.add_flow(FlowSpec::new(vec![link], 1000.0));
    let b = net.add_flow(FlowSpec::new(vec![link], 1000.0));
    net.advance_to(1.0);
    net.cancel(a); // client died
    assert_eq!(net.flow_rate(b), Some(100.0));
    let t = net.next_completion_time().unwrap();
    assert!((t - 10.5).abs() < 1e-6, "t = {t}");
}

#[test]
fn open_loop_outage_lifts_the_tail_and_bounds_stall() {
    // The open-loop driver composes with timed fault injection: a
    // mid-run gateway outage must push p99 out, and the closed-loop
    // stall invariant carries over — full-stall seconds never exceed
    // the outage window.
    use hcs_core::{Arrival, Discipline, FaultSpec, StageKind};
    use hcs_ior::run_ior_open_loop;

    let sys = vast_on_lassen();
    let cfg = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4);
    let arrival = Arrival::Open {
        rate: 200.0,
        discipline: Discipline::Poisson,
        duration: 0.4,
        seed: 3,
    };

    let (_, calm) = run_ior_open_loop(&sys, &cfg, &arrival, &[]).expect("fault-free run");
    assert_eq!(calm.report.stall_seconds, 0.0, "no faults, no stall");
    assert_eq!(calm.ops_completed, calm.ops_offered);

    let outage = [FaultSpec::outage(StageKind::Gateway, 0.1, 0.25)];
    let (_, stormy) = run_ior_open_loop(&sys, &cfg, &arrival, &outage).expect("recovered run");
    assert!(
        stormy.histogram.p99().unwrap() > calm.histogram.p99().unwrap(),
        "outage must push the tail: {} vs {}",
        stormy.histogram.p99().unwrap(),
        calm.histogram.p99().unwrap()
    );
    assert!(
        stormy.report.stall_seconds <= 0.15 + 1e-9,
        "stall is bounded by the outage window: {}",
        stormy.report.stall_seconds
    );
    assert_eq!(stormy.report.events_applied, 2, "outage start + recovery");
    assert_eq!(stormy.ops_completed, calm.ops_completed, "same offered ops");
}

#[test]
fn open_loop_composes_with_chaos_timelines() {
    // The chaos fuzzer's seeded timeline generator drives the open-loop
    // path exactly like the closed-loop one: every generated timeline
    // either completes with full-stall seconds bounded by its total
    // outage time, or stalls as a typed error — never a wrong answer.
    use hcs_core::chaos::{generate_timeline, FaultBudget};
    use hcs_core::scenario::FaultKind;
    use hcs_core::{Arrival, Discipline, StageKind};
    use hcs_ior::run_ior_open_loop;

    let sys = vast_on_lassen();
    let cfg = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4);
    let arrival = Arrival::Open {
        rate: 150.0,
        discipline: Discipline::Poisson,
        duration: 0.4,
        seed: 9,
    };
    let budget = FaultBudget {
        horizon_seconds: 0.5,
        max_outage_seconds: 0.2,
        ..FaultBudget::default()
    };
    let stages = [StageKind::ClientMount, StageKind::Gateway];

    let mut faulted_runs = 0;
    for k in 0..4 {
        let specs = generate_timeline(&budget, &stages, 0xC4A05, "open-chaos", k);
        let outage_budget: f64 = specs
            .iter()
            .filter(|s| s.fault == FaultKind::Outage)
            .map(|s| s.end - s.start)
            .sum();
        match run_ior_open_loop(&sys, &cfg, &arrival, &specs) {
            Ok((_, open)) => {
                assert!(
                    open.report.stall_seconds <= outage_budget + 1e-9,
                    "timeline {k}: stall {} exceeds its outage budget {outage_budget}",
                    open.report.stall_seconds
                );
                if !specs.is_empty() {
                    faulted_runs += 1;
                }
            }
            Err(e) => {
                // A terminal outage may starve the tail of the window;
                // that surfaces as the typed stall diagnostic.
                assert!(e.to_string().contains("stall"), "unexpected error: {e}");
            }
        }
    }
    assert!(
        faulted_runs > 0,
        "the seeded population must exercise faults"
    );
}

#[test]
fn overlapping_degrades_match_expanded_under_aggregation() {
    // Two Degrade windows overlapping on the same resource exercise the
    // engine's last-event-wins override (the second degrade's start
    // replaces the first's factor mid-window, and the first's recovery
    // restores full capacity inside the second window). The aggregated
    // (class) plan must reproduce the expanded plan bit for bit through
    // that interleaving, including the per-member event accounting.
    use hcs_core::graph::with_forced_aggregation;
    use hcs_core::runner::run_phase_with_faults;
    use hcs_core::scenario::FaultSpec;
    use hcs_core::testing::UniformSystem;
    use hcs_core::{PhaseSpec, StageKind};
    use hcs_simkit::units::{GIB, MIB};

    let sys = UniformSystem::new("toy", 100.0 * GIB).with_node_bw(GIB);
    let phase = PhaseSpec::seq_write(MIB, 64.0 * MIB);
    let faults = [
        FaultSpec::degrade(StageKind::ClientMount, 0.005, 0.030, 0.5),
        FaultSpec::degrade(StageKind::ClientMount, 0.020, 0.045, 0.8),
    ];
    let run = || run_phase_with_faults(&sys, 6, 2, &phase, &faults).unwrap();
    let exp = with_forced_aggregation(false, run);
    let agg = with_forced_aggregation(true, run);
    assert_eq!(exp.0.duration.to_bits(), agg.0.duration.to_bits());
    assert_eq!(exp.0.agg_bandwidth.to_bits(), agg.0.agg_bandwidth.to_bits());
    for (a, b) in exp.0.per_node_duration.iter().zip(&agg.0.per_node_duration) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(exp.1.stall_seconds.to_bits(), agg.1.stall_seconds.to_bits());
    // 6 mounts x 2 windows x (start + recovery) in both plans.
    assert_eq!(exp.1.events_applied, 24);
    assert_eq!(agg.1.events_applied, 24);
    // Overlap really throttled the run: slower than fault-free.
    let clean = with_forced_aggregation(false, || hcs_core::runner::run_phase(&sys, 6, 2, &phase));
    assert!(exp.0.duration > clean.duration);
}
