//! What-if trace replay: profile a training job once, predict its I/O
//! behaviour on every other storage deployment without re-running it.
//!
//! This is the workflow DFTracer enables in the paper (§IV.C.2) taken
//! one step further: the captured trace's compute timeline is kept
//! verbatim and its reads are re-driven through each candidate system.
//!
//! ```sh
//! cargo run --release --example what_if
//! ```

use hcs_core::StorageSystem;
use hcs_dlio::{resnet50, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_replay::{replay, ReplayConfig};
use hcs_unifyfs::UnifyFsConfig;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

fn main() {
    // 1. Capture: run ResNet-50 on the TCP-mounted VAST, 4 nodes, and
    //    keep the DFTracer-style trace.
    let source_sys = vast_on_lassen();
    let captured = run_dlio(&source_sys, &resnet50(), 4);
    println!(
        "captured: {} on {} — {} events, io {:.2}s/node (stall {:.3}s)\n",
        captured.workload,
        captured.system,
        captured.tracer.len(),
        captured.mean_per_node.io_total,
        captured.mean_per_node.non_overlapping_io,
    );

    // 2. Replay the same trace against every candidate.
    let gpfs = GpfsConfig::on_lassen();
    let rdma = vast_on_wombat();
    let unify = UnifyFsConfig::on_wombat();
    let candidates: Vec<&dyn StorageSystem> = vec![&source_sys, &gpfs, &rdma, &unify];

    println!(
        "{:<52} {:>10} {:>10} {:>10}",
        "replayed against", "io s/node", "stall s", "wall s"
    );
    for sys in candidates {
        let r = replay(&captured.tracer, sys, &ReplayConfig::default());
        println!(
            "{:<52} {:>10.3} {:>10.4} {:>10.2}",
            r.system, r.mean.io_total, r.mean.non_overlapping_io, r.duration
        );
    }

    println!(
        "\nthe first row is the self-replay control: it should reproduce the\n\
         captured io time. The rest answer: was the storage the problem?"
    );
}
