//! Trace export and re-analysis: run a DLIO simulation, write the
//! DFTracer-style chrome trace to disk, load it back, and re-derive the
//! I/O-time decomposition from the file — the paper's §VI.A offline
//! analysis workflow. Open the JSON in `chrome://tracing` or Perfetto.
//!
//! ```sh
//! cargo run --release --example trace_analysis -- /tmp/resnet50.trace.json
//! ```

use hcs_dftrace::{chrome, decompose};
use hcs_dlio::{resnet50, run_dlio};
use hcs_vast::vast_on_lassen;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/hcs-resnet50.trace.json".to_string());

    // Simulate ResNet-50 on the TCP-mounted VAST, two nodes.
    let vast = vast_on_lassen();
    let cfg = resnet50();
    let result = run_dlio(&vast, &cfg, 2);

    // Export the trace the way DFTracer would.
    let json = chrome::to_json(&result.tracer);
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "wrote {} events ({} bytes) to {path}",
        result.tracer.len(),
        json.len()
    );

    // Re-load and re-analyze from the file alone.
    let loaded = chrome::from_json(&std::fs::read_to_string(&path).expect("read trace"))
        .expect("parse trace");
    println!("\nper-node decomposition recovered from the trace file:");
    for pid in loaded.pids() {
        let d = decompose(&loaded, Some(pid));
        println!(
            "  node {pid}: runtime {:6.2}s  io {:5.2}s (overlap {:5.2}s, stall {:5.2}s)  compute {:6.2}s",
            d.total_runtime, d.io_total, d.overlapping_io, d.non_overlapping_io, d.compute_total
        );
    }

    // The file-based analysis must agree with the in-memory one.
    let live = &result.per_node[0];
    let from_file = decompose(&loaded, Some(0));
    assert!((live.io_total - from_file.io_total).abs() < 1e-6);
    println!("\nfile-based analysis matches the live decomposition ✓");
}
