//! Application-shaped workloads: the real codes the paper's workload
//! classes stand in for (§III.B), run as IOR presets against every
//! shared deployment.
//!
//! ```sh
//! cargo run --release --example science_apps -- 4
//! ```

use hcs_core::StorageSystem;
use hcs_gpfs::GpfsConfig;
use hcs_ior::{all_apps, run_ior};
use hcs_lustre::LustreConfig;
use hcs_vast::{vast_on_lassen, vast_on_ruby};

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    // The LC shared deployments an application team can actually pick
    // between (per machine: Lassen has VAST+GPFS, Ruby has VAST+Lustre).
    let systems: Vec<(Box<dyn StorageSystem>, u32)> = vec![
        (Box::new(vast_on_lassen()), 44),
        (Box::new(GpfsConfig::on_lassen()), 44),
        (Box::new(vast_on_ruby()), 56),
        (Box::new(LustreConfig::on_ruby()), 56),
    ];

    println!("# application-shaped IOR runs at {nodes} nodes (GB/s aggregate)\n");
    print!("{:<16}", "app");
    for (sys, _) in &systems {
        print!(" {:>14}", short(&sys.description()));
    }
    println!();

    for (name, _) in all_apps(nodes, 1) {
        print!("{name:<16}");
        for (sys, ppn) in &systems {
            let (_, mut cfg) = all_apps(nodes, *ppn)
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("preset exists");
            cfg.reps = 3;
            let bw = run_ior(sys.as_ref(), &cfg).mean_bandwidth();
            print!(" {:>11.2} GB", bw / 1e9);
        }
        println!();
    }

    println!(
        "\nnotes: BD-CATS is the N-1 shared-HDF5 workload (pays lock contention\n\
         everywhere); HACC-I/O fsyncs every block (SCM-friendly at low ranks);\n\
         Cosmic Tagger's small random reads favour flash over HDD."
    );
}

fn short(desc: &str) -> String {
    desc.split(" (").next().unwrap_or(desc).to_string()
}
