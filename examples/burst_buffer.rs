//! Burst-buffer shoot-out: where should a job checkpoint on Wombat?
//!
//! The paper's introduction names two highly configurable storage
//! systems — VAST and UnifyFS — but only benchmarks VAST. This example
//! runs the paper's synchronized-checkpoint workload against VAST, the
//! raw node-local NVMe, and a UnifyFS-style user-level burst buffer
//! over those same drives, including a DLIO training run with periodic
//! checkpoints.
//!
//! ```sh
//! cargo run --release --example burst_buffer
//! ```

use hcs_core::StorageSystem;
use hcs_dlio::{cosmoflow, run_dlio};
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_nvme::LocalNvmeConfig;
use hcs_unifyfs::{DataPlacement, UnifyFsConfig};
use hcs_vast::vast_on_wombat;

fn main() {
    let vast = vast_on_wombat();
    let nvme = LocalNvmeConfig::on_wombat();
    let unify = UnifyFsConfig::on_wombat();
    let unify_rr = UnifyFsConfig::on_wombat().with_placement(DataPlacement::RoundRobin);

    let systems: Vec<&dyn StorageSystem> = vec![&vast, &nvme, &unify, &unify_rr];

    println!("# synchronized checkpoint writes (fsync, 1 MiB, 48 ppn)\n");
    println!("{:<56} {:>10} {:>10}", "system", "1 node", "8 nodes");
    for sys in &systems {
        let mut one = IorConfig::paper_scalability(WorkloadClass::Scientific, 1, 48);
        one.fsync = true;
        let mut eight = IorConfig::paper_scalability(WorkloadClass::Scientific, 8, 48);
        eight.fsync = true;
        println!(
            "{:<56} {:>7.2} GB {:>7.2} GB",
            sys.description(),
            run_ior(*sys, &one).mean_bandwidth() / 1e9,
            run_ior(*sys, &eight).mean_bandwidth() / 1e9,
        );
    }

    // A training job that checkpoints 2 GB every 64 batches: how much
    // time goes to checkpoints on each target?
    println!("\n# Cosmoflow (4 nodes) + 2 GB checkpoint every 64 batches\n");
    let cfg = cosmoflow().with_checkpointing(64, 2e9);
    println!(
        "{:<56} {:>12} {:>14}",
        "system", "ckpt s/node", "app samples/s"
    );
    for sys in &systems {
        let r = run_dlio(*sys, &cfg, 4);
        println!(
            "{:<56} {:>12.2} {:>14.1}",
            sys.description(),
            r.checkpoint_io,
            r.app_throughput
        );
    }

    println!(
        "\ntakeaway: the appliance absorbs small-scale fsync storms (SCM), but a \n\
         log-structured buffer over the same local drives wins once every node \n\
         checkpoints at once — and costs no shared-system bandwidth."
    );
}
