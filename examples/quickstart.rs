//! Quickstart: build two storage systems, run the same IOR workload on
//! both, and compare — the suite's 60-second tour.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_nvme::LocalNvmeConfig;
use hcs_vast::vast_on_wombat;

fn main() {
    // Two storage systems on the Wombat testbed: the RDMA-mounted VAST
    // appliance and the node-local NVMe drives.
    let vast = vast_on_wombat();
    let nvme = LocalNvmeConfig::on_wombat();

    println!("systems under test:");
    println!("  - {}", vast.label);
    println!("  - {}\n", nvme.label);

    // The paper's single-node test: 1 node, 32 processes, 1 MiB
    // transfers, fsync after every write.
    println!("single-node fsync write (scientific proxy), 32 procs:");
    let cfg = IorConfig::paper_single_node(WorkloadClass::Scientific, 32);
    let v = run_ior(&vast, &cfg);
    let n = run_ior(&nvme, &cfg);
    println!(
        "  VAST : {:6.2} GB/s  (±{:.2})",
        v.mean_bandwidth() / 1e9,
        v.outcome.summary.std_dev / 1e9
    );
    println!(
        "  NVMe : {:6.2} GB/s  (±{:.2})",
        n.mean_bandwidth() / 1e9,
        n.outcome.summary.std_dev / 1e9
    );
    println!(
        "  -> VAST advantage: {:.1}x   (paper §V.A: \"almost 5x\")\n",
        v.mean_bandwidth() / n.mean_bandwidth()
    );

    // And the scalability view: all 8 Wombat nodes, random reads.
    println!("8-node random read (ML proxy), 48 ppn:");
    let cfg = IorConfig::paper_scalability(WorkloadClass::MachineLearning, 8, 48);
    let v = run_ior(&vast, &cfg);
    let n = run_ior(&nvme, &cfg);
    println!("  VAST : {:6.2} GB/s aggregate", v.mean_bandwidth() / 1e9);
    println!("  NVMe : {:6.2} GB/s aggregate", n.mean_bandwidth() / 1e9);
    println!("  -> node-local drives win at full scale; the appliance wins small scales.");
}
