//! The §VII takeaways as a tool: given a workload class and scale,
//! measure every available deployment and recommend one — "a useful
//! guide for the HPC community to follow when benchmarking emerging
//! storage solutions".
//!
//! ```sh
//! cargo run --release --example deployment_advisor -- ml 8
//! cargo run --release --example deployment_advisor -- scientific 32
//! ```

use hcs_core::StorageSystem;
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_unifyfs::UnifyFsConfig;
use hcs_vast::{vast_on_lassen, vast_on_quartz, vast_on_ruby, vast_on_wombat};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = match args.first().map(String::as_str).unwrap_or("ml") {
        "scientific" | "sci" => WorkloadClass::Scientific,
        "analytics" | "da" => WorkloadClass::DataAnalytics,
        _ => WorkloadClass::MachineLearning,
    };
    let nodes: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    // Every deployment the paper measures, with its machine's ppn and
    // size limits.
    let candidates: Vec<(Box<dyn StorageSystem>, u32, u32)> = vec![
        (Box::new(vast_on_lassen()), 44, 128),
        (Box::new(vast_on_ruby()), 56, 128),
        (Box::new(vast_on_quartz()), 36, 128),
        (Box::new(vast_on_wombat()), 48, 8),
        (Box::new(GpfsConfig::on_lassen()), 44, 128),
        (Box::new(LustreConfig::on_ruby()), 56, 128),
        (Box::new(LustreConfig::on_quartz()), 36, 128),
        (Box::new(LocalNvmeConfig::on_wombat()), 48, 8),
        (Box::new(UnifyFsConfig::on_wombat()), 48, 8),
    ];

    println!("# advisor: {} at {} nodes\n", workload.label(), nodes);
    let mut results: Vec<(String, f64)> = Vec::new();
    for (sys, ppn, max_nodes) in &candidates {
        if nodes > *max_nodes {
            println!("  {:<52} (machine too small)", sys.description());
            continue;
        }
        let cfg = IorConfig::paper_scalability(workload, nodes, *ppn);
        let bw = run_ior(sys.as_ref(), &cfg).mean_bandwidth();
        println!("  {:<52} {:8.2} GB/s", sys.description(), bw / 1e9);
        results.push((sys.description(), bw));
    }

    results.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("bandwidths are finite"));
    let (best, bw) = &results[0];
    println!("\nrecommendation: {best} ({:.2} GB/s aggregate)", bw / 1e9);

    // The paper's standing advice, restated when it applies.
    if workload == WorkloadClass::MachineLearning {
        println!(
            "note (§VII): for low-I/O DL work (e.g. ResNet-50 on small datasets), a\n\
             TCP-mounted VAST is still viable and relieves contention on GPFS."
        );
    }
}
