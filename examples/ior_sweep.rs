//! IOR scalability sweep with a selectable machine and workload.
//!
//! ```sh
//! cargo run --release --example ior_sweep -- lassen analytics
//! cargo run --release --example ior_sweep -- wombat ml
//! ```
//!
//! Machines: `lassen` (VAST vs GPFS), `wombat` (VAST vs NVMe).
//! Workloads: `scientific`, `analytics`, `ml`.

use hcs_core::StorageSystem;
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_nvme::LocalNvmeConfig;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

fn parse_workload(s: &str) -> WorkloadClass {
    match s {
        "scientific" | "sci" => WorkloadClass::Scientific,
        "analytics" | "da" => WorkloadClass::DataAnalytics,
        "ml" | "random" => WorkloadClass::MachineLearning,
        other => {
            eprintln!("unknown workload '{other}', expected scientific|analytics|ml");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let machine = args.first().map(String::as_str).unwrap_or("lassen");
    let workload = parse_workload(args.get(1).map(String::as_str).unwrap_or("analytics"));

    let (systems, nodes, ppn): (Vec<Box<dyn StorageSystem>>, Vec<u32>, u32) = match machine {
        "lassen" => (
            vec![
                Box::new(vast_on_lassen()),
                Box::new(GpfsConfig::on_lassen()),
            ],
            vec![1, 2, 4, 8, 16, 32, 64, 128],
            44,
        ),
        "wombat" => (
            vec![
                Box::new(vast_on_wombat()),
                Box::new(LocalNvmeConfig::on_wombat()),
            ],
            vec![1, 2, 4, 8],
            48,
        ),
        other => {
            eprintln!("unknown machine '{other}', expected lassen|wombat");
            std::process::exit(2);
        }
    };

    println!(
        "# {} — {} ({} ppn, IOR 1 MiB x 3000 segments, 10 reps)",
        machine,
        workload.label(),
        ppn
    );
    print!("{:>7}", "nodes");
    for s in &systems {
        print!(" {:>14}", s.name());
    }
    println!();
    for &n in &nodes {
        print!("{n:>7}");
        for s in &systems {
            let cfg = IorConfig::paper_scalability(workload, n, ppn);
            let rep = run_ior(s.as_ref(), &cfg);
            print!(" {:>11.2} GB/s", rep.mean_bandwidth() / 1e9);
        }
        println!();
    }
}
