//! DLIO training simulation: ResNet-50 or Cosmoflow on VAST vs GPFS,
//! with the paper's I/O-time decomposition and throughput analysis.
//!
//! ```sh
//! cargo run --release --example dlio_training -- resnet50 8
//! cargo run --release --example dlio_training -- cosmoflow 4
//! ```

use hcs_dlio::{cosmoflow, resnet50, run_dlio, DlioResult};
use hcs_gpfs::GpfsConfig;
use hcs_vast::vast_on_lassen;

fn report(r: &DlioResult) {
    let d = &r.mean_per_node;
    println!("  {}:", r.system);
    println!("    wall time           {:8.2} s", r.duration);
    println!("    I/O total           {:8.2} s per node", d.io_total);
    println!("      overlapping       {:8.2} s", d.overlapping_io);
    println!(
        "      non-overlapping   {:8.2} s  <- the pipeline stall",
        d.non_overlapping_io
    );
    println!("    compute             {:8.2} s", d.compute_total);
    println!(
        "    compute-only frac   {:8.1} %",
        d.compute_fraction() * 100.0
    );
    println!("    app throughput      {:8.1} samples/s", r.app_throughput);
    println!(
        "    system throughput   {:8.1} samples/s",
        r.system_throughput
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("resnet50");
    let nodes: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    let cfg = match workload {
        "resnet50" | "resnet" => resnet50(),
        "cosmoflow" | "cosmo" => cosmoflow(),
        other => {
            eprintln!("unknown workload '{other}', expected resnet50|cosmoflow");
            std::process::exit(2);
        }
    };

    println!(
        "# {} ({}), {} nodes, {} epochs, {} I/O threads, batch {}",
        cfg.name, cfg.framework, nodes, cfg.epochs, cfg.read_threads, cfg.batch_size
    );
    println!(
        "# dataset: {} samples x {:.0} KB, {:?} scaling\n",
        cfg.samples,
        cfg.sample_bytes / 1e3,
        cfg.scaling
    );

    let vast = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    let rv = run_dlio(&vast, &cfg, nodes);
    let rg = run_dlio(&gpfs, &cfg, nodes);
    report(&rv);
    println!();
    report(&rg);

    println!(
        "\nGPFS/VAST app-throughput ratio: {:.2}   system-throughput ratio: {:.2}",
        rg.app_throughput / rv.app_throughput,
        rg.system_throughput / rv.system_throughput
    );
}
