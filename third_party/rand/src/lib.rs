//! Vendored minimal `rand` replacement (0.9-flavoured API).
//!
//! The workspace only needs deterministic seeded streams —
//! `StdRng::seed_from_u64`, `.random::<f64>()` and
//! `.random_range(0..n)` — so that is all this crate implements. The
//! generator is xoshiro256** seeded through SplitMix64; the exact
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, which
//! is fine because the workspace's own tests only rely on
//! same-seed ⇒ same-stream determinism.

use std::ops::Range;

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `u64` convenience constructor).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` ⇒ uniform in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution.
pub trait StandardSample: Sized {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self;
}

impl StandardSample for f64 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        g.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        g.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

/// Ranges that can produce one uniform sample.
pub trait SampleRange<T> {
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T;
}

/// Unbiased integer sampling in `[0, span)` by rejection.
fn uniform_below<G: RngCore + ?Sized>(g: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = g.next_u64();
        let r = x % span;
        // Reject draws from the final partial block.
        if x - r <= u64::MAX - (span - 1) {
            return r;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(g, span) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(g)
    }
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// SplitMix64: expands a 64-bit seed into initial state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(r.random_range(0u64..10) < 10);
            let f = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }
}
