//! Vendored minimal `serde_json` replacement.
//!
//! Prints and parses the vendored `serde` crate's [`Value`] tree as
//! JSON. Covers the workspace's surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and [`Error`].
//!
//! Formatting notes:
//!
//! * `f64` uses Rust's shortest-round-trip `Display`, so every finite
//!   float survives print → parse bit-exactly (the `float_roundtrip`
//!   behavior the workspace requests);
//! * non-finite floats serialize as `null`, like real serde_json;
//! * map keys keep insertion order, so output is deterministic.

pub use serde::{Error, Value};

use serde::{de::DeserializeOwned, Serialize};

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a JSON document into any deserializable type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_str(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_str(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else {
        // Rust's `Display` for f64 is shortest-round-trip.
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_num(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_num(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' => self.pos += 1,
                b if b.is_ascii_digit() => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number encoding"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::msg("unterminated string"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in [
            "null",
            "true",
            "false",
            "\"hi\"",
            "[1,2.5,-3]",
            "{\"a\":{\"b\":[]}}",
        ] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json.replace("2.5", "2.5"));
        }
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for x in [
            0.1,
            1.0 / 3.0,
            25e9,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn nonfinite_is_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn escapes() {
        let s = "a\"b\\c\nd\u{1}e×";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
