//! Vendored minimal `proptest` replacement.
//!
//! Implements the property-testing surface this workspace uses:
//! the [`Strategy`] trait (ranges, tuples, `Just`, `any`, `prop_map`,
//! `prop_flat_map`, `prop_oneof!`), `prop::collection::vec`,
//! `prop::option::of`, the `proptest!` macro, and the
//! `prop_assert!`/`prop_assert_eq!` family.
//!
//! Differences from upstream: cases are generated from a fixed seed
//! derived from the test name (fully deterministic, no persistence
//! files) and failing cases are reported without shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------

/// The generator handed to strategies: SplitMix64 seeded from the test
/// name, so every run of a given test explores the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`. `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let r = x % n;
            if x - r <= u64::MAX - (n - 1) {
                return r;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

/// A recipe producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Ranges ---------------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Closed interval: scale by the next-up fraction so `end` is
        // reachable (endpoint probability is measure-zero anyway).
        let (lo, hi) = (*self.start(), *self.end());
        let x = lo + (hi - lo) * rng.unit_f64();
        x.min(hi)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

// Tuples ---------------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// any ------------------------------------------------------------------

/// Types with a canonical "arbitrary" distribution.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] types.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// Collections ----------------------------------------------------------

/// Length specification for [`collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies.
    use super::{Strategy, TestRng};

    /// Strategy producing `None` a quarter of the time and `Some` of the
    /// inner strategy otherwise (matching upstream's default bias toward
    /// `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------

/// Per-proptest configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "[proptest] {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Discards a case when an assumption does not hold. (This vendored
/// runner simply skips to the next case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled vectors respect their size range and element range.
        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        /// Flat-mapped strategies see the upstream value.
        #[test]
        fn flat_map_dependent(
            (n, idx) in (1usize..8).prop_flat_map(|n| (Just(n), 0..n))
        ) {
            prop_assert!(idx < n);
        }

        /// prop_oneof draws from every branch eventually (statistically).
        #[test]
        fn oneof_samples((a, b) in (prop_oneof![Just(1u32), Just(2u32)], 0.0..1.0f64)) {
            prop_assert!(a == 1 || a == 2);
            prop_assert!((0.0..1.0).contains(&b));
        }
    }
}
