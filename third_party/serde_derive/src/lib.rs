//! Vendored minimal `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored `serde` crate's `Value` data model, parsing the
//! item's token stream by hand (no `syn`/`quote` — the build environment
//! cannot fetch them). Supported shapes are exactly the ones this
//! workspace uses:
//!
//! * structs with named fields;
//! * enums with unit variants, newtype variants and struct variants
//!   (serialized externally tagged, serde's default);
//! * field attributes `#[serde(default)]`, `#[serde(rename = "…")]`,
//!   `#[serde(skip_serializing_if = "path")]`;
//! * `Option<T>` fields tolerate a missing key (deserialize to `None`).
//!
//! Generics, tuple structs, unions and the remaining serde attributes
//! are rejected with a compile-time panic naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Field {
    /// Rust field name.
    name: String,
    /// Serialized key (`rename` attribute, else the field name).
    key: String,
    /// `#[serde(default)]`.
    has_default: bool,
    /// `#[serde(skip_serializing_if = "path")]`.
    skip_if: Option<String>,
    /// Whether the declared type's head is `Option`.
    is_option: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Token parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Consumes one `#[…]` attribute if present; returns its bracketed
    /// tokens.
    fn take_attr(&mut self) -> Option<TokenStream> {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
            _ => return None,
        }
        self.pos += 1;
        match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => Some(g.stream()),
            other => panic!("serde_derive: malformed attribute near {other:?}"),
        }
    }

    /// Consumes `pub` / `pub(crate)` style visibility if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_punct(&mut self, c: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == c => {}
            other => panic!("serde_derive: expected `{c}`, found {other:?}"),
        }
    }

    fn consume_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }
}

/// serde field attributes accumulated while scanning a field.
#[derive(Default)]
struct SerdeAttrs {
    has_default: bool,
    rename: Option<String>,
    skip_if: Option<String>,
}

/// Parses the contents of one `#[serde(…)]` attribute into `attrs`.
fn parse_serde_attr(body: TokenStream, attrs: &mut SerdeAttrs) {
    let mut cur = Cursor::new(body);
    // `body` is `serde ( … )`.
    match cur.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        other => panic!("serde_derive: malformed #[serde] attribute near {other:?}"),
    };
    let mut cur = Cursor::new(inner);
    while let Some(tok) = cur.next() {
        let word = match tok {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("serde_derive: unexpected token in #[serde(…)]: {other:?}"),
        };
        match word.as_str() {
            "default" => attrs.has_default = true,
            "rename" | "skip_serializing_if" => {
                cur.expect_punct('=');
                let lit = match cur.next() {
                    Some(TokenTree::Literal(l)) => l.to_string(),
                    other => {
                        panic!("serde_derive: expected string after `{word} =`, found {other:?}")
                    }
                };
                let stripped = lit.trim_matches('"').to_string();
                if word == "rename" {
                    attrs.rename = Some(stripped);
                } else {
                    attrs.skip_if = Some(stripped);
                }
            }
            other => panic!(
                "serde_derive (vendored): unsupported serde attribute `{other}` — \
                 only default / rename / skip_serializing_if are implemented"
            ),
        }
    }
}

/// Collects leading attributes, extracting serde ones.
fn take_field_attrs(cur: &mut Cursor) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while let Some(body) = cur.take_attr() {
        parse_serde_attr(body, &mut attrs);
    }
    attrs
}

/// Parses `name: Type` fields from the body of a struct or struct
/// variant.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(body);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let attrs = take_field_attrs(&mut cur);
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        cur.expect_punct(':');
        // Scan the type: ends at a comma outside angle brackets.
        let mut depth = 0i32;
        let mut first_ty_tok: Option<String> = None;
        while let Some(tok) = cur.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {
                    if first_ty_tok.is_none() {
                        first_ty_tok = Some(tok.to_string());
                    }
                }
            }
            cur.pos += 1;
        }
        cur.consume_punct(',');
        let is_option = first_ty_tok.as_deref() == Some("Option");
        fields.push(Field {
            key: attrs.rename.clone().unwrap_or_else(|| name.clone()),
            name,
            has_default: attrs.has_default,
            skip_if: attrs.skip_if,
            is_option,
        });
    }
    fields
}

/// Parses variants from an enum body.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(body);
    let mut variants = Vec::new();
    while !cur.at_end() {
        let _attrs = take_field_attrs(&mut cur);
        if cur.at_end() {
            break;
        }
        let name = match cur.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                cur.pos += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                cur.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        cur.consume_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

/// Parses the derive input down to the supported item shapes.
fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    while cur.take_attr().is_some() {}
    cur.skip_visibility();
    let keyword = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive (vendored): `{name}` must have a braced body \
             (tuple/unit structs unsupported), found {other:?}"
        ),
    };
    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            body.push_str("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                let push = format!(
                    "m.push((\"{key}\".to_string(), ::serde::Serialize::to_value(&self.{name})));\n",
                    key = f.key,
                    name = f.name
                );
                if let Some(pred) = &f.skip_if {
                    body.push_str(&format!(
                        "if !({pred}(&self.{name})) {{ {push} }}\n",
                        name = f.name
                    ));
                } else {
                    body.push_str(&push);
                }
            }
            body.push_str("::serde::Value::Map(m)\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n{body}}}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(x0) => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::new();
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.push((\"{key}\".to_string(), ::serde::Serialize::to_value({name})));\n",
                                key = f.key,
                                name = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut fm: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {inner}\
                                 ::serde::Value::Map(vec![(\"{vname}\".to_string(), ::serde::Value::Map(fm))])\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// Generates the expression reconstructing one field from map `m` of the
/// surrounding struct or struct variant.
fn field_expr(owner: &str, f: &Field) -> String {
    let missing = if f.has_default {
        "::std::default::Default::default()".to_string()
    } else if f.is_option {
        // serde treats a missing `Option` field as `None`.
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::msg(\
                 \"missing field `{key}` in {owner}\"))",
            key = f.key
        )
    };
    format!(
        "{name}: match ::serde::map_get(m, \"{key}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => {missing},\n\
         }},\n",
        name = f.name,
        key = f.key
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&field_expr(name, f));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let m = v.as_map().ok_or_else(|| ::serde::Error::msg(\
                             \"expected map for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&field_expr(name, f));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let m = inner.as_map().ok_or_else(|| ::serde::Error::msg(\
                                     \"expected map for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (tag, inner) = &m[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\
                                     other => ::std::result::Result::Err(::serde::Error::msg(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error::msg(\
                                 \"invalid enum value for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
