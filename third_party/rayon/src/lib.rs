//! Vendored minimal `rayon` replacement.
//!
//! Implements the one pattern this workspace uses —
//! `items.par_iter().map(f).collect::<Vec<_>>()` — with real
//! parallelism: the input slice is split into contiguous chunks, one
//! per available core, mapped on scoped threads, and reassembled in
//! order.

use std::num::NonZeroUsize;

pub mod prelude {
    //! The glob-import surface: `use rayon::prelude::*;`.
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Conversion of `&self` into a parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The produced item type.
    type Item: Send + 'data;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iteration over references to the elements.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// Parallel pipelines that can be driven to an ordered `Vec`.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Executes the pipeline, preserving input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every element through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        ParMap { inner: self, f }
    }

    /// Collects the results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParIter<'data, T> {
    type Item = &'data T;
    fn drive(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// See [`ParallelIterator::map`].
pub struct ParMap<I, F> {
    inner: I,
    f: F,
}

impl<'data, T, R, F> ParallelIterator for ParMap<ParIter<'data, T>, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        parallel_map_slice(self.inner.slice, &self.f)
    }
}

/// Number of worker threads to use for `len` items.
///
/// Honors `RAYON_NUM_THREADS` (like real rayon's global pool) so tests
/// can pin the worker count and compare runs across pool sizes.
fn thread_count(len: usize) -> usize {
    let cores = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    cores.min(len).max(1)
}

/// Order-preserving parallel map over a slice using scoped threads.
fn parallel_map_slice<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread_count(n);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("rayon (vendored): worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 3).collect();
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
