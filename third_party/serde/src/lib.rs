//! Vendored minimal `serde` replacement.
//!
//! The build environment has no route to crates.io, so this crate
//! provides exactly the serde surface the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on named-field structs and on
//!   enums with unit, newtype and struct variants (externally tagged);
//! * the field attributes `#[serde(default)]`, `#[serde(rename = "…")]`
//!   and `#[serde(skip_serializing_if = "…")]`;
//! * `serde::Serialize`, `serde::Deserialize` and
//!   `serde::de::DeserializeOwned` bounds;
//! * `BTreeMap` with stringifiable keys (rendered as a JSON object in
//!   key order).
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! JSON-shaped [`Value`] tree: `Serialize` renders into a `Value`,
//! `Deserialize` reads back out of one. `serde_json` (also vendored)
//! prints and parses that tree. Maps preserve insertion order so output
//! is deterministic and fields round-trip in declaration order.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped tree: the intermediate data model every `Serialize`
/// renders into and every `Deserialize` reads from.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key-value pairs in insertion order (declaration order for derived
    /// structs), so serialization is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in a map value.
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Looks up `key` in a slice of map entries (used by derived
/// `Deserialize` impls).
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the value data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of the value data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization-side re-exports, mirroring serde's module layout.
    pub use crate::Error;

    /// Marker for deserializable types that own all their data. Every
    /// `Deserialize` impl in this vendored model qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialization-side re-exports, mirroring serde's module layout.
    pub use crate::{Error, Serialize};
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(Error::msg("expected number")),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(Error::msg(concat!(
                        "expected integer ",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::msg("tuple arity mismatch"));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::msg("expected sequence for tuple")),
                }
            }
        }
    )*};
}
tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl<K: std::fmt::Display + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Iteration is in key order, so the rendered map is canonical.
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize
    for std::collections::BTreeMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => {
                let mut out = std::collections::BTreeMap::new();
                for (k, val) in entries {
                    let key = k
                        .parse::<K>()
                        .map_err(|_| Error::msg(format!("unparseable map key: {k:?}")))?;
                    out.insert(key, V::from_value(val)?);
                }
                Ok(out)
            }
            _ => Err(Error::msg("expected map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
