//! Vendored minimal `criterion` replacement.
//!
//! Provides the `criterion_group!`/`criterion_main!` entry points,
//! benchmark groups, `BenchmarkId` and `Bencher::iter` so `cargo bench`
//! targets compile and run offline. Instead of criterion's statistical
//! machinery it times a fixed number of iterations with
//! `std::time::Instant` and prints mean wall-clock time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (reporting happens per-benchmark).
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / (b.iters as u32).max(1)
    } else {
        Duration::ZERO
    };
    println!("bench {label}: {per_iter:?}/iter over {} iters", b.iters);
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: function name plus parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{param}"),
        }
    }
}

/// Re-export matching criterion's API; benchmarks typically use
/// `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
