//! # hcs-mdtest
//!
//! An MDTest-equivalent metadata benchmark. The paper's related work
//! (§II) notes that BurstFS, GekkoFS, IME and Ceph were all evaluated
//! "using IOR and MDTest" — MDTest being IOR's companion for *metadata*
//! rates: every rank creates, stats and unlinks a private tree of small
//! files, and the benchmark reports aggregate operations per second.
//!
//! Here the same storm runs against the suite's storage systems via
//! their [`hcs_core::MetadataProfile`]: each rank is a blocking
//! requester issuing one metadata RPC at a time (rate ≤
//! `1 / op_latency`), all ranks share the server-side operation pool,
//! and the flow engine divides the pool max-min fairly — the same
//! machinery as the bandwidth benchmarks, with "bytes" reinterpreted as
//! operations.
//!
//! The interesting reproduction-adjacent result: the TCP-mounted VAST
//! deployments, whose *bandwidth* ceiling the paper measures, have an
//! even harsher *metadata* ceiling (every RPC pays the gateway TCP
//! round trip), which is exactly why the file-per-sample ResNet-50
//! workload stresses them (§VI.B).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

use hcs_core::StorageSystem;
use hcs_simkit::{FlowNet, FlowSpec, ResourceSpec, SimRng, Summary};

/// The metadata operations MDTest measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetaOp {
    /// File creation (two round trips' worth of server work).
    Create,
    /// `stat()` on an existing file.
    Stat,
    /// File removal.
    Unlink,
}

impl MetaOp {
    /// All phases, in MDTest's order.
    pub fn all() -> [MetaOp; 3] {
        [MetaOp::Create, MetaOp::Stat, MetaOp::Unlink]
    }

    /// Cost multiplier relative to the system's base metadata latency
    /// (creates allocate inodes and journal; stats are the cheapest).
    pub fn cost_factor(self) -> f64 {
        match self {
            MetaOp::Create => 2.0,
            MetaOp::Stat => 1.0,
            MetaOp::Unlink => 1.5,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MetaOp::Create => "create",
            MetaOp::Stat => "stat",
            MetaOp::Unlink => "unlink",
        }
    }
}

// The run configuration lives in the core scenario IR (so a
// `hcs_core::Scenario` can embed a metadata workload); this crate keeps
// its historical path and owns the execution engine.
pub use hcs_core::scenario::mdtest::MdtestConfig;

/// Aggregate rates of one MDTest run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MdtestReport {
    /// Storage system description.
    pub system: String,
    /// The configuration.
    pub config: MdtestConfig,
    /// Create rate over repetitions, ops/s.
    pub create: Summary,
    /// Stat rate over repetitions, ops/s.
    pub stat: Summary,
    /// Unlink rate over repetitions, ops/s.
    pub unlink: Summary,
}

impl MdtestReport {
    /// The summary for one op.
    pub fn rate(&self, op: MetaOp) -> &Summary {
        match op {
            MetaOp::Create => &self.create,
            MetaOp::Stat => &self.stat,
            MetaOp::Unlink => &self.unlink,
        }
    }
}

/// Runs one metadata phase and returns its aggregate rate (ops/s).
fn run_meta_phase(system: &dyn StorageSystem, config: &MdtestConfig, op: MetaOp) -> f64 {
    let profile = system.metadata_profile();
    let mut net = FlowNet::new();
    // The server-side metadata pool, in ops/s; creates consume more
    // server work per op, shrinking the pool proportionally.
    let pool = net.add_resource(ResourceSpec::new(
        "meta:pool",
        profile.ops_pool / op.cost_factor(),
    ));
    // One flow group per node; "bytes" are operations. Each rank is a
    // blocking requester: at most one RPC in flight.
    let per_rank_rate = 1.0 / (profile.op_latency * op.cost_factor()).max(1e-9);
    for node in 0..config.nodes {
        net.add_flow(
            FlowSpec::new(vec![pool], config.files_per_proc as f64)
                .with_multiplicity(config.tasks_per_node)
                .with_rate_cap(per_rank_rate)
                .with_tag(node as u64),
        );
    }
    let duration = net.run_to_completion(|_, _| {});
    config.total_ops() / duration
}

/// Runs MDTest against a storage system: create, stat, unlink, with
/// noisy repetitions, reporting aggregate ops/s.
pub fn run_mdtest(system: &dyn StorageSystem, config: &MdtestConfig) -> MdtestReport {
    config.validate();
    let mut rng = SimRng::new(config.seed).split(system.name());
    let mut rates = |op: MetaOp| -> Summary {
        let base = run_meta_phase(system, config, op);
        let sigma = system.noise_sigma();
        let samples: Vec<f64> = (0..config.reps)
            .map(|_| base / rng.jitter_factor(sigma))
            .collect();
        Summary::of(&samples).expect("reps >= 1")
    };
    MdtestReport {
        system: system.description(),
        config: config.clone(),
        create: rates(MetaOp::Create),
        stat: rates(MetaOp::Stat),
        unlink: rates(MetaOp::Unlink),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_gpfs::GpfsConfig;
    use hcs_lustre::LustreConfig;
    use hcs_nvme::LocalNvmeConfig;
    use hcs_vast::{vast_on_lassen, vast_on_wombat};

    #[test]
    fn op_ordering_create_slowest_stat_fastest() {
        let r = run_mdtest(&LustreConfig::on_ruby(), &MdtestConfig::new(4, 16));
        assert!(r.stat.mean > r.unlink.mean);
        assert!(r.unlink.mean > r.create.mean);
    }

    #[test]
    fn single_rank_is_latency_bound() {
        let sys = vast_on_lassen();
        let cfg = MdtestConfig::new(1, 1);
        let r = run_mdtest(&sys, &cfg);
        let expected = 1.0 / sys.transport.metadata_latency;
        // Stat rate ≈ 1/latency for one blocking rank.
        assert!(
            (r.stat.mean / expected - 1.0).abs() < 0.1,
            "{}",
            r.stat.mean
        );
    }

    #[test]
    fn aggregate_saturates_at_ops_pool() {
        use hcs_core::StorageSystem as _;
        let sys = vast_on_lassen();
        let pool = sys.metadata_profile().ops_pool;
        let big = MdtestConfig::new(128, 44);
        let r = run_mdtest(&sys, &big);
        assert!(r.stat.mean <= pool * 1.1, "{} vs pool {pool}", r.stat.mean);
        assert!(
            r.stat.mean > pool * 0.7,
            "should be pool-bound at 5,632 ranks"
        );
    }

    #[test]
    fn rdma_vast_beats_tcp_vast_on_metadata() {
        // The metadata-path version of the §VII transport takeaway.
        let cfg = MdtestConfig::new(4, 32);
        let tcp = run_mdtest(&vast_on_lassen(), &cfg);
        let rdma = run_mdtest(&vast_on_wombat(), &cfg);
        assert!(
            rdma.stat.mean > 4.0 * tcp.stat.mean,
            "rdma {} vs tcp {}",
            rdma.stat.mean,
            tcp.stat.mean
        );
    }

    #[test]
    fn parallel_filesystems_beat_nfs_gateway_on_metadata() {
        let cfg = MdtestConfig::new(8, 32);
        let vast = run_mdtest(&vast_on_lassen(), &cfg);
        let gpfs = run_mdtest(&GpfsConfig::on_lassen(), &cfg);
        let lustre = run_mdtest(&LustreConfig::on_ruby(), &cfg);
        assert!(gpfs.create.mean > vast.create.mean);
        assert!(lustre.create.mean > vast.create.mean);
    }

    #[test]
    fn local_nvme_metadata_is_fastest_per_node() {
        let cfg = MdtestConfig::new(1, 32);
        let nvme = run_mdtest(&LocalNvmeConfig::on_wombat(), &cfg);
        let vast = run_mdtest(&vast_on_wombat(), &cfg);
        assert!(nvme.stat.mean > vast.stat.mean);
    }

    #[test]
    fn deterministic_and_serializable() {
        let cfg = MdtestConfig::new(2, 8);
        let a = run_mdtest(&GpfsConfig::on_lassen(), &cfg);
        let b = run_mdtest(&GpfsConfig::on_lassen(), &cfg);
        assert_eq!(a, b);
        let back: MdtestReport = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn zero_files_rejected() {
        let mut cfg = MdtestConfig::new(1, 1);
        cfg.files_per_proc = 0;
        run_mdtest(&GpfsConfig::on_lassen(), &cfg);
    }
}
