//! # hcs-unifyfs
//!
//! A UnifyFS-style **user-level burst-buffer file system**. The paper's
//! introduction names UnifyFS as its second example of a highly
//! configurable storage system (§I): a file system layered over
//! node-local storage "which allows users to configure the data
//! management policy, such as the number of dedicated I/O servers and
//! the data placement strategy". The paper does not benchmark it —
//! implementing it lets the suite answer the question the paper's
//! takeaways raise: *how would a node-local-backed configurable FS have
//! fared next to VAST on the same workloads?*
//!
//! The model: every compute node runs `servers_per_node` user-level I/O
//! server threads that log writes into the node-local NVMe; reads
//! consult a distributed shard index and pull data from whichever node
//! holds it. The two configuration knobs the paper highlights are
//! modeled directly:
//!
//! * **data placement** ([`DataPlacement`]) — `LocalFirst` lands writes
//!   on the writer's own drives (checkpoint-optimal: no network at
//!   all); `RoundRobin` stripes across all nodes (read-balanced, every
//!   access crosses the fabric);
//! * **dedicated I/O servers** — more server threads raise a node's
//!   request concurrency until the drives saturate.
//!
//! Cross-node traffic rides the compute fabric NIC; cache-defeating
//! benchmarks (IOR task reordering) force reads remote under
//! `LocalFirst` too, because the reader is deliberately not the writer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

use hcs_core::{DeploymentGraph, MetadataProfile, PhaseSpec, Stage, StageKind, StorageSystem};
use hcs_devices::{DeviceArray, DeviceProfile, IoOp};
use hcs_simkit::units::gbit_per_s;

/// Where writes land.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataPlacement {
    /// Write to the local drives; reads are local only if the reader is
    /// the writer.
    LocalFirst,
    /// Stripe writes across all nodes; every access is (mostly) remote
    /// but load-balanced.
    RoundRobin,
}

/// A UnifyFS deployment over the nodes' local drives.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnifyFsConfig {
    /// Deployment label.
    pub label: String,
    /// Drives per node.
    pub drives_per_node: u32,
    /// Drive profile.
    pub drive: DeviceProfile,
    /// Dedicated user-level I/O server threads per node (§I: "the
    /// number of dedicated I/O servers").
    pub servers_per_node: u32,
    /// Peak request bandwidth one server thread sustains, bytes/s
    /// (user-level RPC + memcpy costs).
    pub per_server_bw: f64,
    /// Data placement strategy (§I: "the data placement strategy").
    pub placement: DataPlacement,
    /// Compute-fabric NIC bandwidth per node, bytes/s.
    pub nic_bw: f64,
    /// Per-operation latency of the user-level client→server path,
    /// seconds.
    pub per_op_latency: f64,
    /// Per-file metadata cost (distributed key-value lookup), seconds.
    pub metadata_latency: f64,
    /// Distributed metadata operation pool, ops/s.
    pub ops_pool: f64,
    /// Run-to-run noise sigma (dedicated resources: quiet).
    pub noise: f64,
}

impl UnifyFsConfig {
    /// UnifyFS over Wombat's three 970 PROs per node, local-first.
    pub fn on_wombat() -> Self {
        UnifyFsConfig {
            label: "UnifyFS@Wombat (node-local NVMe, local-first)".into(),
            drives_per_node: 3,
            drive: DeviceProfile::nvme_970_pro(),
            servers_per_node: 4,
            per_server_bw: 3.0e9,
            placement: DataPlacement::LocalFirst,
            nic_bw: gbit_per_s(100.0),
            per_op_latency: 25e-6,
            metadata_latency: 80e-6,
            ops_pool: 2e6,
            noise: 0.02,
        }
    }

    /// Switches the placement strategy (builder style).
    pub fn with_placement(mut self, placement: DataPlacement) -> Self {
        self.placement = placement;
        let tag = match placement {
            DataPlacement::LocalFirst => "local-first",
            DataPlacement::RoundRobin => "round-robin",
        };
        if let Some(idx) = self.label.rfind(", ") {
            self.label.truncate(idx);
            self.label.push_str(&format!(", {tag})"));
        }
        self
    }

    /// Sets the dedicated-server count (builder style).
    pub fn with_servers(mut self, servers: u32) -> Self {
        self.servers_per_node = servers.max(1);
        self
    }

    /// The per-node drive array.
    pub fn node_array(&self) -> DeviceArray {
        DeviceArray::stripe(self.drive.clone(), self.drives_per_node)
    }

    /// Per-node server-thread pool bandwidth, bytes/s.
    pub fn server_pool_bw(&self) -> f64 {
        self.per_server_bw * self.servers_per_node as f64
    }

    /// Whether a phase's accesses cross the fabric.
    ///
    /// Writes are local under `LocalFirst` and ~all-remote under
    /// `RoundRobin` (each stripe lands on a different node). Reads are
    /// remote whenever the data was not written by the reading node:
    /// under `RoundRobin` always; under `LocalFirst` when the benchmark
    /// defeats locality on purpose (IOR's task reordering, or DLIO
    /// reading from nodes that did not generate the data, §VI.A).
    pub fn is_remote(&self, phase: &PhaseSpec) -> bool {
        match (self.placement, phase.op) {
            (DataPlacement::LocalFirst, IoOp::Write) => false,
            (DataPlacement::LocalFirst, IoOp::Read) => phase.client_cache_defeated,
            (DataPlacement::RoundRobin, _) => true,
        }
    }

    /// How many synchronized appends one device flush covers: each I/O
    /// server batches its clients' log appends and issues one flush per
    /// group (group commit). This is the burst-buffer advantage over
    /// in-place fsync on the raw device.
    pub fn group_commit_batch(&self) -> f64 {
        (4 * self.servers_per_node) as f64
    }

    /// Per-node media bandwidth for a phase, bytes/s.
    ///
    /// Writes are log-structured: the device always sees sequential
    /// appends, and fsync costs one flush per *group* of appends rather
    /// than one per operation.
    pub fn node_media_bw(&self, phase: &PhaseSpec) -> f64 {
        if phase.op == IoOp::Write {
            let base = self.node_array().effective_bandwidth(
                IoOp::Write,
                hcs_devices::AccessPattern::Sequential, // log makes it sequential
                phase.transfer_size,
                false,
            );
            if phase.fsync {
                // One flush per group_commit_batch appends.
                let flush = self.drive.sync_latency / self.group_commit_batch();
                let per_dev = base / self.drives_per_node as f64;
                let eff = phase.transfer_size / (phase.transfer_size / per_dev.max(1.0) + flush);
                eff * self.drives_per_node as f64
            } else {
                base
            }
        } else {
            self.node_array().effective_bandwidth(
                IoOp::Read,
                phase.pattern,
                phase.transfer_size,
                false,
            )
        }
    }
}

impl StorageSystem for UnifyFsConfig {
    fn name(&self) -> &str {
        "UnifyFS"
    }

    fn description(&self) -> String {
        self.label.clone()
    }

    fn plan(&self, _nodes: u32, _ppn: u32, phase: &PhaseSpec) -> DeploymentGraph {
        let remote = self.is_remote(phase);
        let per_op_latency = self.per_op_latency
            + if remote { 15e-6 } else { 0.0 }
            + match phase.op {
                // Log append: device write latency only; the flush
                // amortizes across the commit group.
                IoOp::Write => {
                    self.drive.op_latency(IoOp::Write, false)
                        + if phase.fsync {
                            self.drive.sync_latency / self.group_commit_batch()
                        } else {
                            0.0
                        }
                }
                IoOp::Read => self.drive.op_latency(IoOp::Read, false),
            };
        let mut graph =
            DeploymentGraph::new(self.per_server_bw, per_op_latency, self.metadata_latency);
        if remote {
            // Data crosses the reader's NIC; the symmetric all-to-all
            // pattern loads every NIC equally, so one NIC resource per
            // node captures it.
            graph = graph.stage(Stage::per_node(
                "unifyfs:nic",
                StageKind::ClientMount,
                self.nic_bw,
            ));
        }
        graph
            .stage(Stage::per_node(
                "unifyfs:servers",
                StageKind::ServerPool,
                self.server_pool_bw(),
            ))
            .stage(Stage::per_node(
                "unifyfs:media",
                StageKind::Media,
                self.node_media_bw(phase),
            ))
    }

    fn noise_sigma(&self) -> f64 {
        self.noise
    }

    fn metadata_profile(&self) -> MetadataProfile {
        MetadataProfile {
            op_latency: self.metadata_latency,
            ops_pool: self.ops_pool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::runner::run_phase;
    use hcs_simkit::units::MIB;
    use hcs_simkit::FlowNet;

    fn write_phase() -> PhaseSpec {
        PhaseSpec::seq_write(MIB, 512.0 * MIB)
    }

    fn reorder_read_phase() -> PhaseSpec {
        PhaseSpec::seq_read(MIB, 512.0 * MIB) // client_cache_defeated = true
    }

    #[test]
    fn local_first_writes_never_touch_the_network() {
        let u = UnifyFsConfig::on_wombat();
        let mut net = FlowNet::new();
        let prov = u.provision(&mut net, 2, 8, &write_phase());
        // Two resources per node path: servers + media, no NIC.
        assert!(prov.node_paths.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn reordered_reads_go_remote_under_local_first() {
        let u = UnifyFsConfig::on_wombat();
        assert!(u.is_remote(&reorder_read_phase()));
        let mut net = FlowNet::new();
        let prov = u.provision(&mut net, 2, 8, &reorder_read_phase());
        assert!(prov.node_paths.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn round_robin_makes_everything_remote() {
        let u = UnifyFsConfig::on_wombat().with_placement(DataPlacement::RoundRobin);
        assert!(u.is_remote(&write_phase()));
        assert!(u.is_remote(&reorder_read_phase()));
    }

    #[test]
    fn writes_scale_linearly_like_local_storage() {
        let u = UnifyFsConfig::on_wombat();
        let b1 = run_phase(&u, 1, 48, &write_phase()).agg_bandwidth;
        let b8 = run_phase(&u, 8, 48, &write_phase()).agg_bandwidth;
        assert!((b8 / b1 - 8.0).abs() < 0.01);
    }

    #[test]
    fn remote_reads_are_nic_capped() {
        let u = UnifyFsConfig::on_wombat();
        let out = run_phase(&u, 4, 48, &reorder_read_phase());
        assert!(out.per_node_bandwidth() <= u.nic_bw * 1.001);
        // Placement: symmetric all-to-all over full-duplex NICs does
        // not lose *bandwidth* at the drive-bound plateau, but it does
        // pay per-op latency — visible for a single low-concurrency
        // writer of small transfers.
        let rr = UnifyFsConfig::on_wombat().with_placement(DataPlacement::RoundRobin);
        let small = PhaseSpec::seq_write(0.25 * MIB, 64.0 * MIB);
        let local_w = run_phase(&u, 4, 1, &small).agg_bandwidth;
        let remote_w = run_phase(&rr, 4, 1, &small).agg_bandwidth;
        assert!(
            remote_w < local_w * 0.98,
            "remote hop latency must show: {remote_w} vs {local_w}"
        );
        // At full drive-bound concurrency the two converge.
        let local_big = run_phase(&u, 4, 48, &write_phase()).agg_bandwidth;
        let remote_big = run_phase(&rr, 4, 48, &write_phase()).agg_bandwidth;
        assert!(remote_big <= local_big * 1.001);
    }

    #[test]
    fn more_servers_help_until_drives_saturate() {
        let base = UnifyFsConfig::on_wombat().with_servers(1);
        let mid = UnifyFsConfig::on_wombat().with_servers(2);
        let many = UnifyFsConfig::on_wombat().with_servers(16);
        let phase = write_phase();
        let b1 = run_phase(&base, 1, 48, &phase).agg_bandwidth;
        let b2 = run_phase(&mid, 1, 48, &phase).agg_bandwidth;
        let b16 = run_phase(&many, 1, 48, &phase).agg_bandwidth;
        assert!(b2 > 1.5 * b1, "second server nearly doubles: {b1} vs {b2}");
        // 16 servers: drives are the wall, not threads.
        let media = base.node_media_bw(&phase);
        assert!(b16 <= media * 1.001, "{b16} vs media {media}");
        assert!(b16 < 3.0 * b2);
    }

    #[test]
    fn fsync_log_append_beats_raw_nvme_fsync() {
        // The burst-buffer pitch: log-structured writes absorb fsync
        // better than in-place writes... here both hit the same drive
        // flush, so parity is expected — but UnifyFS must never be
        // slower than the raw device path.
        let u = UnifyFsConfig::on_wombat();
        let synced = write_phase().with_fsync(true);
        let out = run_phase(&u, 1, 32, &synced);
        assert!(out.agg_bandwidth > 0.5e9);
    }

    #[test]
    fn serde_round_trip() {
        let u = UnifyFsConfig::on_wombat().with_placement(DataPlacement::RoundRobin);
        let back: UnifyFsConfig =
            serde_json::from_str(&serde_json::to_string(&u).unwrap()).unwrap();
        assert_eq!(back, u);
    }
}
