//! Physical link descriptions.

use serde::{Deserialize, Serialize};

use hcs_simkit::units::{gbit_per_s, USEC};

/// A physical network link (or a bonded set of identical rails).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Name for diagnostics ("IB EDR", "2x100GbE", ...).
    pub name: String,
    /// Payload bandwidth in bytes/s (all rails combined).
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
    /// Number of physical rails bonded into this link.
    pub rails: u32,
}

impl LinkSpec {
    /// A single- or multi-rail Ethernet link quoted in Gb/s per rail.
    pub fn ethernet(name: impl Into<String>, gbits_per_rail: f64, rails: u32) -> Self {
        LinkSpec {
            name: name.into(),
            bandwidth: gbit_per_s(gbits_per_rail) * rails as f64,
            latency: 30.0 * USEC,
            rails,
        }
    }

    /// InfiniBand EDR (100 Gb/s per rail).
    pub fn ib_edr(rails: u32) -> Self {
        LinkSpec {
            name: format!("IB EDR x{rails}"),
            bandwidth: gbit_per_s(100.0) * rails as f64,
            latency: 1.0 * USEC,
            rails,
        }
    }

    /// Intel Omni-Path (100 Gb/s per rail).
    pub fn omni_path(rails: u32) -> Self {
        LinkSpec {
            name: format!("Omni-Path x{rails}"),
            bandwidth: gbit_per_s(100.0) * rails as f64,
            latency: 1.5 * USEC,
            rails,
        }
    }

    /// Per-rail bandwidth in bytes/s.
    pub fn per_rail_bandwidth(&self) -> f64 {
        if self.rails == 0 {
            0.0
        } else {
            self.bandwidth / self.rails as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_rails_aggregate() {
        let l = LinkSpec::ethernet("2x100GbE", 100.0, 2);
        assert_eq!(l.bandwidth, 25e9);
        assert_eq!(l.per_rail_bandwidth(), 12.5e9);
        assert_eq!(l.rails, 2);
    }

    #[test]
    fn ib_edr_is_100gbit() {
        let l = LinkSpec::ib_edr(1);
        assert_eq!(l.bandwidth, 12.5e9);
        assert!(l.latency < 5e-6);
    }

    #[test]
    fn zero_rails_is_dead_link() {
        let l = LinkSpec {
            name: "dead".into(),
            bandwidth: 0.0,
            latency: 0.0,
            rails: 0,
        };
        assert_eq!(l.per_rail_bandwidth(), 0.0);
    }
}
