//! Gateway funnels between compute fabrics and external storage.
//!
//! The LC clusters do not attach VAST to the compute fabric directly;
//! traffic crosses *gateway nodes* with modest Ethernet uplinks (§IV.B):
//!
//! * Lassen — **one** gateway, 2×100 Gb Ethernet, single TCP link;
//! * Ruby — **eight** gateways, 1×40 Gb Ethernet each;
//! * Quartz — **32** gateways, 2×1 Gb Ethernet each.
//!
//! §V.A pins VAST's flat scaling on Lassen on exactly this funnel: "the
//! bandwidth for VAST is similar to the maximum available bandwidth on
//! the network." A [`GatewayGroup`] aggregates the uplinks and reports
//! both the total funnel capacity and the per-client ceiling (a client's
//! mount is pinned to one gateway).

use serde::{Deserialize, Serialize};

use crate::link::LinkSpec;

/// A group of identical gateway nodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GatewayGroup {
    /// Number of gateway nodes.
    pub count: u32,
    /// Uplink of each gateway node.
    pub uplink: LinkSpec,
}

impl GatewayGroup {
    /// Creates a gateway group.
    pub fn new(count: u32, uplink: LinkSpec) -> Self {
        GatewayGroup { count, uplink }
    }

    /// Lassen's VAST gateway: a single node with 2×100 Gb Ethernet.
    pub fn lassen() -> Self {
        GatewayGroup::new(1, LinkSpec::ethernet("2x100GbE", 100.0, 2))
    }

    /// Ruby's VAST gateways: eight nodes with 1×40 Gb Ethernet each.
    pub fn ruby() -> Self {
        GatewayGroup::new(8, LinkSpec::ethernet("1x40GbE", 40.0, 1))
    }

    /// Quartz's VAST gateways: 32 nodes with 2×1 Gb Ethernet each.
    pub fn quartz() -> Self {
        GatewayGroup::new(32, LinkSpec::ethernet("2x1GbE", 1.0, 2))
    }

    /// Total funnel capacity in bytes/s.
    pub fn aggregate_bw(&self) -> f64 {
        self.uplink.bandwidth * self.count as f64
    }

    /// Capacity available to one client node, whose mount rides a single
    /// gateway.
    pub fn per_client_bw(&self) -> f64 {
        self.uplink.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lassen_funnel_is_25_gbytes() {
        let g = GatewayGroup::lassen();
        assert_eq!(g.aggregate_bw(), 25e9);
        assert_eq!(g.per_client_bw(), 25e9);
    }

    #[test]
    fn ruby_funnel() {
        let g = GatewayGroup::ruby();
        assert_eq!(g.aggregate_bw(), 40e9);
        assert_eq!(g.per_client_bw(), 5e9);
    }

    #[test]
    fn quartz_funnel_is_tiny_per_client() {
        let g = GatewayGroup::quartz();
        assert_eq!(g.per_client_bw(), 0.25e9);
        assert_eq!(g.aggregate_bw(), 8e9);
    }

    #[test]
    fn gateway_ordering_matches_paper() {
        // §V.A: VAST performs better on Lassen than Ruby than Quartz for
        // a single client because of the gateway links.
        let lassen = GatewayGroup::lassen().per_client_bw();
        let ruby = GatewayGroup::ruby().per_client_bw();
        let quartz = GatewayGroup::quartz().per_client_bw();
        assert!(lassen > ruby && ruby > quartz);
    }
}
