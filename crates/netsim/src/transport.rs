//! Client↔storage transport models.
//!
//! A [`TransportSpec`] captures how a compute node's NFS mount moves
//! bytes:
//!
//! * **NFS over TCP, single connection** (VAST on the LC clusters,
//!   §IV.B: "connected with the VAST CNodes over a single gateway node
//!   with a 2×100Gb Ethernet over a single TCP link"). One TCP stream
//!   tops out around a gigabyte per second no matter how wide the
//!   underlying pipe is, and every rank on the node shares it.
//! * **NFS over RDMA with `nconnect` and multipathing** (VAST on
//!   Wombat, §IV.B: "deployed using RDMA with nconnect=16 and
//!   multipathing enabled"). `nconnect` opens parallel connections,
//!   multipath spreads them over rails, and RDMA removes most per-op
//!   software latency — "allow the use of multiple network links between
//!   client and server and parallel data transfers despite the use of
//!   NFS" (§V.B).
//!
//! The transport yields three quantities consumed by storage-system
//! models when they provision a [`hcs_simkit::FlowNet`]:
//! a per-node connection capacity ([`TransportSpec::node_connection_bw`]),
//! a fair-share weight ([`TransportSpec::share_weight`], more streams ⇒
//! larger share at shared bottlenecks), and a per-operation latency
//! ([`TransportSpec::per_op_latency`]).

use serde::{Deserialize, Serialize};

use hcs_simkit::units::{MSEC, USEC};

/// The protocol family of a mount.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportKind {
    /// NFS over a TCP connection pool.
    TcpNfs,
    /// NFS over RDMA (RoCE or InfiniBand verbs).
    RdmaNfs,
    /// Native parallel-filesystem client (GPFS/Lustre kernel clients) —
    /// RDMA-class latency, many server connections.
    NativeClient,
    /// Node-local PCIe attachment — no network at all.
    Local,
}

/// A client transport configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransportSpec {
    /// Protocol family.
    pub kind: TransportKind,
    /// Parallel connections per client node (NFS `nconnect`, 1 for a
    /// plain TCP mount).
    pub nconnect: u32,
    /// Number of network paths (rails) the connections are spread over.
    pub multipath: u32,
    /// Peak bandwidth of one connection, bytes/s.
    pub per_stream_bw: f64,
    /// Fixed client-side latency added to every operation, seconds
    /// (RPC build, context switches, interrupt coalescing...).
    pub per_op_latency: f64,
    /// Extra per-operation latency for file metadata (open/close
    /// round-trips), seconds. Charged once per file, not per transfer.
    pub metadata_latency: f64,
}

impl TransportSpec {
    /// Single-connection NFS/TCP (the LC VAST deployments).
    ///
    /// A well-tuned single TCP stream over a 100 Gb path delivers on the
    /// order of 1.1 GB/s of NFS payload; per-op software latency is in
    /// the hundreds of microseconds.
    pub fn nfs_tcp_single() -> Self {
        TransportSpec {
            kind: TransportKind::TcpNfs,
            nconnect: 1,
            multipath: 1,
            per_stream_bw: 1.1e9,
            per_op_latency: 350.0 * USEC,
            metadata_latency: 2.5 * MSEC,
        }
    }

    /// NFS/RDMA with `nconnect` connections and multipathing (Wombat).
    pub fn nfs_rdma(nconnect: u32, multipath: u32) -> Self {
        TransportSpec {
            kind: TransportKind::RdmaNfs,
            nconnect: nconnect.max(1),
            multipath: multipath.max(1),
            per_stream_bw: 1.4e9,
            per_op_latency: 40.0 * USEC,
            metadata_latency: 300.0 * USEC,
        }
    }

    /// Native GPFS/Lustre kernel client.
    pub fn native_client() -> Self {
        TransportSpec {
            kind: TransportKind::NativeClient,
            nconnect: 8,
            multipath: 1,
            per_stream_bw: 2.5e9,
            per_op_latency: 60.0 * USEC,
            metadata_latency: 500.0 * USEC,
        }
    }

    /// Node-local PCIe attachment. The per-stream rate is a large
    /// finite stand-in for "memory-speed" (kept finite so configs
    /// serialize to JSON).
    pub fn local() -> Self {
        TransportSpec {
            kind: TransportKind::Local,
            nconnect: 1,
            multipath: 1,
            per_stream_bw: 64e9,
            per_op_latency: 8.0 * USEC,
            metadata_latency: 30.0 * USEC,
        }
    }

    /// Peak bandwidth of the node's connection pool, limited by the NIC:
    /// `min(nconnect × per_stream, multipath × nic_bw_per_rail ... )` —
    /// the pool cannot exceed what the rails deliver.
    ///
    /// `nic_bw` is the node's total NIC bandwidth across all rails the
    /// transport may use.
    pub fn node_connection_bw(&self, nic_bw: f64) -> f64 {
        let pool = self.per_stream_bw * self.nconnect as f64;
        pool.min(nic_bw)
    }

    /// Fair-share weight of one client stream at shared resources.
    ///
    /// A client with 16 connections receives 16 shares at a contended
    /// CNode pool, which is exactly why `nconnect` helps on busy
    /// servers.
    pub fn share_weight(&self) -> f64 {
        (self.nconnect as f64).max(1.0)
    }

    /// Fixed latency charged to each operation of `transfer_size` bytes
    /// (the transfer time itself is paid in the flow model).
    pub fn per_op_latency(&self) -> f64 {
        self.per_op_latency
    }

    /// Effective per-stream bandwidth once per-op latency is folded in
    /// for back-to-back operations of `transfer_size` bytes.
    pub fn effective_stream_bw(&self, transfer_size: f64) -> f64 {
        assert!(transfer_size > 0.0, "transfer size must be positive");
        if !self.per_stream_bw.is_finite() {
            return transfer_size / self.per_op_latency.max(1e-12);
        }
        transfer_size / (transfer_size / self.per_stream_bw + self.per_op_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_simkit::units::MIB;

    #[test]
    fn tcp_pool_is_one_stream() {
        let t = TransportSpec::nfs_tcp_single();
        assert_eq!(t.node_connection_bw(12.5e9), 1.1e9);
        assert_eq!(t.share_weight(), 1.0);
    }

    #[test]
    fn rdma_pool_scales_with_nconnect_until_nic() {
        let t = TransportSpec::nfs_rdma(16, 2);
        // 16 × 1.4 GB/s = 22.4 GB/s, clipped by a 12.5 GB/s NIC.
        assert_eq!(t.node_connection_bw(12.5e9), 12.5e9);
        // Small NIC clips harder.
        assert_eq!(t.node_connection_bw(5e9), 5e9);
        assert_eq!(t.share_weight(), 16.0);
    }

    #[test]
    fn rdma_beats_tcp_per_node_by_large_factor() {
        // The §VII takeaway: ~8 GB/s RDMA vs ~1 GB/s TCP per node.
        let tcp = TransportSpec::nfs_tcp_single();
        let rdma = TransportSpec::nfs_rdma(16, 2);
        let nic = 12.5e9;
        let ratio = rdma.node_connection_bw(nic) / tcp.node_connection_bw(nic);
        assert!(ratio > 6.0, "ratio = {ratio}");
    }

    #[test]
    fn per_op_latency_hurts_small_transfers_on_tcp() {
        let tcp = TransportSpec::nfs_tcp_single();
        let big = tcp.effective_stream_bw(64.0 * MIB);
        let small = tcp.effective_stream_bw(0.15 * MIB); // 150 KB JPEG sample
        assert!(big > 0.95 * tcp.per_stream_bw);
        assert!(small < 0.35 * tcp.per_stream_bw, "small = {small}");
    }

    #[test]
    fn rdma_latency_penalty_much_smaller() {
        let tcp = TransportSpec::nfs_tcp_single();
        let rdma = TransportSpec::nfs_rdma(16, 2);
        let ts = 0.15 * MIB;
        let tcp_eff = tcp.effective_stream_bw(ts) / tcp.per_stream_bw;
        let rdma_eff = rdma.effective_stream_bw(ts) / rdma.per_stream_bw;
        assert!(rdma_eff > tcp_eff, "{rdma_eff} vs {tcp_eff}");
    }

    #[test]
    fn local_transport_is_latency_only() {
        let l = TransportSpec::local();
        assert!(l.node_connection_bw(1e9).is_finite()); // clipped by "NIC" = PCIe arg
        assert!(l.effective_stream_bw(MIB) > 0.0);
    }

    #[test]
    fn nconnect_zero_clamped_to_one() {
        let t = TransportSpec::nfs_rdma(0, 0);
        assert_eq!(t.nconnect, 1);
        assert_eq!(t.multipath, 1);
    }
}
