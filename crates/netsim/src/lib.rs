//! # hcs-netsim
//!
//! Network transport and link models for the `hcs` suite.
//!
//! The paper's central systems-administration finding is a *transport*
//! effect (§VII): "An RDMA-based deployment of VAST, with multipathing
//! and nconnect is expected to provide up to 8× higher bandwidths per
//! node as compared to TCP-based deployments ... when using the Network
//! File System." This crate models the structures behind that effect:
//!
//! * [`link::LinkSpec`] — a physical link with bandwidth and latency
//!   (Ethernet rails, InfiniBand EDR, Omni-Path).
//! * [`transport::TransportSpec`] — how a client mounts the storage:
//!   NFS-over-TCP with one connection (the Lassen/Ruby/Quartz VAST
//!   deployments) vs NFS-over-RDMA with `nconnect` parallel connections
//!   and multipath rails (the Wombat deployment).
//! * [`gateway::GatewayGroup`] — the LC clusters reach VAST through
//!   small groups of gateway nodes whose Ethernet uplinks funnel all
//!   traffic (1×(2×100 Gb) on Lassen, 8×40 Gb on Ruby, 32×(2×1 Gb) on
//!   Quartz); this is the bottleneck §V.A diagnoses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gateway;
pub mod link;
pub mod transport;

pub use gateway::GatewayGroup;
pub use link::LinkSpec;
pub use transport::{TransportKind, TransportSpec};
