//! Property tests of the transport math.

use proptest::prelude::*;

use hcs_netsim::{GatewayGroup, LinkSpec, TransportSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A node's connection pool never exceeds its NIC or the sum of its
    /// streams.
    #[test]
    fn connection_pool_bounded(
        nconnect in 1u32..64,
        multipath in 1u32..4,
        nic in 1.0e8..1.0e11f64,
    ) {
        let t = TransportSpec::nfs_rdma(nconnect, multipath);
        let pool = t.node_connection_bw(nic);
        prop_assert!(pool <= nic * (1.0 + 1e-12));
        prop_assert!(pool <= t.per_stream_bw * nconnect as f64 * (1.0 + 1e-12));
        prop_assert!(pool > 0.0);
    }

    /// More connections never reduce the pool.
    #[test]
    fn nconnect_monotone(
        a in 1u32..32,
        b in 1u32..32,
        nic in 1.0e8..1.0e11f64,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = TransportSpec::nfs_rdma(lo, 1).node_connection_bw(nic);
        let p_hi = TransportSpec::nfs_rdma(hi, 1).node_connection_bw(nic);
        prop_assert!(p_hi >= p_lo * (1.0 - 1e-12));
    }

    /// Effective stream bandwidth is bounded by the raw stream rate and
    /// monotone in transfer size.
    #[test]
    fn effective_stream_bounded_and_monotone(
        ts in 1.0e3..1.0e8f64,
        factor in 1.0..64.0f64,
    ) {
        for t in [
            TransportSpec::nfs_tcp_single(),
            TransportSpec::nfs_rdma(16, 2),
            TransportSpec::native_client(),
        ] {
            let small = t.effective_stream_bw(ts);
            let big = t.effective_stream_bw(ts * factor);
            prop_assert!(small <= t.per_stream_bw * (1.0 + 1e-12));
            prop_assert!(big >= small * (1.0 - 1e-12));
        }
    }

    /// Gateway aggregates are exactly count × uplink, and the per-client
    /// share never exceeds the aggregate.
    #[test]
    fn gateway_arithmetic(count in 1u32..64, gbits in 1.0..400.0f64, rails in 1u32..4) {
        let g = GatewayGroup::new(count, LinkSpec::ethernet("e", gbits, rails));
        prop_assert!((g.aggregate_bw() - g.uplink.bandwidth * count as f64).abs() < 1.0);
        prop_assert!(g.per_client_bw() <= g.aggregate_bw() * (1.0 + 1e-12));
    }
}
