//! # hcs-objstore
//!
//! An S3-style **object gateway** in front of a flash backend — the
//! protocol family the paper's POSIX-era registry stops short of, and
//! the one multi-protocol benchmarks (sai3-bench's `file://` /
//! `direct://` / `s3://` matrix) put next to file systems. Three
//! behaviours distinguish an object gateway from every mounted file
//! system in the registry:
//!
//! * **Per-request fixed overhead** — every GET/PUT is an HTTP request
//!   that pays parsing, auth, and an object-index lookup before the
//!   first byte moves. The gateway pool therefore has a *request-plane*
//!   capacity (requests/s, an [`Capacity::OpsRate`] stage) alongside
//!   its data-plane bandwidth; small transfers saturate requests/s long
//!   before they touch a byte limit.
//! * **Separate metadata path** — HEAD/LIST operations never enter the
//!   data path; they hit the bucket-index service, modeled as a shared
//!   ops pool with its own (much slower, listing-scan) latency.
//! * **Multipart / range fan-out** — a transfer larger than the part
//!   size splits into parallel part-requests that ride independent HTTP
//!   connections through the gateway pool: per-stream bandwidth rises
//!   with the fan-out while the request plane is charged once *per
//!   part*, not once per transfer.
//!
//! The deployment compiles to the same [`DeploymentGraph`] as every
//! other backend, so decks, fault specs, chaos campaigns, open-loop
//! latency and provenance sweep it unchanged.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

use hcs_core::{
    Capacity, DeploymentGraph, MetadataProfile, PhaseSpec, Stage, StageKind, StageScope,
    StorageSystem,
};
use hcs_devices::{DeviceArray, DeviceProfile, IoOp};
use hcs_simkit::units::gbit_per_s;

/// An object-gateway deployment: a sharded pool of stateless HTTP
/// gateways over a shared flash backend.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectGatewayConfig {
    /// Deployment label.
    pub label: String,
    /// Parallel gateway nodes (stateless; clients spread over them).
    pub gateways: u32,
    /// Data-plane bandwidth one gateway moves, bytes/s.
    pub per_gateway_bw: f64,
    /// Request-plane throughput one gateway sustains, requests/s
    /// (HTTP parse + auth + index lookup per request).
    pub per_gateway_rps: f64,
    /// Fixed latency of one request round, seconds (TLS, auth, object
    /// index) — paid before the first byte of every GET/PUT.
    pub request_overhead: f64,
    /// Multipart part size, bytes: transfers above this split into
    /// parallel part-requests.
    pub part_size: f64,
    /// Parts in flight per transfer; more parts queue in waves.
    pub max_parallel_parts: u32,
    /// Peak bandwidth of one HTTP connection, bytes/s.
    pub per_conn_bw: f64,
    /// Client NIC bandwidth per compute node, bytes/s.
    pub client_nic_bw: f64,
    /// Flash drives backing the object store.
    pub backend_drives: u32,
    /// Backend drive profile.
    pub drive: DeviceProfile,
    /// Bucket-index service throughput, ops/s. Every object op touches
    /// the index (GET/PUT consult it once, HEAD/LIST live on it), so it
    /// is provisioned above the request plane and binds only metadata
    /// storms, not the data path.
    pub meta_ops_pool: f64,
    /// Metadata-op latency (HEAD/LIST round trip with a listing scan),
    /// seconds.
    pub metadata_latency: f64,
    /// Run-to-run noise sigma (shared multi-tenant front door).
    pub noise: f64,
}

impl ObjectGatewayConfig {
    /// The reference deployment: an 8-gateway S3 front door over a QLC
    /// flash cluster on Wombat's 100 GbE fabric.
    pub fn on_wombat() -> Self {
        ObjectGatewayConfig {
            label: "object gateway@Wombat (8 gw, S3 over QLC flash)".into(),
            gateways: 8,
            per_gateway_bw: gbit_per_s(100.0),
            per_gateway_rps: 30_000.0,
            request_overhead: 2.5e-3,
            part_size: 8.0 * 1024.0 * 1024.0,
            max_parallel_parts: 16,
            per_conn_bw: 0.9e9,
            client_nic_bw: gbit_per_s(100.0),
            backend_drives: 48,
            drive: DeviceProfile::qlc_ssd(),
            meta_ops_pool: 600_000.0,
            metadata_latency: 8e-3,
            noise: 0.04,
        }
    }

    /// Sets the gateway-pool width (builder style).
    pub fn with_gateways(mut self, gateways: u32) -> Self {
        self.gateways = gateways.max(1);
        self
    }

    /// Sets the multipart part size (builder style).
    pub fn with_part_size(mut self, part_size: f64) -> Self {
        self.part_size = part_size.max(1.0);
        self
    }

    /// Requests one transfer fans out into: 1 below the part size,
    /// `ceil(transfer / part_size)` above it.
    pub fn parts(&self, phase: &PhaseSpec) -> f64 {
        (phase.transfer_size / self.part_size).ceil().max(1.0)
    }

    /// Part-requests in flight at once for one transfer.
    pub fn parallelism(&self, phase: &PhaseSpec) -> f64 {
        self.parts(phase).min(self.max_parallel_parts as f64)
    }

    /// Request rounds one transfer serializes through: parts beyond the
    /// in-flight window queue in waves, each paying the request
    /// overhead once.
    pub fn request_waves(&self, phase: &PhaseSpec) -> f64 {
        (self.parts(phase) / self.max_parallel_parts as f64).ceil()
    }

    /// Per-stream bandwidth of one logical transfer: the connection
    /// rate times the multipart fan-out.
    pub fn stream_bw(&self, phase: &PhaseSpec) -> f64 {
        self.per_conn_bw * self.parallelism(phase)
    }

    /// Request-plane capacity of the gateway pool, expressed in the
    /// planner's op accounting.
    ///
    /// The planner converts an [`Capacity::OpsRate`] stage to bytes/s
    /// by dividing by [`PhaseSpec::ops_per_byte`] (one data op per
    /// transfer plus metadata ops). The gateway's *actual* request cost
    /// per byte is higher: multipart fans one transfer into
    /// [`Self::parts`] requests, and every metadata op is itself an
    /// HTTP request. The pool's native requests/s is rescaled by the
    /// ratio of the two accountings so the planner's conversion lands
    /// on exactly `rps / requests_per_byte`. Degrades and outages scale
    /// the stored rate linearly, so fault semantics are unchanged. With
    /// no multipart (transfer ≤ part size) the two accountings agree
    /// and the stored rate is the pool's native requests/s.
    pub fn request_pool_ops(&self, phase: &PhaseSpec) -> f64 {
        let planner_opb = phase.ops_per_byte();
        let gateway_opb = self.parts(phase) / phase.transfer_size + phase.metadata_ops_per_byte;
        let pool = self.per_gateway_rps * self.gateways as f64;
        pool * planner_opb / gateway_opb
    }

    /// The backend flash array.
    pub fn backend_array(&self) -> DeviceArray {
        DeviceArray::stripe(self.drive.clone(), self.backend_drives)
    }

    /// Backend media bandwidth for a phase, bytes/s. PUTs are
    /// log-structured: the gateway coalesces incoming objects into
    /// part-sized sequential segments before they reach flash, so the
    /// media never sees a small random write and small PUTs are priced
    /// by the request plane, not the QLC write path. GETs fetch the
    /// stored object (capped at part granularity) under the phase's own
    /// access pattern. Segments are committed before the gateway acks,
    /// so fsync adds nothing the PUT did not already pay.
    pub fn backend_bw(&self, phase: &PhaseSpec) -> f64 {
        match phase.op {
            IoOp::Write => self.backend_array().effective_bandwidth(
                IoOp::Write,
                hcs_devices::AccessPattern::Sequential,
                self.part_size,
                false,
            ),
            IoOp::Read => self.backend_array().effective_bandwidth(
                IoOp::Read,
                phase.pattern,
                phase.transfer_size.min(self.part_size),
                false,
            ),
        }
    }

    /// Per-op latency: one request overhead per wave of part-requests.
    pub fn op_latency(&self, phase: &PhaseSpec) -> f64 {
        self.request_overhead * self.request_waves(phase)
    }
}

impl StorageSystem for ObjectGatewayConfig {
    fn name(&self) -> &str {
        "ObjectGW"
    }

    fn description(&self) -> String {
        self.label.clone()
    }

    fn plan(&self, _nodes: u32, _ppn: u32, phase: &PhaseSpec) -> DeploymentGraph {
        DeploymentGraph::new(
            self.stream_bw(phase),
            self.op_latency(phase),
            self.metadata_latency,
        )
        // Userspace HTTP client: bytes still cross the node NIC.
        .stage(Stage::per_node(
            "objstore:client",
            StageKind::ClientMount,
            self.client_nic_bw,
        ))
        // Request plane: per-request fixed work, an ops-rate wall that
        // small transfers hit long before any byte limit.
        .stage(Stage {
            name: "objstore:rps".into(),
            kind: StageKind::Gateway,
            scope: StageScope::Sharded {
                count: self.gateways.max(1),
            },
            capacity: Capacity::OpsRate(self.request_pool_ops(phase) / self.gateways.max(1) as f64),
        })
        // Data plane of the same gateway pool.
        .stage(Stage::sharded(
            "objstore:gw",
            StageKind::Gateway,
            self.gateways,
            self.per_gateway_bw,
        ))
        // Bucket-index service: HEAD/LIST never enter the data path.
        .stage(Stage::ops_pool("objstore:meta", self.meta_ops_pool))
        .stage(Stage::shared(
            "objstore:flash",
            StageKind::Media,
            self.backend_bw(phase),
        ))
    }

    fn noise_sigma(&self) -> f64 {
        self.noise
    }

    fn metadata_profile(&self) -> MetadataProfile {
        MetadataProfile {
            op_latency: self.metadata_latency,
            ops_pool: self.meta_ops_pool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::runner::run_phase;
    use hcs_simkit::units::{KIB, MIB};

    #[test]
    fn small_transfers_are_request_plane_bound() {
        // 4 KiB GETs: the pool's 240k req/s is worth ~1 GB/s; the data
        // plane is worth 100 GB/s. The bottleneck must be the rps stage.
        let o = ObjectGatewayConfig::on_wombat();
        let phase = PhaseSpec::seq_read(4.0 * KIB, 16.0 * MIB);
        let out = run_phase(&o, 48, 32, &phase);
        let b = out.bottleneck.as_ref().expect("saturates");
        assert!(b.name.starts_with("objstore:rps"), "bottleneck = {b}");
        // Throughput ≈ rps × transfer size.
        let rps_bw = o.per_gateway_rps * o.gateways as f64 * 4.0 * KIB;
        assert!(
            out.agg_bandwidth <= rps_bw * 1.001,
            "{} vs {rps_bw}",
            out.agg_bandwidth
        );
    }

    #[test]
    fn large_transfers_leave_the_request_plane() {
        let o = ObjectGatewayConfig::on_wombat();
        let phase = PhaseSpec::seq_read(64.0 * MIB, 1024.0 * MIB);
        let out = run_phase(&o, 16, 32, &phase);
        if let Some(b) = &out.bottleneck {
            assert!(!b.name.starts_with("objstore:rps"), "bottleneck = {b}");
        }
    }

    #[test]
    fn multipart_fans_out_per_stream_bandwidth() {
        let o = ObjectGatewayConfig::on_wombat();
        let small = PhaseSpec::seq_read(MIB, 64.0 * MIB);
        let large = PhaseSpec::seq_read(64.0 * MIB, 1024.0 * MIB);
        assert_eq!(o.parts(&small), 1.0);
        assert_eq!(o.parts(&large), 8.0);
        assert_eq!(o.stream_bw(&large), 8.0 * o.per_conn_bw);
        // One wave of parallel parts: latency is one request round.
        assert_eq!(o.op_latency(&large), o.request_overhead);
        // 256 parts over a 16-wide window: 16 request waves.
        let huge = PhaseSpec::seq_read(2048.0 * MIB, 2048.0 * MIB);
        assert_eq!(o.request_waves(&huge), 16.0);
    }

    #[test]
    fn request_accounting_matches_native_rps_without_multipart() {
        let o = ObjectGatewayConfig::on_wombat();
        let phase = PhaseSpec::seq_read(MIB, 64.0 * MIB);
        let native = o.per_gateway_rps * o.gateways as f64;
        assert!((o.request_pool_ops(&phase) - native).abs() < 1e-6 * native);
        // With multipart, the planner's conversion must land on
        // rps × part_size: 8 parts per 64 MiB transfer.
        let large = PhaseSpec::seq_read(64.0 * MIB, 1024.0 * MIB);
        let converted = o.request_pool_ops(&large) / large.ops_per_byte();
        assert!((converted - native * 8.0 * MIB).abs() < 1e-3 * converted);
    }

    #[test]
    fn single_node_throughput_is_sane() {
        let o = ObjectGatewayConfig::on_wombat();
        let out = run_phase(&o, 1, 32, &PhaseSpec::seq_read(8.0 * MIB, 256.0 * MIB));
        let gbs = out.agg_bandwidth / 1e9;
        assert!((1.0..13.0).contains(&gbs), "seq read = {gbs} GB/s");
    }

    #[test]
    fn gateway_pool_caps_aggregate_bandwidth() {
        let o = ObjectGatewayConfig::on_wombat();
        let phase = PhaseSpec::seq_read(8.0 * MIB, 256.0 * MIB);
        let out = run_phase(&o, 64, 32, &phase);
        let pool = o.per_gateway_bw * o.gateways as f64;
        let media = o.backend_bw(&phase);
        assert!(out.agg_bandwidth <= pool.min(media) * 1.001);
    }

    #[test]
    fn metadata_path_is_separate_and_slow() {
        let o = ObjectGatewayConfig::on_wombat();
        let p = o.metadata_profile();
        assert_eq!(p.ops_pool, o.meta_ops_pool);
        assert!(p.op_latency > 1e-3, "LIST-class latency");
    }

    #[test]
    fn serde_round_trip() {
        let o = ObjectGatewayConfig::on_wombat().with_gateways(12);
        let back: ObjectGatewayConfig =
            serde_json::from_str(&serde_json::to_string(&o).unwrap()).unwrap();
        assert_eq!(back, o);
    }
}
