//! # hcs-lustre
//!
//! A component-level model of **Lustre** as deployed at LC (paper
//! §IV.B): "16 Metadata Servers (MDSs) with six Serial Attached SCSI
//! (SAS) SSD Zettabyte File System (ZFS) mirrors, 36 Object Storage
//! Servers (OSSs) with 80 SAS Hard-Disk Drive (HDD) raidz2 groups,
//! leveraging an EDR InfiniBand SAN with 100Gb OmniPath."
//!
//! Lustre appears in the paper's single-node fsync tests on Quartz and
//! Ruby (Fig 3b, 3c), where it "behaves similarly on Quartz and Ruby
//! with almost linear increase in bandwidth" as processes scale — each
//! added process brings its own OST stream, and the 2,880-disk backend
//! is nowhere near saturation at single-node scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

use hcs_core::{DeploymentGraph, PhaseSpec, Stage, StageKind, StorageSystem};
use hcs_devices::{AccessPattern, DeviceArray, DeviceProfile, IoOp, RaidLayout};
use hcs_simkit::units::gbit_per_s;

/// A Lustre deployment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LustreConfig {
    /// Deployment label.
    pub label: String,
    /// Metadata servers.
    pub mds_count: u32,
    /// Object storage servers.
    pub oss_count: u32,
    /// Per-OSS network/processing bandwidth, bytes/s.
    pub oss_bw: f64,
    /// HDDs per OSS.
    pub hdds_per_oss: u32,
    /// HDD profile.
    pub hdd: DeviceProfile,
    /// raidz2 group geometry.
    pub layout: RaidLayout,
    /// Client NIC bandwidth (Omni-Path), bytes/s.
    pub client_nic_bw: f64,
    /// Per-node Lustre client ceiling, bytes/s.
    pub client_bw: f64,
    /// Default stripe count (`lfs setstripe -c`): how many OSTs one
    /// file spreads over. A single rank's stream parallelizes across
    /// its file's stripes, so striping raises per-rank bandwidth until
    /// the client-side limit — the §II configuration-tuning knob
    /// ("studies have tested different storage system configurations of
    /// Lustre").
    pub stripe_count: u32,
    /// Bandwidth one OST contributes to one client stream, bytes/s.
    pub per_ost_stream_bw: f64,
    /// Client-side per-stream ceiling, bytes/s.
    pub per_stream_bw: f64,
    /// Base per-op latency, seconds.
    pub per_op_latency: f64,
    /// Per-file metadata latency (MDS round trips on SSD mirrors),
    /// seconds.
    pub metadata_latency: f64,
    /// Extra per-op cost of a synchronized write: the ZFS transaction
    /// commit to the raidz2 group, seconds.
    pub sync_commit_latency: f64,
    /// MDS+OSS operation-rate ceiling, ops/s (16 MDSes on SSD
    /// mirrors sustain high RPC rates).
    pub ops_pool: f64,
    /// Run-to-run noise sigma.
    pub noise: f64,
}

impl LustreConfig {
    /// The LC Lustre instance as mounted on Ruby.
    pub fn on_ruby() -> Self {
        LustreConfig {
            label: "Lustre@Ruby (16 MDS, 36 OSS)".into(),
            mds_count: 16,
            oss_count: 36,
            oss_bw: gbit_per_s(100.0),
            hdds_per_oss: 80,
            hdd: DeviceProfile::sas_hdd(),
            layout: RaidLayout::Parity {
                group: 10,
                parity: 2,
            },
            client_nic_bw: gbit_per_s(100.0),
            client_bw: 11e9,
            stripe_count: 4,
            per_ost_stream_bw: 0.35e9,
            per_stream_bw: 1.6e9,
            per_op_latency: 80e-6,
            metadata_latency: 400e-6,
            sync_commit_latency: 5e-3,
            ops_pool: 900e3,
            noise: 0.05,
        }
    }

    /// The LC Lustre instance as mounted on Quartz (same backend,
    /// slightly slower per-node client on the older nodes).
    pub fn on_quartz() -> Self {
        LustreConfig {
            label: "Lustre@Quartz (16 MDS, 36 OSS)".into(),
            client_bw: 10e9,
            per_stream_bw: 1.0e9,
            ..Self::on_ruby()
        }
    }

    /// The OST HDD array across all OSSs.
    pub fn ost_array(&self, positioning: bool) -> DeviceArray {
        let profile = if positioning {
            DeviceProfile {
                read_latency: 8e-3,
                write_latency: 8e-3,
                ..self.hdd.clone()
            }
        } else {
            self.hdd.clone()
        };
        DeviceArray {
            profile,
            count: self.oss_count * self.hdds_per_oss,
            layout: self.layout,
        }
    }

    /// Server-side pool bandwidth for a phase.
    pub fn server_pool_bw(&self, phase: &PhaseSpec) -> f64 {
        let net = self.oss_bw * self.oss_count as f64;
        let positioning = phase.pattern == AccessPattern::Random;
        let media = self.ost_array(positioning).effective_bandwidth(
            phase.op,
            phase.pattern,
            phase.transfer_size,
            // fsync latency is charged per-op on the client stream; the
            // array-level stream keeps running via the ZIL.
            false,
        );
        media.min(net)
    }

    /// Effective per-rank stream bandwidth: stripes add OST
    /// parallelism until the client-side ceiling.
    pub fn stream_bw(&self) -> f64 {
        (self.per_ost_stream_bw * self.stripe_count.max(1) as f64).min(self.per_stream_bw)
    }

    /// Sets the stripe count (builder style).
    pub fn with_stripe_count(mut self, stripes: u32) -> Self {
        self.stripe_count = stripes.max(1);
        self
    }

    /// Per-op latency for a phase.
    pub fn op_latency(&self, phase: &PhaseSpec) -> f64 {
        let mut lat = self.per_op_latency;
        if phase.op == IoOp::Write && phase.fsync {
            lat += self.sync_commit_latency;
        }
        if phase.op == IoOp::Read && phase.pattern == AccessPattern::Random {
            lat += self.hdd.read_latency + 8e-3;
        }
        lat
    }
}

impl StorageSystem for LustreConfig {
    fn name(&self) -> &str {
        "Lustre"
    }

    fn description(&self) -> String {
        self.label.clone()
    }

    fn plan(&self, _nodes: u32, _ppn: u32, phase: &PhaseSpec) -> DeploymentGraph {
        DeploymentGraph::new(
            self.stream_bw(),
            self.op_latency(phase),
            self.metadata_latency,
        )
        .stage(Stage::shared(
            "lustre:oss-pool",
            StageKind::ServerPool,
            self.server_pool_bw(phase),
        ))
        .stage(Stage::ops_pool("lustre:ops", self.ops_pool))
        .stage(Stage::per_node(
            "lustre:client",
            StageKind::ClientMount,
            self.client_bw.min(self.client_nic_bw),
        ))
    }

    fn noise_sigma(&self) -> f64 {
        self.noise
    }

    fn metadata_profile(&self) -> hcs_core::MetadataProfile {
        hcs_core::MetadataProfile {
            op_latency: self.metadata_latency,
            ops_pool: self.ops_pool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::runner::run_phase;
    use hcs_simkit::units::MIB;

    #[test]
    fn component_counts_match_paper() {
        let l = LustreConfig::on_ruby();
        assert_eq!(l.mds_count, 16);
        assert_eq!(l.oss_count, 36);
        assert_eq!(l.ost_array(false).count, 2880);
    }

    #[test]
    fn fsync_write_ramps_nearly_linearly_with_procs() {
        // Fig 3b/3c: "almost linear increase in bandwidth".
        let l = LustreConfig::on_ruby();
        let phase = PhaseSpec::seq_write(MIB, 128.0 * MIB).with_fsync(true);
        let b: Vec<f64> = [1u32, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| run_phase(&l, 1, p, &phase).agg_bandwidth)
            .collect();
        for w in b.windows(2) {
            let ratio = w[1] / w[0];
            assert!(
                (1.5..2.5).contains(&ratio),
                "each doubling of procs should near-double bandwidth: {ratio}"
            );
        }
    }

    #[test]
    fn reads_ramp_with_procs_then_approach_client_cap() {
        let l = LustreConfig::on_ruby();
        let phase = PhaseSpec::seq_read(MIB, 128.0 * MIB);
        let p1 = run_phase(&l, 1, 1, &phase).agg_bandwidth;
        let p32 = run_phase(&l, 1, 32, &phase).agg_bandwidth;
        assert!(p32 > 6.0 * p1, "{p1} vs {p32}");
        assert!(p32 <= l.client_bw * 1.01);
    }

    #[test]
    fn ruby_and_quartz_behave_similarly() {
        // Fig 3b-3c: "Lustre behaves similarly on Quartz and Ruby".
        let phase = PhaseSpec::seq_write(MIB, 128.0 * MIB).with_fsync(true);
        let r = run_phase(&LustreConfig::on_ruby(), 1, 16, &phase).agg_bandwidth;
        let q = run_phase(&LustreConfig::on_quartz(), 1, 16, &phase).agg_bandwidth;
        let ratio = r / q;
        assert!((0.7..1.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn lustre_beats_vast_class_tcp_rates_at_scale_out_procs() {
        // Fig 3b/3c show Lustre far above the gateway-throttled VAST.
        let l = LustreConfig::on_ruby();
        let phase = PhaseSpec::seq_write(MIB, 128.0 * MIB).with_fsync(true);
        let p32 = run_phase(&l, 1, 32, &phase).agg_bandwidth;
        assert!(p32 > 1.0e9, "32-proc Lustre fsync write = {p32}");
    }

    #[test]
    fn striping_raises_per_rank_bandwidth_until_client_cap() {
        let phase = PhaseSpec::seq_read(MIB, 256.0 * MIB);
        let one =
            run_phase(&LustreConfig::on_ruby().with_stripe_count(1), 1, 1, &phase).agg_bandwidth;
        let four =
            run_phase(&LustreConfig::on_ruby().with_stripe_count(4), 1, 1, &phase).agg_bandwidth;
        let wide =
            run_phase(&LustreConfig::on_ruby().with_stripe_count(64), 1, 1, &phase).agg_bandwidth;
        assert!(
            four > 2.5 * one,
            "stripes parallelize one stream: {one} vs {four}"
        );
        assert!(
            wide <= LustreConfig::on_ruby().per_stream_bw * 1.01,
            "client ceiling: {wide}"
        );
    }

    #[test]
    fn serde_round_trip() {
        let l = LustreConfig::on_quartz();
        let back: LustreConfig = serde_json::from_str(&serde_json::to_string(&l).unwrap()).unwrap();
        assert_eq!(back, l);
    }
}
