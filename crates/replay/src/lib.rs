//! # hcs-replay
//!
//! Trace-driven **what-if replay**: take a DFTracer-style trace of a DL
//! training run (captured on one storage system, real or simulated),
//! keep its *compute* timeline verbatim, and re-drive its *reads*
//! through a different storage system model. The output answers the
//! question I/O teams actually ask of traces: *"we profiled this
//! workload on VAST — what would its I/O time and stalls look like on
//! GPFS?"*
//!
//! The replay reconstructs, per process:
//!
//! * the ordered list of read requests (byte sizes from the trace's
//!   event args),
//! * the ordered list of compute steps (durations from the trace),
//! * the worker-thread count (distinct reader `tid`s observed),
//!
//! and re-executes the same bounded-prefetch pipeline against the
//! target [`StorageSystem`], producing a fresh trace and overlap
//! decomposition. Replaying a trace against the system that produced it
//! reproduces the original timings — the suite's end-to-end
//! self-consistency check (see `replay_is_self_consistent`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use hcs_core::{PhaseSpec, StorageSystem};
use hcs_dftrace::{decompose, EventCategory, IoDecomposition, Tracer};
use hcs_simkit::{FlowId, FlowNet, FlowSpec};

/// What was extracted from the source trace for one process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessProfile {
    /// Process id in the source trace.
    pub pid: u32,
    /// Read request sizes, in completion order, bytes.
    pub reads: Vec<f64>,
    /// Compute step durations, in completion order, seconds.
    pub computes: Vec<f64>,
    /// Reader threads observed.
    pub threads: u32,
}

// The replay parameters live in the core scenario IR (so a
// `hcs_core::Scenario` can embed a replay workload); this crate keeps
// its historical path and owns the execution engine.
pub use hcs_core::scenario::replay::ReplayConfig;

/// The replay outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Target system description.
    pub system: String,
    /// Wall time of the replayed job, seconds.
    pub duration: f64,
    /// Per-process decompositions.
    pub per_process: Vec<IoDecomposition>,
    /// Mean per-process decomposition.
    pub mean: IoDecomposition,
    /// The replayed trace (same shape as the source, new timings).
    pub tracer: Tracer,
}

/// Extracts per-process profiles from a trace.
///
/// Only [`EventCategory::Read`] events with byte counts participate;
/// traces without byte counts cannot be replayed (the sizes are the
/// workload).
pub fn extract_profiles(tracer: &Tracer) -> Vec<ProcessProfile> {
    tracer
        .pids()
        .into_iter()
        .filter_map(|pid| {
            let mut reads: Vec<(f64, f64)> = tracer
                .by_pid(pid)
                .filter(|e| e.cat == EventCategory::Read)
                .filter_map(|e| e.bytes.map(|b| (e.end(), b)))
                .collect();
            reads.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            let mut computes: Vec<(f64, f64)> = tracer
                .by_pid(pid)
                .filter(|e| e.cat == EventCategory::Compute)
                .map(|e| (e.end(), e.dur))
                .collect();
            computes.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            let threads = tracer
                .by_pid(pid)
                .filter(|e| e.cat == EventCategory::Read)
                .map(|e| e.tid)
                .collect::<std::collections::BTreeSet<_>>()
                .len() as u32;
            if reads.is_empty() {
                None
            } else {
                Some(ProcessProfile {
                    pid,
                    reads: reads.into_iter().map(|(_, b)| b).collect(),
                    computes: computes.into_iter().map(|(_, d)| d).collect(),
                    threads: threads.max(1),
                })
            }
        })
        .collect()
}

/// Median of a non-empty slice.
fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

struct ProcState {
    next_read: usize,
    next_compute: usize,
    queued: u32,
    in_flight: u32,
    idle_threads: u32,
    computing: Option<(f64, f64)>, // (end, duration)
    depth: u32,
}

/// Replays a trace against a target storage system.
///
/// # Panics
/// Panics if the trace contains no replayable reads.
pub fn replay(tracer: &Tracer, system: &dyn StorageSystem, config: &ReplayConfig) -> ReplayResult {
    let profiles = extract_profiles(tracer);
    assert!(
        !profiles.is_empty(),
        "trace has no read events with byte counts; nothing to replay"
    );
    let nodes = profiles.len() as u32;

    let all_reads: Vec<f64> = profiles
        .iter()
        .flat_map(|p| p.reads.iter().copied())
        .collect();
    let ts = config.transfer_size.unwrap_or_else(|| median(&all_reads));
    let max_read = all_reads.iter().copied().fold(0.0_f64, f64::max);
    let bytes_per_rank: f64 = profiles
        .iter()
        .map(|p| p.reads.iter().sum::<f64>())
        .fold(0.0_f64, f64::max)
        .max(max_read)
        .max(ts);
    let phase = PhaseSpec::random_read(ts.min(bytes_per_rank), bytes_per_rank)
        .with_client_cache_defeated(false);

    let file_per_read = config.file_per_read.unwrap_or(ts < 1024.0 * 1024.0);
    let mut net = FlowNet::new();
    let prov = system.provision(&mut net, nodes, 1, &phase);
    let stream_cap = prov.effective_stream_bw(ts);
    let meta = if file_per_read {
        prov.metadata_latency
    } else {
        0.0
    };

    let mut states: Vec<ProcState> = profiles
        .iter()
        .map(|p| ProcState {
            next_read: 0,
            next_compute: 0,
            queued: 0,
            in_flight: 0,
            idle_threads: p.threads,
            computing: None,
            depth: config.prefetch_depth.unwrap_or(2 * p.threads).max(1),
        })
        .collect();

    let mut out = Tracer::new();
    let mut flows: BTreeMap<FlowId, (usize, u32, f64)> = BTreeMap::new();
    let mut tid_counter: Vec<u32> = vec![0; profiles.len()];

    let start_reads = |i: usize,
                       states: &mut [ProcState],
                       net: &mut FlowNet,
                       flows: &mut BTreeMap<FlowId, (usize, u32, f64)>,
                       tid_counter: &mut [u32],
                       now: f64,
                       profiles: &[ProcessProfile],
                       prov_paths: &[Vec<hcs_simkit::ResourceId>]| {
        let s = &mut states[i];
        let p = &profiles[i];
        while s.idle_threads > 0
            && s.next_read < p.reads.len()
            && (s.queued + s.in_flight) < s.depth
        {
            let bytes = p.reads[s.next_read].max(1.0);
            s.next_read += 1;
            let tid = tid_counter[i] % p.threads;
            tid_counter[i] += 1;
            let mut spec = FlowSpec::new(prov_paths[i].clone(), bytes);
            // Fold the per-file open cost into this request's rate so a
            // blocking thread's sample cadence matches the target
            // system's metadata path.
            let cap = if stream_cap.is_finite() && stream_cap > 0.0 {
                Some(bytes / (bytes / stream_cap + meta))
            } else if meta > 0.0 {
                Some(bytes / meta)
            } else {
                None
            };
            if let Some(cap) = cap {
                spec = spec.with_rate_cap(cap);
            }
            let id = net.add_flow(spec);
            flows.insert(id, (i, tid, now));
            s.idle_threads -= 1;
            s.in_flight += 1;
        }
    };

    let try_compute =
        |i: usize, states: &mut [ProcState], now: f64, profiles: &[ProcessProfile]| {
            let s = &mut states[i];
            let p = &profiles[i];
            if s.computing.is_none() && s.queued >= 1 && s.next_compute < p.computes.len() {
                s.queued -= 1;
                let dur = p.computes[s.next_compute];
                s.next_compute += 1;
                s.computing = Some((now + dur, dur));
            }
        };

    for i in 0..profiles.len() {
        start_reads(
            i,
            &mut states,
            &mut net,
            &mut flows,
            &mut tid_counter,
            0.0,
            &profiles,
            &prov.node_paths,
        );
    }

    let total_events: usize = profiles
        .iter()
        .map(|p| p.reads.len() + p.computes.len())
        .sum();
    let mut guard = 0usize;
    loop {
        guard += 1;
        assert!(
            guard <= total_events * 4 + 100,
            "replay exceeded event budget"
        );
        let t_flow = net.next_completion_time().unwrap_or(f64::INFINITY);
        let t_compute = states
            .iter()
            .filter_map(|s| s.computing.map(|(e, _)| e))
            .fold(f64::INFINITY, f64::min);
        if !t_flow.is_finite() && !t_compute.is_finite() {
            break;
        }
        if t_flow <= t_compute {
            net.advance_to(t_flow);
            for c in net.take_completed() {
                let (i, tid, start) = flows.remove(&c.id).expect("unknown flow");
                let bytes = profiles[i].reads[..states[i].next_read]
                    .last()
                    .copied()
                    .unwrap_or(ts);
                out.complete_with_bytes(
                    "read",
                    EventCategory::Read,
                    profiles[i].pid,
                    tid,
                    start,
                    t_flow,
                    bytes,
                );
                states[i].in_flight -= 1;
                states[i].idle_threads += 1;
                states[i].queued += 1;
                try_compute(i, &mut states, t_flow, &profiles);
                start_reads(
                    i,
                    &mut states,
                    &mut net,
                    &mut flows,
                    &mut tid_counter,
                    t_flow,
                    &profiles,
                    &prov.node_paths,
                );
            }
        } else {
            net.advance_to(t_compute);
            for i in 0..profiles.len() {
                if let Some((end, dur)) = states[i].computing {
                    if (end - t_compute).abs() < 1e-12 {
                        states[i].computing = None;
                        out.complete(
                            "compute",
                            EventCategory::Compute,
                            profiles[i].pid,
                            1000,
                            t_compute - dur,
                            t_compute,
                        );
                        try_compute(i, &mut states, t_compute, &profiles);
                        start_reads(
                            i,
                            &mut states,
                            &mut net,
                            &mut flows,
                            &mut tid_counter,
                            t_compute,
                            &profiles,
                            &prov.node_paths,
                        );
                    }
                }
            }
        }
    }

    let per_process: Vec<IoDecomposition> = profiles
        .iter()
        .map(|p| decompose(&out, Some(p.pid)))
        .collect();
    let mut mean = IoDecomposition::default();
    for d in &per_process {
        mean.accumulate(d);
    }
    let mean = mean.scaled(1.0 / per_process.len() as f64);
    let duration = out.span().map(|(a, b)| b - a).unwrap_or(0.0);

    ReplayResult {
        system: system.description(),
        duration,
        per_process,
        mean,
        tracer: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_dlio::{resnet50, run_dlio};
    use hcs_gpfs::GpfsConfig;
    use hcs_vast::vast_on_lassen;

    fn source_trace() -> (hcs_dlio::DlioResult, hcs_vast::VastConfig) {
        let vast = vast_on_lassen();
        let r = run_dlio(&vast, &resnet50().smoke(), 2);
        (r, vast)
    }

    #[test]
    fn profiles_extracted_faithfully() {
        let (r, _) = source_trace();
        let profiles = extract_profiles(&r.tracer);
        assert_eq!(profiles.len(), 2);
        for p in &profiles {
            assert_eq!(p.reads.len(), 64); // smoke dataset per node
            assert_eq!(p.computes.len(), 64);
            assert!(p.threads >= 1 && p.threads <= 8);
            assert!(p.reads.iter().all(|&b| (b - 150e3).abs() < 1.0));
        }
    }

    #[test]
    fn replay_is_self_consistent() {
        // Replaying a VAST trace against VAST reproduces the original
        // I/O totals within tolerance (thread multiplexing differs
        // slightly, bandwidth math must agree).
        let (r, vast) = source_trace();
        let replayed = replay(&r.tracer, &vast, &ReplayConfig::default());
        let orig = r.mean_per_node.io_total;
        let got = replayed.mean.io_total;
        let ratio = got / orig;
        assert!(
            (0.7..1.4).contains(&ratio),
            "self-replay io_total ratio = {ratio} ({got} vs {orig})"
        );
    }

    #[test]
    fn what_if_faster_system_cuts_io_time() {
        let (r, _) = source_trace();
        let gpfs = GpfsConfig::on_lassen();
        let replayed = replay(&r.tracer, &gpfs, &ReplayConfig::default());
        assert!(
            replayed.mean.io_total < 0.6 * r.mean_per_node.io_total,
            "GPFS replay should shrink I/O: {} vs {}",
            replayed.mean.io_total,
            r.mean_per_node.io_total
        );
        // Compute time is carried over from the trace, unchanged.
        let ratio = replayed.mean.compute_total / r.mean_per_node.compute_total;
        assert!((0.99..1.01).contains(&ratio), "compute preserved: {ratio}");
    }

    #[test]
    fn replay_round_trips_through_chrome_json() {
        let (r, vast) = source_trace();
        let json = hcs_dftrace::chrome::to_json(&r.tracer);
        let loaded = hcs_dftrace::chrome::from_json(&json).unwrap();
        let a = replay(&loaded, &vast, &ReplayConfig::default());
        let b = replay(&r.tracer, &vast, &ReplayConfig::default());
        assert_eq!(a.duration, b.duration);
    }

    #[test]
    #[should_panic(expected = "nothing to replay")]
    fn traces_without_bytes_are_rejected() {
        let mut t = Tracer::new();
        t.complete("r", EventCategory::Read, 0, 0, 0.0, 1.0); // no bytes
        let gpfs = GpfsConfig::on_lassen();
        replay(&t, &gpfs, &ReplayConfig::default());
    }
}
