//! # hcs-daos
//!
//! A **DAOS** model — the distributed asynchronous object storage stack
//! the related work ("DAOS as HPC Storage: Exploring Interfaces")
//! measures across its interface levels. Three behaviours distinguish
//! it from every kernel-mounted file system in the registry:
//!
//! * **Client-side library stack** — there is no kernel mount: the
//!   application links `libdaos` and talks to the engines over
//!   userspace fabric endpoints. The plan has *no
//!   [`StageKind::ClientMount`] stage* at all; the only client-side
//!   resource is the node's fabric NIC, and per-op latency is
//!   RPC-speed, not syscall-speed.
//! * **Sharded SCM metadata pool + NVMe bulk pool** — metadata and
//!   small I/O land in storage-class memory spread across the engine
//!   targets (a *sharded* ops-rate pool, not the shared pool every
//!   other backend plans), while bulk data streams to NVMe. SCM's
//!   power-fail-safe persistence makes fsync effectively free.
//! * **Interface-level delta** — the POSIX-emulation layer (`dfs` plus
//!   interception) pays namespace bookkeeping on the metadata pool that
//!   the native object API skips. The delta is expressed as a
//!   [`GraphEdit`] ([`native_api_edit`]) so the PR-3 ablation machinery
//!   sweeps POSIX-vs-native as a deck axis on the *same* deployment.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

use hcs_core::{
    Capacity, DeploymentGraph, GraphEdit, MetadataProfile, PhaseSpec, Stage, StageKind, StageScope,
    StorageSystem,
};
use hcs_devices::{DeviceArray, DeviceProfile, IoOp};
use hcs_simkit::units::gbit_per_s;

/// Which API the application uses against the same deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DaosInterface {
    /// POSIX emulation: `dfs` namespace plus syscall interception.
    /// Every operation pays path resolution against the metadata pool.
    PosixEmulation,
    /// Native object API: keys address objects directly, skipping the
    /// namespace bookkeeping.
    NativeObject,
}

/// Metadata-pool throughput multiplier the native object API enjoys
/// over POSIX emulation: dfs path resolution costs roughly two extra
/// metadata-pool operations per application operation.
pub const NATIVE_MD_SPEEDUP: f64 = 3.0;

/// The POSIX-vs-native interface delta as a graph edit: applied to the
/// POSIX-emulation plan, it reproduces the native API's metadata-pool
/// throughput (the [`NATIVE_MD_SPEEDUP`] relief on the sharded SCM
/// pool), so decks sweep the interface ablation without a second
/// registry entry.
pub fn native_api_edit() -> GraphEdit {
    GraphEdit::ScalePool {
        kind: StageKind::OpsPool,
        factor: NATIVE_MD_SPEEDUP,
    }
}

/// A DAOS deployment: engines with SCM targets and NVMe bulk storage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DaosConfig {
    /// Deployment label.
    pub label: String,
    /// API level the clients use.
    pub interface: DaosInterface,
    /// Engine (server) count.
    pub engines: u32,
    /// Fabric bandwidth one engine serves, bytes/s.
    pub per_engine_bw: f64,
    /// SCM metadata-pool shards (engine targets) across the cluster.
    pub scm_shards: u32,
    /// Metadata throughput of one SCM shard under POSIX emulation,
    /// ops/s (the native API sees [`NATIVE_MD_SPEEDUP`]× this).
    pub per_shard_md_ops: f64,
    /// SCM device profile (commit path for writes and small I/O).
    pub scm: DeviceProfile,
    /// Transfers at or below this size are served by the SCM targets;
    /// larger transfers stream to the NVMe bulk pool, bytes.
    pub scm_io_threshold: f64,
    /// NVMe drives per engine (bulk pool).
    pub drives_per_engine: u32,
    /// Bulk NVMe profile.
    pub drive: DeviceProfile,
    /// Client fabric NIC bandwidth per compute node, bytes/s.
    pub nic_bw: f64,
    /// Peak bandwidth of one client stream, bytes/s.
    pub per_stream_bw: f64,
    /// Userspace RPC latency of the client library, seconds (the
    /// POSIX interception layer adds on top).
    pub rpc_latency: f64,
    /// Run-to-run noise sigma (dedicated engines: quiet).
    pub noise: f64,
}

impl DaosConfig {
    /// The reference deployment: 16 engines on Wombat's 100 GbE fabric,
    /// POSIX emulation by default (the registry's sweepable baseline —
    /// [`native_api_edit`] is the other arm of the ablation).
    pub fn on_wombat() -> Self {
        DaosConfig {
            label: "DAOS@Wombat (16 engines, SCM md + NVMe bulk, POSIX dfs)".into(),
            interface: DaosInterface::PosixEmulation,
            engines: 16,
            per_engine_bw: gbit_per_s(100.0),
            scm_shards: 32,
            per_shard_md_ops: 50_000.0,
            scm: DeviceProfile::scm_ssd(),
            scm_io_threshold: 256.0 * 1024.0,
            drives_per_engine: 4,
            drive: DeviceProfile::nvme_970_pro(),
            nic_bw: gbit_per_s(100.0),
            per_stream_bw: 2.2e9,
            rpc_latency: 8e-6,
            noise: 0.03,
        }
    }

    /// Switches the API level (builder style).
    pub fn with_interface(mut self, interface: DaosInterface) -> Self {
        self.interface = interface;
        let tag = match interface {
            DaosInterface::PosixEmulation => "POSIX dfs",
            DaosInterface::NativeObject => "native API",
        };
        if let Some(idx) = self.label.rfind(", ") {
            self.label.truncate(idx);
            self.label.push_str(&format!(", {tag})"));
        }
        self
    }

    /// Metadata throughput of one SCM shard at this interface level.
    pub fn shard_md_ops(&self) -> f64 {
        match self.interface {
            DaosInterface::PosixEmulation => self.per_shard_md_ops,
            DaosInterface::NativeObject => self.per_shard_md_ops * NATIVE_MD_SPEEDUP,
        }
    }

    /// Extra per-op latency of the POSIX interception layer, seconds.
    pub fn interface_latency(&self) -> f64 {
        match self.interface {
            DaosInterface::PosixEmulation => 22e-6,
            DaosInterface::NativeObject => 0.0,
        }
    }

    /// The cluster-wide bulk NVMe array.
    pub fn bulk_array(&self) -> DeviceArray {
        DeviceArray::stripe(self.drive.clone(), self.engines * self.drives_per_engine)
    }

    /// The cluster-wide SCM target array (small-I/O path).
    pub fn scm_array(&self) -> DeviceArray {
        DeviceArray::stripe(self.scm.clone(), self.scm_shards)
    }

    /// Media bandwidth for a phase, bytes/s. Transfers at or below the
    /// SCM threshold are absorbed by the targets' storage-class memory;
    /// bulk transfers stream to NVMe. Writes commit through SCM and
    /// destage to NVMe as full stripes, so the media never sees fsync
    /// or small random writes.
    pub fn media_bw(&self, phase: &PhaseSpec) -> f64 {
        if phase.transfer_size <= self.scm_io_threshold {
            return self.scm_array().effective_bandwidth(
                phase.op,
                phase.pattern,
                phase.transfer_size,
                false,
            );
        }
        match phase.op {
            IoOp::Write => self.bulk_array().effective_bandwidth(
                IoOp::Write,
                hcs_devices::AccessPattern::Sequential,
                phase.transfer_size,
                false,
            ),
            IoOp::Read => self.bulk_array().effective_bandwidth(
                IoOp::Read,
                phase.pattern,
                phase.transfer_size,
                false,
            ),
        }
    }

    /// Per-op latency: userspace RPC, the interface tax, and the
    /// device on the op's path (SCM commit for writes — persistent on
    /// arrival, so fsync adds nothing; NVMe for bulk reads).
    pub fn op_latency(&self, phase: &PhaseSpec) -> f64 {
        self.rpc_latency
            + self.interface_latency()
            + match phase.op {
                IoOp::Write => self.scm.op_latency(IoOp::Write, false),
                IoOp::Read => self.drive.op_latency(IoOp::Read, false),
            }
    }

    /// Per-file metadata latency at this interface level.
    pub fn metadata_latency(&self) -> f64 {
        match self.interface {
            DaosInterface::PosixEmulation => 60e-6,
            DaosInterface::NativeObject => 15e-6,
        }
    }
}

impl StorageSystem for DaosConfig {
    fn name(&self) -> &str {
        "DAOS"
    }

    fn description(&self) -> String {
        self.label.clone()
    }

    fn plan(&self, _nodes: u32, _ppn: u32, phase: &PhaseSpec) -> DeploymentGraph {
        DeploymentGraph::new(
            self.per_stream_bw,
            self.op_latency(phase),
            self.metadata_latency(),
        )
        // Client-side library stack: no kernel mount stage. The only
        // client resource is the fabric NIC.
        .stage(Stage::per_node("daos:nic", StageKind::Fabric, self.nic_bw))
        // Sharded SCM metadata pool: one ops-rate shard per target.
        .stage(Stage {
            name: "daos:scm-md".into(),
            kind: StageKind::OpsPool,
            scope: StageScope::Sharded {
                count: self.scm_shards.max(1),
            },
            capacity: Capacity::OpsRate(self.shard_md_ops()),
        })
        .stage(Stage::sharded(
            "daos:engine",
            StageKind::ServerPool,
            self.engines,
            self.per_engine_bw,
        ))
        .stage(Stage::shared(
            "daos:media",
            StageKind::Media,
            self.media_bw(phase),
        ))
    }

    fn noise_sigma(&self) -> f64 {
        self.noise
    }

    fn metadata_profile(&self) -> MetadataProfile {
        MetadataProfile {
            op_latency: self.metadata_latency(),
            ops_pool: self.shard_md_ops() * self.scm_shards as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::runner::run_phase;
    use hcs_core::Reconfigured;
    use hcs_simkit::units::{KIB, MIB};

    fn phase() -> PhaseSpec {
        PhaseSpec::seq_write(MIB, 256.0 * MIB)
    }

    #[test]
    fn no_kernel_mount_stage() {
        let d = DaosConfig::on_wombat();
        let graph = d.plan(4, 8, &phase());
        assert!(graph
            .stages
            .iter()
            .all(|s| s.kind != StageKind::ClientMount));
        // The metadata pool is sharded, not the usual shared pool.
        let md = graph
            .stages
            .iter()
            .find(|s| s.name == "daos:scm-md")
            .expect("scm pool planned");
        assert_eq!(md.kind, StageKind::OpsPool);
        assert_eq!(
            md.scope,
            StageScope::Sharded {
                count: d.scm_shards
            }
        );
    }

    #[test]
    fn fsync_is_effectively_free() {
        // SCM commit is the write path either way; a consumer NVMe
        // system pays a millisecond NAND flush for the same phase.
        let d = DaosConfig::on_wombat();
        let buffered = run_phase(&d, 1, 32, &phase()).agg_bandwidth;
        let synced = run_phase(&d, 1, 32, &phase().with_fsync(true)).agg_bandwidth;
        assert!(synced > 0.98 * buffered, "{synced} vs {buffered}");
    }

    #[test]
    fn native_interface_beats_posix_on_small_transfers() {
        let posix = DaosConfig::on_wombat();
        let native = DaosConfig::on_wombat().with_interface(DaosInterface::NativeObject);
        let small = PhaseSpec::seq_write(4.0 * KIB, 8.0 * MIB);
        let bp = run_phase(&posix, 8, 16, &small).agg_bandwidth;
        let bn = run_phase(&native, 8, 16, &small).agg_bandwidth;
        assert!(bn > 1.5 * bp, "native {bn} vs posix {bp}");
    }

    #[test]
    fn native_api_edit_reproduces_native_md_pool() {
        // The deck-sweepable GraphEdit arm must land on the same
        // metadata-pool capacity as the config-level interface switch.
        let posix = DaosConfig::on_wombat();
        let native = DaosConfig::on_wombat().with_interface(DaosInterface::NativeObject);
        let p = phase();
        let edited = Reconfigured::new(posix.clone(), |g: &mut DeploymentGraph| {
            g.scale_pool(StageKind::OpsPool, NATIVE_MD_SPEEDUP)
        });
        let cap_of = |g: &DeploymentGraph| {
            g.stages
                .iter()
                .find(|s| s.name == "daos:scm-md")
                .map(|s| s.capacity)
                .expect("scm pool")
        };
        assert_eq!(
            cap_of(&edited.plan(4, 8, &p)),
            cap_of(&native.plan(4, 8, &p))
        );
        // And the ops-pool edit is what native_api_edit() serializes.
        match native_api_edit() {
            GraphEdit::ScalePool { kind, factor } => {
                assert_eq!(kind, StageKind::OpsPool);
                assert_eq!(factor, NATIVE_MD_SPEEDUP);
            }
            other => panic!("unexpected edit {other:?}"),
        }
    }

    #[test]
    fn small_transfers_are_md_pool_bound_under_posix() {
        let d = DaosConfig::on_wombat();
        let small = PhaseSpec::seq_write(4.0 * KIB, 8.0 * MIB);
        let out = run_phase(&d, 32, 32, &small);
        let b = out.bottleneck.as_ref().expect("saturates");
        assert!(b.name.starts_with("daos:scm-md"), "bottleneck = {b}");
        // Pool accounting: 32 shards × 50k ops/s × 4 KiB.
        let cap = d.scm_shards as f64 * d.per_shard_md_ops * 4.0 * KIB;
        assert!(out.agg_bandwidth <= cap * 1.001);
    }

    #[test]
    fn bulk_bandwidth_scales_to_the_engine_pool() {
        let d = DaosConfig::on_wombat();
        let p = PhaseSpec::seq_read(16.0 * MIB, 1024.0 * MIB);
        let out = run_phase(&d, 64, 32, &p);
        let engine_pool = d.per_engine_bw * d.engines as f64;
        assert!(out.agg_bandwidth <= engine_pool.min(d.media_bw(&p)) * 1.001);
        // And the pool is actually reachable: 64 nodes × 100 GbE NICs
        // can fill 16 engines.
        assert!(out.agg_bandwidth > 0.8 * engine_pool.min(d.media_bw(&p)));
    }

    #[test]
    fn serde_round_trip() {
        let d = DaosConfig::on_wombat().with_interface(DaosInterface::NativeObject);
        let back: DaosConfig = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
        assert_eq!(back, d);
    }
}
