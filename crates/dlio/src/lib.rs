//! # hcs-dlio
//!
//! A DLIO-equivalent deep-learning I/O benchmark (paper §IV.C.2, §VI).
//! DLIO "aims to emulate the I/O behavior of DL applications": worker
//! threads prefetch dataset samples from storage into a bounded queue
//! while the trainer consumes batches and computes; I/O that the
//! prefetch pipeline hides behind computation is *overlapping*, I/O the
//! trainer waits for is *non-overlapping* (§VI.A).
//!
//! The crate simulates that pipeline per node with a discrete-event
//! loop over the suite's flow-level storage models, records DFTracer
//! events for every read and compute interval, and reproduces the
//! paper's two workloads:
//!
//! * [`workloads::resnet50`] — PyTorch ResNet-50: 1,024 JPEG samples of
//!   150 KB, batch size one, one epoch, eight I/O threads, weak scaling
//!   (§VI.B).
//! * [`workloads::cosmoflow`] — TensorFlow Cosmoflow: 1,024 TFRecord
//!   samples, 256 KB transfers, four epochs, batch size one, four I/O
//!   threads ("a contrasting scenario to ResNet50 ... under limited
//!   resources", §VI.C), strong scaling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod pipeline;
pub mod result;
pub mod workloads;

pub use config::{DlioConfig, Scaling};
pub use pipeline::{run_dlio, run_dlio_traced};
pub use result::DlioResult;
pub use workloads::{cosmoflow, resnet50};
