//! DLIO run results.

use serde::{Deserialize, Serialize};

use hcs_dftrace::{IoDecomposition, Tracer};

/// The outcome of one DLIO run at one scale.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DlioResult {
    /// Storage system description.
    pub system: String,
    /// Workload name.
    pub workload: String,
    /// Client nodes.
    pub nodes: u32,
    /// Wall-clock duration of the whole job, seconds.
    pub duration: f64,
    /// Samples processed across all nodes and epochs.
    pub samples_processed: u64,
    /// Per-node I/O decompositions (index = node id).
    pub per_node: Vec<IoDecomposition>,
    /// Mean of the per-node decompositions.
    pub mean_per_node: IoDecomposition,
    /// Aggregate application throughput (Σ per-node perceived
    /// throughput), samples/s — Fig 5a / Fig 6a.
    pub app_throughput: f64,
    /// Aggregate system throughput (Σ per-node storage-side
    /// throughput), samples/s — Fig 5b / Fig 6b.
    pub system_throughput: f64,
    /// Mean per-node time spent in synchronous checkpoints, seconds
    /// (zero when checkpointing is disabled).
    #[serde(default)]
    pub checkpoint_io: f64,
    /// The full DFTracer-style trace of the run.
    pub tracer: Tracer,
}

impl DlioResult {
    /// Mean non-overlapping I/O time per node, seconds (Fig 4 bars).
    pub fn non_overlapping_io(&self) -> f64 {
        self.mean_per_node.non_overlapping_io
    }

    /// Mean overlapping I/O time per node, seconds (Fig 4 bars).
    pub fn overlapping_io(&self) -> f64 {
        self.mean_per_node.overlapping_io
    }

    /// Mean total I/O time per node, seconds.
    pub fn io_total(&self) -> f64 {
        self.mean_per_node.io_total
    }

    /// Mean compute-only fraction of runtime.
    pub fn compute_fraction(&self) -> f64 {
        self.mean_per_node.compute_fraction()
    }
}
