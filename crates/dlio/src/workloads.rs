//! The paper's two DLIO workloads (§VI.B, §VI.C).

use hcs_devices::AccessPattern;

use crate::config::{DlioConfig, Scaling};

/// ResNet-50, as configured by the paper (§VI.B): "the one batch-sized
/// PyTorch version of ResNet-50 created by DLIO where the whole dataset
/// consists of 1024 JPEG samples, each of size 150 KB. We performed a
/// weak scaling test by increasing the number of nodes to 32 and trained
/// the dataset for one full epoch." Eight threads drive the I/O
/// pipeline (§VI.C notes Cosmoflow's four "as opposed to ResNet-50").
///
/// The per-batch accelerator time is calibrated so that, as §VI.A
/// reports, "97% of the overall application runtime consists of only
/// GPU computation" when storage keeps up.
pub fn resnet50() -> DlioConfig {
    DlioConfig {
        name: "ResNet-50".into(),
        framework: "PyTorch".into(),
        samples: 1024,
        sample_bytes: 150e3,
        transfer_size: 150e3, // one JPEG per read
        file_per_sample: true,
        pattern: AccessPattern::Random, // shuffled sample order
        scaling: Scaling::Weak,
        epochs: 1,
        batch_size: 1,
        read_threads: 8,
        compute_threads: 8,
        compute_time_per_batch: 20e-3,
        prefetch_depth: 16,
        checkpoint_every_batches: 0,
        checkpoint_bytes: 0.0,
        seed: 0xd110_0001,
    }
}

/// Cosmoflow, as configured by the paper (§VI.C): "a version of
/// Cosmoflow which consists of 1024 TFRecord samples, and the transfer
/// size for the I/O requests remains constant at 256 KB throughout the
/// training process ... four full epochs and batch size one. There are
/// eight threads per process for computation and four threads for the
/// I/O data pipeline." Samples are 32 MB records (§III.B describes
/// Cosmoflow consuming 32 MB files), streamed sequentially from shards,
/// run with strong scaling "due to the larger size of this
/// application's dataset".
pub fn cosmoflow() -> DlioConfig {
    DlioConfig {
        name: "Cosmoflow".into(),
        framework: "TensorFlow".into(),
        samples: 1024,
        sample_bytes: 32e6,
        transfer_size: 256e3,
        file_per_sample: false, // TFRecord shards: opens amortized
        pattern: AccessPattern::Sequential,
        scaling: Scaling::Strong,
        epochs: 4,
        batch_size: 1,
        read_threads: 4,
        compute_threads: 8,
        compute_time_per_batch: 15e-3,
        prefetch_depth: 8,
        checkpoint_every_batches: 0,
        checkpoint_bytes: 0.0,
        seed: 0xd110_0002,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let r = resnet50();
        assert_eq!(r.samples, 1024);
        assert_eq!(r.sample_bytes, 150e3);
        assert_eq!(r.epochs, 1);
        assert_eq!(r.read_threads, 8);
        assert_eq!(r.batch_size, 1);
        assert_eq!(r.scaling, Scaling::Weak);

        let c = cosmoflow();
        assert_eq!(c.samples, 1024);
        assert_eq!(c.transfer_size, 256e3);
        assert_eq!(c.epochs, 4);
        assert_eq!(c.read_threads, 4);
        assert_eq!(c.compute_threads, 8);
        assert_eq!(c.scaling, Scaling::Strong);
    }

    #[test]
    fn configs_validate() {
        resnet50().validate();
        cosmoflow().validate();
    }

    #[test]
    fn cosmoflow_dataset_much_larger() {
        let r = resnet50();
        let c = cosmoflow();
        let r_bytes = r.samples as f64 * r.sample_bytes;
        let c_bytes = c.samples as f64 * c.sample_bytes;
        assert!(c_bytes > 100.0 * r_bytes);
    }
}
