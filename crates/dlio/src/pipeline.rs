//! The prefetching data-loader pipeline simulation.
//!
//! Per node, the simulated pipeline mirrors a framework data loader
//! (§VI.A: "Data loaders, such as TensorFlow, create a task graph to
//! fetch these batches from storage to memory before the training
//! begins ... AI workloads allow the input pipeline to execute
//! asynchronously in conjunction with the compute"):
//!
//! * `read_threads` workers each fetch one sample at a time from the
//!   storage system (a flow through the provisioned resource path,
//!   rate-capped at the effective per-stream bandwidth with per-op and
//!   per-file latencies folded in) into a bounded prefetch queue;
//! * the trainer pops `batch_size` samples, computes for
//!   `compute_time_per_batch`, and repeats; it stalls when the queue is
//!   empty — that stall is exactly the *non-overlapping I/O* of §VI.A;
//! * at an epoch boundary the pipeline drains and the dataset is
//!   re-read.
//!
//! Every read and compute interval is recorded as a DFTracer event, and
//! the result carries the per-node overlap decompositions and the
//! application/system throughputs of Fig 4–6.

use std::collections::BTreeMap;

use hcs_core::telemetry::Recorder;
use hcs_core::StorageSystem;
use hcs_dftrace::{decompose, EventCategory, IoDecomposition, Tracer};
use hcs_simkit::{FlowId, FlowLogHandle, FlowNet, FlowSpec, IntervalSet};

use crate::config::DlioConfig;
use crate::result::DlioResult;

/// Trainer pseudo-thread id in traces.
const TRAINER_TID: u32 = 1000;

struct NodeState {
    /// Samples still to fetch this epoch.
    to_fetch: u64,
    /// Fetched, unconsumed samples in the prefetch queue.
    queued: u32,
    /// Reads currently in flight.
    in_flight: u32,
    /// Worker threads not currently reading.
    idle_threads: u32,
    /// Samples consumed this epoch.
    consumed: u64,
    /// Samples this node fetches per epoch.
    per_epoch: u64,
    /// Completed epochs.
    epoch: u32,
    /// Whether the trainer is computing, and until when.
    computing: Option<f64>,
    /// Whether the trainer is blocked on a synchronous checkpoint.
    checkpointing: bool,
}

impl NodeState {
    fn done(&self, epochs: u32) -> bool {
        self.epoch >= epochs
    }
}

/// Runs a DLIO workload on a storage system at the given node count.
///
/// # Panics
/// Panics if the configuration is invalid or the pipeline deadlocks
/// (which would indicate a simulator bug).
pub fn run_dlio(system: &dyn StorageSystem, config: &DlioConfig, nodes: u32) -> DlioResult {
    run_dlio_impl(system, config, nodes, None)
}

/// [`run_dlio`] with telemetry: the pipeline's application events
/// (sample reads, train steps, checkpoints) *and* the flow engine's
/// resource-utilization timelines land in `recorder` on its global
/// clock. The result is bit-identical to [`run_dlio`]'s.
pub fn run_dlio_traced(
    system: &dyn StorageSystem,
    config: &DlioConfig,
    nodes: u32,
    recorder: &mut Recorder,
) -> DlioResult {
    run_dlio_impl(system, config, nodes, Some(recorder))
}

fn run_dlio_impl(
    system: &dyn StorageSystem,
    config: &DlioConfig,
    nodes: u32,
    recorder: Option<&mut Recorder>,
) -> DlioResult {
    config.validate();
    assert!(nodes >= 1, "need at least one node");

    let phase = config.phase(nodes);
    let mut net = FlowNet::new();
    // Pure listener — attaching it cannot change the run (pinned by
    // tests/telemetry_parity.rs).
    let probe = recorder.is_some().then(|| FlowLogHandle::attach(&mut net));
    let prov = system.provision(&mut net, nodes, 1, &phase);

    // Optional checkpoint write path: a second provisioning pass adds
    // the write-side resources to the same network, so checkpoint
    // traffic and sample reads contend where they share components.
    let ckpt = if config.checkpoint_every_batches > 0 {
        let wphase = config.checkpoint_phase();
        let wprov = system.provision(&mut net, nodes, 1, &wphase);
        let cap = wprov.effective_stream_bw(wphase.transfer_size);
        Some((wprov, cap))
    } else {
        None
    };

    // Per-sample service ceiling for one worker thread: the effective
    // stream bandwidth at the workload's transfer size, with the
    // per-file open cost folded in for file-per-sample datasets.
    let eff_stream = prov.effective_stream_bw(config.transfer_size);
    let meta = if config.file_per_sample {
        prov.metadata_latency
    } else {
        0.0
    };
    let sample_cap = if eff_stream.is_finite() && eff_stream > 0.0 {
        let t = config.sample_bytes / eff_stream + meta;
        Some(config.sample_bytes / t)
    } else if meta > 0.0 {
        Some(config.sample_bytes / meta)
    } else {
        None
    };

    let mut states: Vec<NodeState> = (0..nodes)
        .map(|n| {
            let per_epoch = config.samples_per_node(nodes, n);
            NodeState {
                to_fetch: per_epoch,
                queued: 0,
                in_flight: 0,
                idle_threads: config.read_threads,
                consumed: 0,
                per_epoch,
                epoch: if per_epoch == 0 { config.epochs } else { 0 },
                computing: None,
                checkpointing: false,
            }
        })
        .collect();

    let mut tracer = Tracer::new();
    let mut flows: BTreeMap<FlowId, (u32, u32, f64)> = BTreeMap::new(); // id -> (node, tid, start)
    let mut ckpt_flows: BTreeMap<FlowId, (u32, f64)> = BTreeMap::new(); // id -> (node, start)
    let mut next_tid: Vec<u32> = vec![0; nodes as usize];

    // Kick off initial reads on every node.
    for node in 0..nodes {
        start_reads(
            node,
            &mut states[node as usize],
            config,
            &prov.node_paths[node as usize],
            sample_cap,
            &mut net,
            &mut flows,
            &mut next_tid,
            0.0,
        );
    }

    let mut guard: u64 = 0;
    let max_events = config.total_sample_reads(nodes) * 6 + 1000;
    loop {
        guard += 1;
        assert!(
            guard <= max_events,
            "DLIO pipeline exceeded its event budget"
        );

        let t_flow = net.next_completion_time();
        let t_compute = states
            .iter()
            .filter_map(|s| s.computing)
            .fold(f64::INFINITY, f64::min);
        let t_flow_v = t_flow.unwrap_or(f64::INFINITY);

        if !t_flow_v.is_finite() && !t_compute.is_finite() {
            break; // quiescent: everything processed
        }

        if t_flow_v <= t_compute {
            let t = t_flow_v;
            net.advance_to(t);
            for c in net.take_completed() {
                if let Some((node, start)) = ckpt_flows.remove(&c.id) {
                    // Synchronous checkpoint finished; the trainer
                    // resumes.
                    tracer.complete_with_bytes(
                        "checkpoint",
                        EventCategory::Write,
                        node,
                        TRAINER_TID,
                        start,
                        t,
                        config.checkpoint_bytes,
                    );
                    states[node as usize].checkpointing = false;
                    try_start_compute(node, &mut states[node as usize], config, &mut tracer, t);
                    start_reads(
                        node,
                        &mut states[node as usize],
                        config,
                        &prov.node_paths[node as usize],
                        sample_cap,
                        &mut net,
                        &mut flows,
                        &mut next_tid,
                        t,
                    );
                    continue;
                }
                let (node, tid, start) = flows.remove(&c.id).expect("unknown flow completed");
                tracer.complete_with_bytes(
                    "read_sample",
                    EventCategory::Read,
                    node,
                    tid,
                    start,
                    t,
                    config.sample_bytes,
                );
                let s = &mut states[node as usize];
                s.in_flight -= 1;
                s.idle_threads += 1;
                s.queued += 1;
                try_start_compute(node, &mut states[node as usize], config, &mut tracer, t);
                start_reads(
                    node,
                    &mut states[node as usize],
                    config,
                    &prov.node_paths[node as usize],
                    sample_cap,
                    &mut net,
                    &mut flows,
                    &mut next_tid,
                    t,
                );
            }
        } else {
            let t = t_compute;
            // Keep the flow clock in lockstep so reads started from a
            // compute completion begin at `t`, not in the past. No flow
            // finishes strictly before `t` here (t < t_flow).
            net.advance_to(t);
            debug_assert!(net.take_completed().is_empty());
            for node in 0..nodes {
                let s = &mut states[node as usize];
                if s.computing.is_some_and(|end| (end - t).abs() < 1e-12) {
                    s.computing = None;
                    tracer.complete(
                        "train_step",
                        EventCategory::Compute,
                        node,
                        TRAINER_TID,
                        t - config.compute_time_per_batch,
                        t,
                    );
                    s.consumed += (s.per_epoch - s.consumed).min(config.batch_size as u64);
                    // Synchronous checkpoint every N batches: the
                    // trainer blocks while the model state streams to
                    // storage over the write path.
                    if let Some((wprov, cap)) = &ckpt {
                        let every = config.checkpoint_every_batches as u64;
                        if every > 0 && s.consumed % every == 0 {
                            let mut spec = FlowSpec::new(
                                wprov.node_paths[node as usize].clone(),
                                config.checkpoint_bytes,
                            );
                            if cap.is_finite() && *cap > 0.0 {
                                spec = spec.with_rate_cap(*cap);
                            }
                            let id = net.add_flow(spec);
                            ckpt_flows.insert(id, (node, t));
                            s.checkpointing = true;
                        }
                    }
                    // Epoch boundary: drain, re-shuffle, re-read.
                    if s.consumed >= s.per_epoch && s.to_fetch == 0 && s.queued == 0 {
                        s.epoch += 1;
                        if !s.done(config.epochs) {
                            s.to_fetch = s.per_epoch;
                            s.consumed = 0;
                            start_reads(
                                node,
                                s,
                                config,
                                &prov.node_paths[node as usize],
                                sample_cap,
                                &mut net,
                                &mut flows,
                                &mut next_tid,
                                t,
                            );
                        }
                    }
                    try_start_compute(node, &mut states[node as usize], config, &mut tracer, t);
                    // Consuming freed prefetch-queue space; keep the
                    // worker threads busy.
                    start_reads(
                        node,
                        &mut states[node as usize],
                        config,
                        &prov.node_paths[node as usize],
                        sample_cap,
                        &mut net,
                        &mut flows,
                        &mut next_tid,
                        t,
                    );
                }
            }
        }
    }

    for (n, s) in states.iter().enumerate() {
        assert!(
            s.done(config.epochs),
            "node {n} finished only {} of {} epochs (queued={}, to_fetch={})",
            s.epoch,
            config.epochs,
            s.queued,
            s.to_fetch
        );
    }

    let duration = tracer.span().map(|(a, b)| b - a).unwrap_or(0.0);
    let per_node: Vec<IoDecomposition> = (0..nodes).map(|n| decompose(&tracer, Some(n))).collect();
    let mut mean = IoDecomposition::default();
    for d in &per_node {
        mean.accumulate(d);
    }
    let mean_per_node = mean.scaled(1.0 / nodes as f64);

    let checkpoint_io = {
        let total: f64 = (0..nodes)
            .map(|n| {
                IntervalSet::from_intervals(
                    tracer
                        .by_pid(n)
                        .filter(|e| e.cat == EventCategory::Write)
                        .map(|e| e.interval()),
                )
                .total()
            })
            .sum();
        total / nodes as f64
    };

    let mut app = 0.0;
    let mut sys = 0.0;
    for (n, d) in per_node.iter().enumerate() {
        let samples = (config.samples_per_node(nodes, n as u32) * config.epochs as u64) as f64;
        app += d.app_throughput(samples);
        sys += d.system_throughput(samples);
    }

    if let (Some(rec), Some(probe)) = (recorder, probe) {
        // Stage attribution covers both provisioning passes (read path
        // and, when checkpointing, the write path into the same net).
        let mut kinds = prov.stage_kinds.clone();
        if let Some((wprov, _)) = &ckpt {
            kinds.extend(wprov.stage_kinds.iter().copied());
        }
        rec.merge_events(&tracer);
        let label = format!("dlio {} {}n", config.name, nodes);
        rec.absorb_phase(&label, &probe.snapshot(), &kinds, duration);
    }

    DlioResult {
        system: system.description(),
        workload: config.name.clone(),
        nodes,
        duration,
        samples_processed: config.total_sample_reads(nodes),
        per_node,
        mean_per_node,
        app_throughput: app,
        system_throughput: sys,
        checkpoint_io,
        tracer,
    }
}

/// Starts as many reads as threads and queue space allow.
#[allow(clippy::too_many_arguments)]
fn start_reads(
    node: u32,
    s: &mut NodeState,
    config: &DlioConfig,
    path: &[hcs_simkit::ResourceId],
    sample_cap: Option<f64>,
    net: &mut FlowNet,
    flows: &mut BTreeMap<FlowId, (u32, u32, f64)>,
    next_tid: &mut [u32],
    now: f64,
) {
    while s.idle_threads > 0 && s.to_fetch > 0 && (s.queued + s.in_flight) < config.prefetch_depth {
        let tid = next_tid[node as usize] % config.read_threads;
        next_tid[node as usize] += 1;
        let mut spec = FlowSpec::new(path.to_vec(), config.sample_bytes);
        if let Some(cap) = sample_cap {
            spec = spec.with_rate_cap(cap);
        }
        let id = net.add_flow(spec);
        flows.insert(id, (node, tid, now));
        s.idle_threads -= 1;
        s.in_flight += 1;
        s.to_fetch -= 1;
    }
}

/// Starts a training step if the trainer is idle and a batch is ready.
fn try_start_compute(
    node: u32,
    s: &mut NodeState,
    config: &DlioConfig,
    _tracer: &mut Tracer,
    now: f64,
) {
    let _ = node;
    if s.computing.is_some()
        || s.checkpointing
        || s.consumed >= s.per_epoch
        || s.epoch >= config.epochs
    {
        return;
    }
    // The final batch of an epoch may be partial (per_epoch % batch).
    let remaining = (s.per_epoch - s.consumed).min(config.batch_size as u64) as u32;
    if s.queued >= remaining && remaining > 0 {
        s.queued -= remaining;
        s.computing = Some(now + config.compute_time_per_batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{cosmoflow, resnet50};
    use hcs_gpfs::GpfsConfig;
    use hcs_vast::vast_on_lassen;

    #[test]
    fn completes_all_samples_and_epochs() {
        let sys = GpfsConfig::on_lassen();
        let cfg = resnet50().smoke();
        let r = run_dlio(&sys, &cfg, 2);
        assert_eq!(r.samples_processed, cfg.samples * 2);
        let reads = r.tracer.by_category(&EventCategory::Read).count() as u64;
        assert_eq!(reads, cfg.samples * 2);
        let steps = r.tracer.by_category(&EventCategory::Compute).count() as u64;
        assert_eq!(steps, cfg.samples * 2);
    }

    #[test]
    fn epochs_reread_dataset() {
        let sys = GpfsConfig::on_lassen();
        let cfg = cosmoflow().smoke(); // 2 epochs after smoke
        let r = run_dlio(&sys, &cfg, 2);
        let reads = r.tracer.by_category(&EventCategory::Read).count() as u64;
        assert_eq!(reads, cfg.samples * cfg.epochs as u64);
    }

    #[test]
    fn deterministic() {
        let sys = vast_on_lassen();
        let cfg = resnet50().smoke();
        let a = run_dlio(&sys, &cfg, 2);
        let b = run_dlio(&sys, &cfg, 2);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.mean_per_node, b.mean_per_node);
    }

    #[test]
    fn decomposition_identity_holds() {
        let sys = vast_on_lassen();
        let r = run_dlio(&sys, &resnet50().smoke(), 1);
        let d = &r.mean_per_node;
        assert!((d.overlapping_io + d.non_overlapping_io - d.io_total).abs() < 1e-9);
        assert!(d.io_total > 0.0);
        assert!(d.compute_total > 0.0);
    }

    #[test]
    fn compute_dominates_resnet_runtime() {
        // §VI.A: ~97% of runtime is computation when storage keeps up.
        let sys = GpfsConfig::on_lassen();
        let r = run_dlio(&sys, &resnet50(), 1);
        assert!(
            r.compute_fraction() > 0.9,
            "compute fraction = {}",
            r.compute_fraction()
        );
    }

    #[test]
    fn vast_tcp_spends_more_io_time_than_gpfs_on_resnet() {
        // Fig 4a: VAST I/O time exceeds GPFS's, but most overlaps.
        let vast = vast_on_lassen();
        let gpfs = GpfsConfig::on_lassen();
        let rv = run_dlio(&vast, &resnet50(), 4);
        let rg = run_dlio(&gpfs, &resnet50(), 4);
        assert!(
            rv.io_total() > rg.io_total(),
            "{} vs {}",
            rv.io_total(),
            rg.io_total()
        );
        assert!(
            rv.overlapping_io() > rv.non_overlapping_io(),
            "most VAST I/O hides behind compute: {} vs {}",
            rv.overlapping_io(),
            rv.non_overlapping_io()
        );
    }

    #[test]
    fn app_throughput_gap_smaller_than_system_gap_on_resnet() {
        // Fig 5: system throughput differs wildly; application
        // throughput only slightly.
        let vast = vast_on_lassen();
        let gpfs = GpfsConfig::on_lassen();
        let rv = run_dlio(&vast, &resnet50(), 4);
        let rg = run_dlio(&gpfs, &resnet50(), 4);
        let app_ratio = rg.app_throughput / rv.app_throughput;
        let sys_ratio = rg.system_throughput / rv.system_throughput;
        assert!(app_ratio < 1.3, "app ratio = {app_ratio}");
        assert!(sys_ratio > 2.0, "system ratio = {sys_ratio}");
    }

    #[test]
    fn cosmoflow_starves_on_vast_not_on_gpfs() {
        // Fig 4b / Fig 6: non-overlapping I/O dramatically increases
        // for VAST; GPFS serves Cosmoflow better.
        let vast = vast_on_lassen();
        let gpfs = GpfsConfig::on_lassen();
        let rv = run_dlio(&vast, &cosmoflow(), 4);
        let rg = run_dlio(&gpfs, &cosmoflow(), 4);
        assert!(
            rv.non_overlapping_io() > 5.0 * rg.non_overlapping_io(),
            "VAST stalls: {} vs GPFS {}",
            rv.non_overlapping_io(),
            rg.non_overlapping_io()
        );
        assert!(rg.app_throughput > 1.3 * rv.app_throughput);
    }

    #[test]
    fn checkpointing_blocks_trainer_and_is_traced() {
        let sys = GpfsConfig::on_lassen();
        let base = resnet50().smoke();
        let ckpt = base.clone().with_checkpointing(16, 500e6);
        let plain = run_dlio(&sys, &base, 2);
        let with = run_dlio(&sys, &ckpt, 2);
        // 64 samples / 16 = 4 checkpoints per node.
        let writes = with.tracer.by_category(&EventCategory::Write).count();
        assert_eq!(writes, 8);
        assert!(with.checkpoint_io > 0.0);
        assert_eq!(plain.checkpoint_io, 0.0);
        assert!(
            with.duration > plain.duration,
            "synchronous checkpoints lengthen the run: {} vs {}",
            with.duration,
            plain.duration
        );
    }

    #[test]
    fn checkpoint_cost_scales_with_bytes() {
        let sys = vast_on_lassen();
        let small = run_dlio(&sys, &resnet50().smoke().with_checkpointing(32, 100e6), 1);
        let large = run_dlio(&sys, &resnet50().smoke().with_checkpointing(32, 1000e6), 1);
        assert!(
            large.checkpoint_io > 5.0 * small.checkpoint_io,
            "{} vs {}",
            large.checkpoint_io,
            small.checkpoint_io
        );
    }

    #[test]
    fn partial_final_batch_does_not_deadlock() {
        let sys = GpfsConfig::on_lassen();
        let mut cfg = resnet50().smoke();
        cfg.samples = 13;
        cfg.batch_size = 4; // 3 full batches + 1 partial
        cfg.prefetch_depth = 8;
        let r = run_dlio(&sys, &cfg, 2);
        assert_eq!(r.samples_processed, 26);
        let steps = r.tracer.by_category(&EventCategory::Compute).count();
        assert_eq!(steps, 8, "4 steps per node (3 full + 1 partial)");
    }

    #[test]
    fn batched_training_consumes_whole_batches() {
        let sys = GpfsConfig::on_lassen();
        let mut cfg = resnet50().smoke();
        cfg.samples = 32;
        cfg.batch_size = 8;
        let r = run_dlio(&sys, &cfg, 1);
        let steps = r.tracer.by_category(&EventCategory::Compute).count();
        assert_eq!(steps, 4);
    }

    #[test]
    fn single_sample_edge_case() {
        let sys = GpfsConfig::on_lassen();
        let mut cfg = resnet50();
        cfg.samples = 1;
        let r = run_dlio(&sys, &cfg, 1);
        assert_eq!(r.samples_processed, 1);
        assert!(r.duration > 0.0);
    }

    #[test]
    fn more_nodes_than_samples_strong_scaling() {
        let sys = GpfsConfig::on_lassen();
        let mut cfg = cosmoflow().smoke();
        cfg.samples = 3;
        cfg.epochs = 1;
        let r = run_dlio(&sys, &cfg, 8); // 5 nodes idle
        assert_eq!(r.samples_processed, 3);
    }
}
