//! DLIO workload configurations — re-exported from the core scenario
//! IR.
//!
//! The configuration types moved to [`hcs_core::scenario::dlio`] so
//! that a `hcs_core::Scenario` can embed a DLIO workload without a
//! dependency cycle; this crate keeps its historical paths
//! (`hcs_dlio::config::DlioConfig`, `hcs_dlio::DlioConfig`) and owns
//! the pipeline simulator ([`crate::run_dlio`]) plus the paper's
//! workload presets ([`crate::workloads`]).

pub use hcs_core::scenario::dlio::{DlioConfig, Scaling};

#[cfg(test)]
mod tests {
    use crate::workloads::{cosmoflow, resnet50};
    use hcs_devices::AccessPattern;

    #[test]
    fn weak_scaling_keeps_per_node_constant() {
        let c = resnet50();
        assert_eq!(c.samples_per_node(1, 0), 1024);
        assert_eq!(c.samples_per_node(32, 31), 1024);
        assert_eq!(c.total_sample_reads(32), 1024 * 32);
    }

    #[test]
    fn strong_scaling_splits_dataset() {
        let c = cosmoflow();
        assert_eq!(c.samples_per_node(1, 0), 1024);
        assert_eq!(c.samples_per_node(4, 0), 256);
        let total: u64 = (0..3).map(|n| c.samples_per_node(3, n)).sum();
        assert_eq!(total, 1024);
        assert_eq!(c.total_sample_reads(4), 1024 * 4); // 4 epochs
    }

    #[test]
    fn phase_reflects_pattern_and_bytes() {
        let r = resnet50().phase(8);
        assert_eq!(r.pattern, AccessPattern::Random);
        assert!(!r.client_cache_defeated);
        let cf = cosmoflow().phase(4);
        assert_eq!(cf.pattern, AccessPattern::Sequential);
        assert!((cf.bytes_per_rank - 256.0 * cosmoflow().sample_bytes).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "transfer larger than sample")]
    fn transfer_bigger_than_sample_rejected() {
        let mut c = resnet50();
        c.transfer_size = c.sample_bytes * 2.0;
        c.validate();
    }

    #[test]
    fn smoke_shrinks() {
        let c = cosmoflow().smoke();
        assert!(c.samples <= 64);
        assert!(c.epochs <= 2);
        c.validate();
    }
}
