//! CLI error paths: a bad deck must exit 2 with a one-line diagnostic,
//! never a panic backtrace. Exercises the `hcs run` front door with
//! malformed JSON, an unknown registry key, and a fault deck whose
//! target stage the planned deployment graph does not contain.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Runs the built `hcs` binary with `args`, capturing output.
fn hcs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hcs"))
        .args(args)
        .output()
        .expect("spawn hcs")
}

/// Writes `content` to a unique temp file and returns its path.
fn temp_deck(tag: &str, content: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("hcs-cli-errors-{}-{tag}.json", std::process::id()));
    std::fs::write(&path, content).expect("write temp deck");
    path
}

/// A well-formed single-point IOR deck body with `faults` injected into
/// the base scenario.
fn fault_deck(faults: &str) -> String {
    format!(
        r#"{{
  "name": "err-test",
  "base": {{
    "system": "vast-lassen",
    "faults": {faults},
    "workload": {{
      "Ior": {{
        "nodes": 1, "tasks_per_node": 4,
        "block_size": 1048576.0, "transfer_size": 1048576.0,
        "segments": 8, "workload": "Scientific",
        "fsync": false, "file_per_proc": true, "reorder_tasks": true,
        "reps": 2, "seed": 7
      }}
    }},
    "full_node": false,
    "trace": false
  }}
}}"#
    )
}

/// Asserts the invocation died cleanly: exit code 2, the diagnostic on
/// stderr, and no panic backtrace anywhere.
fn assert_dies_with(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains(needle),
        "stderr missing '{needle}': {stderr}"
    );
    for s in [&stderr, &stdout] {
        assert!(!s.contains("panicked"), "panic leaked to output: {s}");
        assert!(!s.contains("RUST_BACKTRACE"), "backtrace hint leaked: {s}");
    }
}

#[test]
fn malformed_deck_json_exits_2() {
    let path = temp_deck("malformed", "{ this is not json");
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "parses as neither a deck");
}

#[test]
fn unknown_system_key_exits_2() {
    let deck = fault_deck("[]").replace("vast-lassen", "no-such-system");
    let path = temp_deck("unknown-system", &deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "unknown system 'no-such-system'");
}

#[test]
fn fault_on_missing_stage_exits_2() {
    // VAST@Lassen's gateway stage is planned as "vast:gw", so a name
    // filter for anything else targets nothing.
    let deck = fault_deck(
        r#"[{ "stage": "Gateway", "name": "no-such-gw", "start": 1.0, "end": 2.0, "fault": "Outage" }]"#,
    );
    let path = temp_deck("missing-stage", &deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "fault targets no planned stage");
}

#[test]
fn invalid_fault_window_exits_2() {
    // end <= start is rejected by FaultSpec::check before any run.
    let deck =
        fault_deck(r#"[{ "stage": "Gateway", "start": 5.0, "end": 1.0, "fault": "Outage" }]"#);
    let path = temp_deck("bad-window", &deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "end must be finite and after start");
}

#[test]
fn nonexistent_deck_name_exits_2() {
    let out = hcs(&["run", "no-such-deck-or-file"]);
    assert_dies_with(&out, "neither a file nor a builtin deck");
}

#[test]
fn zero_length_fault_window_exits_2() {
    // start == end is a distinct diagnostic from end < start: the
    // window is well-ordered but covers no time at all.
    let deck =
        fault_deck(r#"[{ "stage": "Gateway", "start": 2.0, "end": 2.0, "fault": "Outage" }]"#);
    let path = temp_deck("zero-window", &deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "zero-length window");
}

/// A well-formed single-point IOR deck body with an open `arrival` spec
/// injected into the base scenario.
fn arrival_deck(rate: &str, duration: &str) -> String {
    fault_deck("[]").replace(
        r#""faults": [],"#,
        &format!(
            r#""faults": [],
    "arrival": {{ "Open": {{ "rate": {rate}, "duration": {duration}, "seed": 1 }} }},"#
        ),
    )
}

#[test]
fn zero_arrival_rate_exits_2() {
    let path = temp_deck("zero-rate", &arrival_deck("0.0", "1.0"));
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "arrival rate must be finite and positive");
}

#[test]
fn negative_arrival_rate_exits_2() {
    let path = temp_deck("negative-rate", &arrival_deck("-50.0", "1.0"));
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "arrival rate must be finite and positive");
}

#[test]
fn nan_arrival_rate_exits_2() {
    // JSON has no NaN literal, so a NaN rate dies at the parser with
    // the usual one-line deck diagnostic rather than reaching check().
    let path = temp_deck("nan-rate", &arrival_deck("NaN", "1.0"));
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "parses as neither a deck");
}

#[test]
fn zero_arrival_duration_exits_2() {
    let path = temp_deck("zero-duration", &arrival_deck("100.0", "0.0"));
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "duration must be finite and positive");
}

#[test]
fn open_loop_on_unsupported_family_exits_2() {
    // Open-loop arrival injection drives the flow-level phase runner,
    // which only the IOR family exposes today.
    let deck = r#"{
  "name": "err-open-family",
  "base": {
    "system": "gpfs",
    "arrival": { "Open": { "rate": 100.0, "duration": 1.0, "seed": 1 } },
    "workload": {
      "Mdtest": {
        "nodes": 1, "tasks_per_node": 4, "files_per_proc": 10,
        "reps": 2, "seed": 7
      }
    },
    "full_node": false,
    "trace": false
  }
}"#;
    let path = temp_deck("open-family", deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "open-loop arrivals support the IOR family only");
}

#[test]
fn offered_load_sweep_over_closed_base_exits_2() {
    let deck = fault_deck("[]").replace(
        r#""base": {"#,
        r#""axes": { "offered_load": [100.0, 200.0] },
  "base": {"#,
    );
    let path = temp_deck("closed-sweep", &deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "sweeps offered_load");
}

#[test]
fn chaos_without_target_exits_2() {
    let out = hcs(&["chaos"]);
    assert_dies_with(&out, "chaos: missing campaign file");
}

#[test]
fn chaos_campaign_with_literal_faults_exits_2() {
    // A chaos campaign generates its own timelines; a base deck that
    // schedules literal faults is rejected before any run.
    let deck =
        fault_deck(r#"[{ "stage": "Gateway", "start": 1.0, "end": 2.0, "fault": "Outage" }]"#);
    let campaign = format!(r#"{{ "name": "bad-campaign", "population": 2, "base": {deck} }}"#);
    let path = temp_deck("chaos-literal-faults", &campaign);
    let out = hcs(&["chaos", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "literal faults");
}

#[test]
fn provenance_without_metrics_exits_2() {
    // --provenance decorates the metrics pipeline; alone it has
    // nowhere to put the decomposition.
    let path = temp_deck("prov-no-metrics", &arrival_deck("50.0", "0.2"));
    let out = hcs(&["run", path.to_str().unwrap(), "--provenance"]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(
        &out,
        "--provenance rides the metrics pipeline; add --metrics",
    );
}

#[test]
fn provenance_on_closed_loop_deck_exits_2() {
    // Per-op latency exists only under an open arrival process, so a
    // closed-loop point cannot carry the blame probe.
    let path = temp_deck("prov-closed", &fault_deck("[]"));
    let out = hcs(&["run", path.to_str().unwrap(), "--metrics", "--provenance"]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "latency provenance needs open-loop arrivals");
}

#[test]
fn provenance_on_non_ior_workload_exits_2() {
    // The blame probe rides the IOR open-loop phase runner; other
    // families have no per-op latency stream to decompose.
    let deck = fault_deck("[]").replace(
        r#""workload": {
      "Ior": {
        "nodes": 1, "tasks_per_node": 4,
        "block_size": 1048576.0, "transfer_size": 1048576.0,
        "segments": 8, "workload": "Scientific",
        "fsync": false, "file_per_proc": true, "reorder_tasks": true,
        "reps": 2, "seed": 7
      }
    },"#,
        r#""workload": {
      "Mdtest": {
        "nodes": 1, "tasks_per_node": 4,
        "files_per_proc": 10, "reps": 2, "seed": 7
      }
    },"#,
    );
    let path = temp_deck("prov-family", &deck);
    let out = hcs(&["run", path.to_str().unwrap(), "--metrics", "--provenance"]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "latency provenance supports the IOR family only");
}

#[test]
fn degrade_factor_one_exits_2() {
    // factor 1.0 multiplies capacity by 1 — a silent no-op that makes a
    // resilience sweep lie. Rejected up front with a one-liner.
    let deck = fault_deck(
        r#"[{ "stage": "Media", "start": 1.0, "end": 2.0, "fault": { "Degrade": { "factor": 1.0 } } }]"#,
    );
    let path = temp_deck("degrade-one", &deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "Degrade factor must be in (0, 1)");
    assert_dies_with(&out, "no-op");
}

#[test]
fn unknown_system_in_deck_lists_valid_keys() {
    // The exit-2 one-liner must name every registry key, including the
    // cross-protocol backends, so the fix is in the message itself.
    let deck = fault_deck("[]").replace("vast-lassen", "no-such-system");
    let path = temp_deck("unknown-system-keys", &deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "unknown system 'no-such-system'");
    assert_dies_with(&out, "objstore");
    assert_dies_with(&out, "daos");
}

#[test]
fn subcommand_unknown_system_lists_valid_keys() {
    // Every positional-system subcommand resolves through the same
    // helper: exit 2, the bad name quoted, and the full key list.
    let invocations: &[&[&str]] = &[
        &["ior", "no-such-system", "write"],
        &["dlio", "no-such-system", "resnet50"],
        &["explain", "no-such-system", "write"],
        &["mdtest", "no-such-system"],
        &["replay", "some-trace.json", "no-such-system"],
    ];
    for args in invocations {
        let out = hcs(args);
        assert_dies_with(&out, "unknown system 'no-such-system'");
        assert_dies_with(&out, "known:");
        assert_dies_with(&out, "objstore");
        assert_dies_with(&out, "daos");
    }
}

#[test]
fn cross_protocol_fault_on_unplanned_kind_exits_2() {
    // Local NVMe plans only a Media stage and DAOS's library stack has
    // no gateway either, so a Gateway fault swept across both targets
    // nothing anywhere: the deck-level union check calls the whole deck
    // impossible instead of blaming the first expanded point.
    let deck =
        fault_deck(r#"[{ "stage": "Gateway", "start": 1.0, "end": 2.0, "fault": "Outage" }]"#)
            .replace(
                r#""base": {"#,
                r#""axes": { "systems": ["nvme", "daos"] },
  "base": {"#,
            );
    let path = temp_deck("crossproto-union", &deck);
    let out = hcs(&["run", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_dies_with(&out, "fault targets no planned stage in any swept system");
}
