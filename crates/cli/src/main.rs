//! The `hcs` command: one front door for the suite.
//!
//! ```text
//! hcs systems                               list deployments
//! hcs ior   <system> <workload> [nodes] [ppn]   run IOR
//! hcs dlio  <system> <resnet50|cosmoflow> [nodes]   run DLIO
//! hcs mdtest <system> [nodes] [ppn]         run the metadata benchmark
//! hcs replay <trace.json> <system>          what-if replay of a trace
//! hcs run <deck.json|name> [--scale smoke] [--metrics] [--provenance]  execute a scenario deck
//! hcs chaos <campaign.json|deck> [--seed N --population K --budget ...]  fuzz the failure space
//! hcs report <deck-result.json|chaos-report.json>  render a result as a report
//! hcs decks [--export <dir>]                list/export the builtin decks
//! hcs figures [--scale smoke]               regenerate every figure
//! hcs takeaways [--scale smoke]             §VII paper-vs-measured
//! ```

use hcs_core::scenario::Scale;
use hcs_core::telemetry::Recorder;
use hcs_core::{Deck, StorageSystem};
use hcs_dlio::{cosmoflow, resnet50, run_dlio, run_dlio_traced};
use hcs_experiments::registry;
use hcs_ior::{run_ior, run_ior_traced, IorConfig, WorkloadClass};
use hcs_mdtest::{run_mdtest, MdtestConfig, MetaOp};
use hcs_replay::{replay, ReplayConfig};

const USAGE: &str = "\
usage: hcs <command> [args]

commands:
  systems                                list storage deployments
  ior <system> <workload> [nodes] [ppn]  run the IOR-equivalent benchmark
  dlio <system> <workload> [nodes]       run the DLIO-equivalent (resnet50|cosmoflow)
  mdtest <system> [nodes] [ppn]          run the MDTest-equivalent
  explain <system> <workload> [nodes] [ppn]  show resources, utilization and the bottleneck
  replay <trace.json> <system>           what-if replay of a chrome trace
  run <deck.json|scenario.json|name>     execute a scenario deck (see `hcs decks`)
  chaos <campaign.json|deck.json|name>   run a seeded fault-fuzzing campaign over
                                         a deck and check metamorphic invariants
  report <result.json>                   render a deck result (`hcs run`) or a
                                         chaos report (`hcs chaos`) as markdown
  decks [--export <dir>]                 list builtin decks / export them as JSON
  figures                                regenerate every paper figure
  takeaways                              print §VII paper-vs-measured
  table1                                 print Table I

systems: see `hcs systems` (the shared registry is the single source)
workloads (ior): scientific | analytics | ml

options:
  --scale <paper|smoke|datacenter>  run at paper scale (default), CI
                   smoke scale, or datacenter scale (10^5-10^7 clients
                   via the equivalence-class planner)
  --smoke                alias for --scale smoke
  --trace <path>   (ior, dlio, run) dump a Chrome trace of the run —
                   flows, per-resource utilization, bottleneck
                   hand-offs — and print the telemetry summary
  --metrics        (run) collect per-point I/O-time decomposition,
                   bottleneck shares and cross-rep statistics into the
                   result JSON (for `hcs report`); outcomes are
                   bit-identical with or without it
  --provenance     (run, needs --metrics) attach the per-op latency
                   provenance probe to every open-loop point: blame
                   each op's latency on the binding stage per rate
                   epoch, feed the report's Tail forensics section and
                   name the stage behind each knee; IOR open-loop
                   decks only, outcomes stay bit-identical
  --format <md|json>  (report) output format, default md
  --seed <N>       (chaos) master seed for timeline generation
  --population <K> (chaos) timelines generated per deck point
  --budget <k=v,...> (chaos) per-timeline fault bounds: max_faults,
                   max_outage_seconds, min_degrade_factor,
                   horizon_seconds, kinds (e.g. kinds=outage+degrade)";

/// Resolves a system name via the shared registry to a deployment and
/// its machine's full-node process count.
fn system(name: &str) -> Option<(Box<dyn StorageSystem>, u32)> {
    registry::resolve(name).map(|e| (e.build(), e.full_ppn))
}

/// Resolves a positional system argument or dies listing every valid
/// registry key, so a typo never leaves the user guessing at names.
fn resolve_system(cmd: &str, name: Option<&String>) -> (Box<dyn StorageSystem>, u32) {
    let known = registry::names().join(", ");
    match name {
        None => die(&format!("{cmd}: missing system (known: {known})")),
        Some(n) => system(n)
            .unwrap_or_else(|| die(&format!("{cmd}: unknown system '{n}' (known: {known})"))),
    }
}

fn workload(name: &str) -> Option<WorkloadClass> {
    Some(match name {
        "scientific" | "sci" | "write" => WorkloadClass::Scientific,
        "analytics" | "da" | "read" => WorkloadClass::DataAnalytics,
        "ml" | "random" => WorkloadClass::MachineLearning,
        _ => return None,
    })
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}\n\n{USAGE}");
    std::process::exit(2)
}

/// Splits `--trace <path>` out of the arg list, returning the
/// remaining positional args and the path (if given).
fn trace_flag(args: &[String]) -> (Vec<String>, Option<String>) {
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            match it.next() {
                Some(p) => path = Some(p.clone()),
                None => die("--trace: missing path"),
            }
        } else {
            rest.push(a.clone());
        }
    }
    (rest, path)
}

/// Splits the boolean `--metrics` flag out of the arg list.
fn metrics_flag(args: &[String]) -> (Vec<String>, bool) {
    let rest: Vec<String> = args.iter().filter(|a| *a != "--metrics").cloned().collect();
    let metrics = rest.len() != args.len();
    (rest, metrics)
}

/// Splits the boolean `--provenance` flag out of the arg list.
fn provenance_flag(args: &[String]) -> (Vec<String>, bool) {
    let rest: Vec<String> = args
        .iter()
        .filter(|a| *a != "--provenance")
        .cloned()
        .collect();
    let provenance = rest.len() != args.len();
    (rest, provenance)
}

/// Splits `--format <md|json>` out of the arg list.
fn format_flag(args: &[String]) -> (Vec<String>, String) {
    let mut rest = Vec::with_capacity(args.len());
    let mut format = "md".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--format" {
            match it.next().map(String::as_str) {
                Some(f @ ("md" | "json")) => format = f.to_string(),
                Some(f) => die(&format!("--format: unknown format '{f}' (md|json)")),
                None => die("--format: missing value (md|json)"),
            }
        } else {
            rest.push(a.clone());
        }
    }
    (rest, format)
}

/// Splits `--scale <paper|smoke|datacenter>` (and its `--smoke` shorthand) out of
/// the arg list, returning the remaining positional args and the scale.
fn scale_flag(args: &[String]) -> (Vec<String>, Scale) {
    let mut rest = Vec::with_capacity(args.len());
    let mut scale = Scale::Paper;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--smoke" {
            scale = Scale::Smoke;
        } else if a == "--scale" {
            scale = match it.next() {
                Some(s) => {
                    Scale::parse(s).unwrap_or_else(|| die(&format!("--scale: unknown scale '{s}'")))
                }
                None => die("--scale: missing value (paper|smoke|datacenter)"),
            };
        } else {
            rest.push(a.clone());
        }
    }
    (rest, scale)
}

/// Loads a deck: a JSON file holding a `Deck`, a JSON file holding a
/// bare `Scenario` (wrapped as a single-point deck), or the name of a
/// builtin deck from the catalog.
fn load_deck(target: &str, scale: Scale) -> Deck {
    let path = std::path::Path::new(target);
    if path.exists() {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("run: cannot read {target}: {e}")));
        match serde_json::from_str::<Deck>(&json) {
            Ok(deck) => deck,
            Err(deck_err) => match serde_json::from_str::<hcs_core::Scenario>(&json) {
                Ok(sc) => {
                    let name = if sc.name.is_empty() {
                        "scenario".to_string()
                    } else {
                        sc.name.clone()
                    };
                    Deck::single(name, sc)
                }
                Err(sc_err) => die(&format!(
                    "run: {target} parses as neither a deck ({deck_err}) nor a scenario ({sc_err})"
                )),
            },
        }
    } else {
        let decks = hcs_experiments::figures::all_decks(scale);
        match decks.iter().find(|d| d.name == target) {
            Some(d) => d.clone(),
            None => {
                let names: Vec<&str> = decks.iter().map(|d| d.name.as_str()).collect();
                die(&format!(
                    "run: '{target}' is neither a file nor a builtin deck; builtins: {}",
                    names.join(" ")
                ))
            }
        }
    }
}

/// Loads a chaos campaign: a JSON file holding a `ChaosCampaign`, or
/// anything `load_deck` accepts (deck file, bare scenario, builtin deck
/// name) wrapped in a default campaign named after the deck.
fn load_campaign(target: &str, scale: Scale) -> hcs_core::ChaosCampaign {
    let path = std::path::Path::new(target);
    if path.exists() {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("chaos: cannot read {target}: {e}")));
        if let Ok(campaign) = serde_json::from_str::<hcs_core::ChaosCampaign>(&json) {
            return campaign;
        }
    }
    let deck = load_deck(target, scale);
    hcs_core::ChaosCampaign::new(format!("chaos-{}", deck.name), deck)
}

/// Applies `--budget key=value,...` overrides to a fault budget.
fn apply_budget_overrides(budget: &mut hcs_core::FaultBudget, spec: &str) {
    for pair in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .unwrap_or_else(|| die(&format!("--budget: '{pair}' is not key=value")));
        let parse = |v: &str| -> f64 {
            v.parse()
                .unwrap_or_else(|_| die(&format!("--budget: {key}: '{v}' is not a number")))
        };
        match key {
            "max_faults" => budget.max_faults = parse(value) as u32,
            "max_outage_seconds" => budget.max_outage_seconds = parse(value),
            "min_degrade_factor" => budget.min_degrade_factor = parse(value),
            "horizon_seconds" => budget.horizon_seconds = parse(value),
            "kinds" => {
                budget.kinds = value
                    .split('+')
                    .map(|k| match k {
                        "outage" => hcs_core::ChaosFaultKind::Outage,
                        "degrade" => hcs_core::ChaosFaultKind::Degrade,
                        "jitter" => hcs_core::ChaosFaultKind::Jitter,
                        other => die(&format!(
                            "--budget: kinds: unknown kind '{other}' (outage|degrade|jitter)"
                        )),
                    })
                    .collect();
            }
            other => die(&format!(
                "--budget: unknown key '{other}' (max_faults, max_outage_seconds, \
                 min_degrade_factor, horizon_seconds, kinds)"
            )),
        }
    }
}

/// Writes the recorder's Chrome trace to `path` and prints the metrics
/// summary (busy fractions, time-weighted bottleneck attribution).
fn dump_trace(recorder: &Recorder, path: &str) {
    let json = recorder.to_chrome_json();
    std::fs::write(path, &json)
        .unwrap_or_else(|e| die(&format!("--trace: cannot write {path}: {e}")));
    let m = recorder.metrics_summary();
    println!(
        "\n[trace] {} events over {:.2}s -> {path}",
        recorder.tracer().len(),
        m.span
    );
    for r in m.resources.iter().filter(|r| r.busy_seconds > 0.0) {
        println!(
            "  {:<24} busy {:>5.1}%  mean util {:>5.1}%",
            r.name,
            r.busy_fraction * 100.0,
            r.mean_utilization * 100.0
        );
    }
    for b in &m.bottlenecks {
        let stage = b.kind.map(|k| k.label()).unwrap_or("?");
        println!(
            "  bottleneck {:<13} {:<24} {:>6.2}s ({:>4.1}%)",
            stage,
            b.name,
            b.seconds,
            b.share * 100.0
        );
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (raw, trace) = trace_flag(&raw);
    let (raw, metrics) = metrics_flag(&raw);
    let (raw, provenance) = provenance_flag(&raw);
    let (raw, format) = format_flag(&raw);
    let (args, scale) = scale_flag(&raw);
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "systems" => {
            for e in registry::entries() {
                println!(
                    "{:<16} {:<56} [{}] (full node: {} ppn)",
                    e.key,
                    e.build().description(),
                    e.machine,
                    e.full_ppn
                );
            }
        }
        "table1" => print!("{}", hcs_experiments::figures::table1::render()),
        "ior" => {
            let (sys, full_ppn) = resolve_system("ior", args.get(1));
            let w = args
                .get(2)
                .and_then(|s| workload(s))
                .unwrap_or_else(|| die("ior: unknown workload"));
            let nodes: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
            let ppn: u32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(full_ppn);
            let cfg = match scale {
                Scale::Smoke | Scale::Datacenter => IorConfig::smoke(w, nodes, ppn),
                Scale::Paper => IorConfig::paper_scalability(w, nodes, ppn),
            };
            let mut recorder = Recorder::new();
            let rep = match &trace {
                Some(_) => run_ior_traced(sys.as_ref(), &cfg, &mut recorder),
                None => run_ior(sys.as_ref(), &cfg),
            };
            println!(
                "{} — {} @ {} nodes x {} ppn:\n  {:.2} GB/s aggregate ({:.2} GB/s per node, ±{:.2} over {} reps)",
                rep.system,
                w.label(),
                nodes,
                ppn,
                rep.mean_bandwidth() / 1e9,
                rep.per_node_bandwidth() / 1e9,
                rep.outcome.summary.std_dev / 1e9,
                cfg.reps
            );
            if let Some(path) = &trace {
                dump_trace(&recorder, path);
            }
        }
        "dlio" => {
            let (sys, _) = resolve_system("dlio", args.get(1));
            let cfg = match args.get(2).map(String::as_str) {
                Some("resnet50") | Some("resnet") => resnet50(),
                Some("cosmoflow") | Some("cosmo") => cosmoflow(),
                _ => die("dlio: workload must be resnet50 or cosmoflow"),
            };
            let nodes: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
            let mut recorder = Recorder::new();
            let r = match &trace {
                Some(_) => run_dlio_traced(sys.as_ref(), &cfg, nodes, &mut recorder),
                None => run_dlio(sys.as_ref(), &cfg, nodes),
            };
            println!(
                "{} on {} @ {} nodes:\n  io {:.2}s/node (overlap {:.2}s, stall {:.3}s)  compute {:.2}s\n  app {:.1} samples/s   system {:.1} samples/s",
                r.workload,
                r.system,
                nodes,
                r.mean_per_node.io_total,
                r.mean_per_node.overlapping_io,
                r.mean_per_node.non_overlapping_io,
                r.mean_per_node.compute_total,
                r.app_throughput,
                r.system_throughput
            );
            if let Some(path) = &trace {
                dump_trace(&recorder, path);
            }
        }
        "explain" => {
            let (sys, full_ppn) = resolve_system("explain", args.get(1));
            let w = args
                .get(2)
                .and_then(|s| workload(s))
                .unwrap_or_else(|| die("explain: unknown workload"));
            let nodes: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
            let ppn: u32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(full_ppn);
            let cfg = IorConfig::paper_scalability(w, nodes, ppn);
            let out = hcs_core::runner::run_phase(sys.as_ref(), nodes, ppn, &cfg.phase());
            println!(
                "{} — {} @ {} nodes x {} ppn: {:.2} GB/s\n",
                sys.description(),
                w.label(),
                nodes,
                ppn,
                out.agg_bandwidth / 1e9
            );
            println!(
                "{:<20} {:>14} {:>14} {:>8}",
                "resource", "allocated", "capacity", "util"
            );
            let mut rows = out.utilization.clone();
            rows.sort_by(|a, b| {
                (b.1 / b.2.max(1e-12))
                    .partial_cmp(&(a.1 / a.2.max(1e-12)))
                    .expect("finite")
            });
            for (name, alloc, cap) in rows.iter().take(12) {
                println!(
                    "{:<20} {:>11.2} GB {:>11.2} GB {:>7.1}%",
                    name,
                    alloc / 1e9,
                    cap / 1e9,
                    alloc / cap.max(1e-12) * 100.0
                );
            }
            match &out.bottleneck {
                Some(b) => println!("\nbottleneck: {b}"),
                None => println!("\nbottleneck: none (per-stream latency-bound)"),
            }
        }
        "mdtest" => {
            let (sys, full_ppn) = resolve_system("mdtest", args.get(1));
            let nodes: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
            let ppn: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(full_ppn);
            let r = run_mdtest(sys.as_ref(), &MdtestConfig::new(nodes, ppn));
            println!("{} @ {} nodes x {} ppn:", r.system, nodes, ppn);
            for op in MetaOp::all() {
                println!("  {:<8} {:>12.0} ops/s", op.label(), r.rate(op).mean);
            }
        }
        "replay" => {
            let path = args
                .get(1)
                .unwrap_or_else(|| die("replay: missing trace path"));
            let (sys, _) = resolve_system("replay", args.get(2));
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("replay: cannot read {path}: {e}")));
            let tracer = hcs_dftrace::chrome::from_json(&json)
                .unwrap_or_else(|e| die(&format!("replay: bad trace: {e}")));
            let r = replay(&tracer, sys.as_ref(), &ReplayConfig::default());
            println!(
                "replayed {} events against {}:\n  io {:.3}s/process (stall {:.4}s), wall {:.2}s",
                tracer.len(),
                r.system,
                r.mean.io_total,
                r.mean.non_overlapping_io,
                r.duration
            );
        }
        "run" => {
            let target = args
                .get(1)
                .unwrap_or_else(|| die("run: missing scenario file or deck name"));
            let mut deck = load_deck(target, scale);
            if scale == Scale::Smoke {
                deck = deck.smoked();
            }
            if let Err(e) = hcs_experiments::validate_deck(&deck) {
                die(&format!("run: {e}"));
            }
            if provenance {
                if !metrics {
                    die("run: --provenance rides the metrics pipeline; add --metrics");
                }
                if let Err(e) = hcs_experiments::validate_provenance(&deck) {
                    die(&format!("run: {e}"));
                }
            }
            println!(
                "deck {} — {} ({} points, {} scale)",
                deck.name,
                if deck.title.is_empty() {
                    "untitled"
                } else {
                    &deck.title
                },
                deck.expand().len(),
                scale.label()
            );
            let mut recorder = Recorder::new();
            let result = match (&trace, metrics, provenance) {
                (Some(_), _, true) => {
                    hcs_experiments::run_deck_traced_with_provenance(&deck, &mut recorder)
                }
                (Some(_), true, false) => {
                    hcs_experiments::run_deck_traced_with_metrics(&deck, &mut recorder)
                }
                (Some(_), false, false) => hcs_experiments::run_deck_traced(&deck, &mut recorder),
                (None, _, true) => hcs_experiments::run_deck_with_provenance(&deck),
                (None, true, false) => hcs_experiments::run_deck_with_metrics(&deck),
                (None, false, false) => hcs_experiments::run_deck(&deck),
            };
            for p in &result.points {
                println!(
                    "  {:<28} {:<8} {:>4} x {:<3} {}",
                    p.scenario.name,
                    p.system,
                    p.nodes,
                    p.ppn,
                    p.outcome.headline()
                );
            }
            let dir = std::path::PathBuf::from("results/decks");
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| die(&format!("run: cannot create {}: {e}", dir.display())));
            let out = dir.join(format!("{}.json", result.name));
            let json = serde_json::to_string_pretty(&result)
                .unwrap_or_else(|e| die(&format!("run: cannot serialize results: {e}")));
            std::fs::write(&out, json)
                .unwrap_or_else(|e| die(&format!("run: cannot write {}: {e}", out.display())));
            println!("[wrote {}]", out.display());
            if metrics {
                println!(
                    "[metrics collected — render with `hcs report {}`]",
                    out.display()
                );
            }
            if let Some(path) = &trace {
                dump_trace(&recorder, path);
            }
        }
        "chaos" => {
            let target = args
                .get(1)
                .unwrap_or_else(|| die("chaos: missing campaign file, deck file or deck name"));
            let mut campaign = load_campaign(target, scale);
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--seed" => {
                        campaign.seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--seed: missing or bad value"));
                    }
                    "--population" => {
                        campaign.population = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| die("--population: missing or bad value"));
                    }
                    "--budget" => {
                        let spec = it.next().unwrap_or_else(|| die("--budget: missing value"));
                        apply_budget_overrides(&mut campaign.budget, spec);
                    }
                    other => die(&format!("chaos: unknown argument '{other}'")),
                }
            }
            if scale == Scale::Smoke {
                campaign.base = campaign.base.smoked();
            }
            println!(
                "chaos campaign {} — {} points x {} timelines, seed {} ({} scale)",
                campaign.name,
                campaign.base.expand().len(),
                campaign.population,
                campaign.seed,
                scale.label()
            );
            let report = hcs_experiments::run_chaos_campaign(&campaign)
                .unwrap_or_else(|e| die(&format!("chaos: {e}")));
            for stat in &report.invariants {
                println!(
                    "  {:<40} {:>5}/{:<5} {}",
                    stat.invariant.label(),
                    stat.passed,
                    stat.checked,
                    if stat.passed == stat.checked {
                        "ok"
                    } else {
                        "VIOLATED"
                    }
                );
            }
            println!(
                "  pareto frontier: {} point{} · worst slowdown {:.2}x · most fragile stage: {}",
                report.pareto.len(),
                if report.pareto.len() == 1 { "" } else { "s" },
                report.max_slowdown,
                report
                    .fragility
                    .first()
                    .map(|r| r.stage.label())
                    .unwrap_or("n/a"),
            );
            let dir = std::path::PathBuf::from("results/chaos");
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| die(&format!("chaos: cannot create {}: {e}", dir.display())));
            let out = dir.join(format!("{}.json", report.campaign));
            let json = serde_json::to_string_pretty(&report)
                .unwrap_or_else(|e| die(&format!("chaos: cannot serialize report: {e}")));
            std::fs::write(&out, json)
                .unwrap_or_else(|e| die(&format!("chaos: cannot write {}: {e}", out.display())));
            println!("[wrote {}]", out.display());
            if !report.violations.is_empty() {
                eprintln!(
                    "chaos: {} invariant violation(s) — see the counterexamples in {}",
                    report.violations.len(),
                    out.display()
                );
                std::process::exit(1);
            }
        }
        "report" => {
            let path = args
                .get(1)
                .unwrap_or_else(|| die("report: missing deck result path (from `hcs run`)"));
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("report: cannot read {path}: {e}")));
            let result: hcs_experiments::DeckResult = match serde_json::from_str(&json) {
                Ok(result) => result,
                // Not a deck result — try the chaos-report shape
                // before giving up, so `hcs report` fronts both
                // artifact kinds.
                Err(deck_err) => match serde_json::from_str::<hcs_core::ChaosReport>(&json) {
                    Ok(chaos) => {
                        match format.as_str() {
                            "json" => println!("{json}"),
                            _ => print!("{}", hcs_experiments::render_chaos_markdown(&chaos)),
                        }
                        return;
                    }
                    Err(chaos_err) => die(&format!(
                        "report: {path} is neither a deck result ({deck_err}) \
                         nor a chaos report ({chaos_err})"
                    )),
                },
            };
            match format.as_str() {
                "json" => {
                    let out =
                        serde_json::to_string_pretty(&hcs_experiments::to_report_json(&result))
                            .unwrap_or_else(|e| die(&format!("report: cannot serialize: {e}")));
                    println!("{out}");
                }
                _ => print!("{}", hcs_experiments::render_markdown(&result)),
            }
        }
        "decks" => {
            let decks = hcs_experiments::figures::all_decks(scale);
            let export = args.iter().position(|a| a == "--export").map(|i| {
                args.get(i + 1)
                    .unwrap_or_else(|| die("decks: --export needs a directory"))
                    .clone()
            });
            for d in &decks {
                println!("{:<22} {:>3} points  {}", d.name, d.expand().len(), d.title);
            }
            if let Some(dir) = export {
                let dir = std::path::PathBuf::from(dir);
                std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
                    die(&format!("decks: cannot create {}: {e}", dir.display()))
                });
                for d in &decks {
                    let path = dir.join(format!("{}.json", d.name));
                    let json = serde_json::to_string_pretty(d).unwrap_or_else(|e| {
                        die(&format!("decks: cannot serialize {}: {e}", d.name))
                    });
                    std::fs::write(&path, json).unwrap_or_else(|e| {
                        die(&format!("decks: cannot write {}: {e}", path.display()))
                    });
                }
                println!("[exported {} decks to {}]", decks.len(), dir.display());
            }
        }
        "figures" => {
            let figs = hcs_experiments::figures::all_figures(scale);
            for f in &figs {
                println!("{}", hcs_experiments::render::to_table(f));
            }
            let dir = std::path::PathBuf::from("results");
            if let Ok(n) = hcs_experiments::output::write_figures(&figs, &dir) {
                println!("[wrote {n} figures to {}]", dir.display());
            }
        }
        "takeaways" => {
            let r = hcs_experiments::figures::takeaways::measure(scale);
            print!("{}", hcs_experiments::figures::takeaways::render(&r));
        }
        "" | "help" | "--help" | "-h" => println!("{USAGE}"),
        other => die(&format!("unknown command '{other}'")),
    }
}
