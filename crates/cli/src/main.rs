//! The `hcs` command: one front door for the suite.
//!
//! ```text
//! hcs systems                               list deployments
//! hcs ior   <system> <workload> [nodes] [ppn]   run IOR
//! hcs dlio  <system> <resnet50|cosmoflow> [nodes]   run DLIO
//! hcs mdtest <system> [nodes] [ppn]         run the metadata benchmark
//! hcs replay <trace.json> <system>          what-if replay of a trace
//! hcs figures [--smoke]                     regenerate every figure
//! hcs takeaways [--smoke]                   §VII paper-vs-measured
//! ```

use hcs_core::telemetry::Recorder;
use hcs_core::StorageSystem;
use hcs_dlio::{cosmoflow, resnet50, run_dlio, run_dlio_traced};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, run_ior_traced, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_mdtest::{run_mdtest, MdtestConfig, MetaOp};
use hcs_nvme::LocalNvmeConfig;
use hcs_replay::{replay, ReplayConfig};
use hcs_unifyfs::UnifyFsConfig;
use hcs_vast::{vast_on_lassen, vast_on_quartz, vast_on_ruby, vast_on_wombat};

const USAGE: &str = "\
usage: hcs <command> [args]

commands:
  systems                                list storage deployments
  ior <system> <workload> [nodes] [ppn] [--smoke]  run the IOR-equivalent benchmark
  dlio <system> <workload> [nodes]       run the DLIO-equivalent (resnet50|cosmoflow)
  mdtest <system> [nodes] [ppn]          run the MDTest-equivalent
  explain <system> <workload> [nodes] [ppn]  show resources, utilization and the bottleneck
  replay <trace.json> <system>           what-if replay of a chrome trace
  figures [--smoke]                      regenerate every paper figure
  takeaways [--smoke]                    print §VII paper-vs-measured
  table1                                 print Table I

systems: vast-lassen vast-ruby vast-quartz vast-wombat gpfs lustre-ruby
         lustre-quartz nvme unifyfs
workloads (ior): scientific | analytics | ml

options:
  --trace <path>   (ior, dlio) dump a Chrome trace of the run — flows,
                   per-resource utilization, bottleneck hand-offs — and
                   print the telemetry summary";

/// Resolves a system name to a deployment and its machine's full-node
/// process count.
fn system(name: &str) -> Option<(Box<dyn StorageSystem>, u32)> {
    Some(match name {
        "vast-lassen" => (Box::new(vast_on_lassen()) as Box<dyn StorageSystem>, 44),
        "vast-ruby" => (Box::new(vast_on_ruby()), 56),
        "vast-quartz" => (Box::new(vast_on_quartz()), 36),
        "vast-wombat" => (Box::new(vast_on_wombat()), 48),
        "gpfs" => (Box::new(GpfsConfig::on_lassen()), 44),
        "lustre-ruby" => (Box::new(LustreConfig::on_ruby()), 56),
        "lustre-quartz" => (Box::new(LustreConfig::on_quartz()), 36),
        "nvme" => (Box::new(LocalNvmeConfig::on_wombat()), 48),
        "unifyfs" => (Box::new(UnifyFsConfig::on_wombat()), 48),
        _ => return None,
    })
}

fn all_system_names() -> [&'static str; 9] {
    [
        "vast-lassen",
        "vast-ruby",
        "vast-quartz",
        "vast-wombat",
        "gpfs",
        "lustre-ruby",
        "lustre-quartz",
        "nvme",
        "unifyfs",
    ]
}

fn workload(name: &str) -> Option<WorkloadClass> {
    Some(match name {
        "scientific" | "sci" | "write" => WorkloadClass::Scientific,
        "analytics" | "da" | "read" => WorkloadClass::DataAnalytics,
        "ml" | "random" => WorkloadClass::MachineLearning,
        _ => return None,
    })
}

fn scale_flag(args: &[String]) -> hcs_experiments::Scale {
    if args.iter().any(|a| a == "--smoke") {
        hcs_experiments::Scale::Smoke
    } else {
        hcs_experiments::Scale::Paper
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}\n\n{USAGE}");
    std::process::exit(2)
}

/// Splits `--trace <path>` out of the arg list, returning the
/// remaining positional args and the path (if given).
fn trace_flag(args: &[String]) -> (Vec<String>, Option<String>) {
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            match it.next() {
                Some(p) => path = Some(p.clone()),
                None => die("--trace: missing path"),
            }
        } else {
            rest.push(a.clone());
        }
    }
    (rest, path)
}

/// Writes the recorder's Chrome trace to `path` and prints the metrics
/// summary (busy fractions, time-weighted bottleneck attribution).
fn dump_trace(recorder: &Recorder, path: &str) {
    let json = recorder.to_chrome_json();
    std::fs::write(path, &json)
        .unwrap_or_else(|e| die(&format!("--trace: cannot write {path}: {e}")));
    let m = recorder.metrics_summary();
    println!(
        "\n[trace] {} events over {:.2}s -> {path}",
        recorder.tracer().len(),
        m.span
    );
    for r in m.resources.iter().filter(|r| r.busy_seconds > 0.0) {
        println!(
            "  {:<24} busy {:>5.1}%  mean util {:>5.1}%",
            r.name,
            r.busy_fraction * 100.0,
            r.mean_utilization * 100.0
        );
    }
    for b in &m.bottlenecks {
        let stage = b.kind.map(|k| k.label()).unwrap_or("?");
        println!(
            "  bottleneck {:<13} {:<24} {:>6.2}s ({:>4.1}%)",
            stage,
            b.name,
            b.seconds,
            b.share * 100.0
        );
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, trace) = trace_flag(&raw);
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "systems" => {
            for name in all_system_names() {
                let (sys, ppn) = system(name).expect("listed name resolves");
                println!(
                    "{name:<16} {:<56} (full node: {ppn} ppn)",
                    sys.description()
                );
            }
        }
        "table1" => print!("{}", hcs_experiments::figures::table1::render()),
        "ior" => {
            let (sys, full_ppn) = args
                .get(1)
                .and_then(|s| system(s))
                .unwrap_or_else(|| die("ior: unknown system"));
            let w = args
                .get(2)
                .and_then(|s| workload(s))
                .unwrap_or_else(|| die("ior: unknown workload"));
            let nodes: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
            let ppn: u32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(full_ppn);
            let cfg = if args.iter().any(|a| a == "--smoke") {
                IorConfig::smoke(w, nodes, ppn)
            } else {
                IorConfig::paper_scalability(w, nodes, ppn)
            };
            let mut recorder = Recorder::new();
            let rep = match &trace {
                Some(_) => run_ior_traced(sys.as_ref(), &cfg, &mut recorder),
                None => run_ior(sys.as_ref(), &cfg),
            };
            println!(
                "{} — {} @ {} nodes x {} ppn:\n  {:.2} GB/s aggregate ({:.2} GB/s per node, ±{:.2} over {} reps)",
                rep.system,
                w.label(),
                nodes,
                ppn,
                rep.mean_bandwidth() / 1e9,
                rep.per_node_bandwidth() / 1e9,
                rep.outcome.summary.std_dev / 1e9,
                cfg.reps
            );
            if let Some(path) = &trace {
                dump_trace(&recorder, path);
            }
        }
        "dlio" => {
            let (sys, _) = args
                .get(1)
                .and_then(|s| system(s))
                .unwrap_or_else(|| die("dlio: unknown system"));
            let cfg = match args.get(2).map(String::as_str) {
                Some("resnet50") | Some("resnet") => resnet50(),
                Some("cosmoflow") | Some("cosmo") => cosmoflow(),
                _ => die("dlio: workload must be resnet50 or cosmoflow"),
            };
            let nodes: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
            let mut recorder = Recorder::new();
            let r = match &trace {
                Some(_) => run_dlio_traced(sys.as_ref(), &cfg, nodes, &mut recorder),
                None => run_dlio(sys.as_ref(), &cfg, nodes),
            };
            println!(
                "{} on {} @ {} nodes:\n  io {:.2}s/node (overlap {:.2}s, stall {:.3}s)  compute {:.2}s\n  app {:.1} samples/s   system {:.1} samples/s",
                r.workload,
                r.system,
                nodes,
                r.mean_per_node.io_total,
                r.mean_per_node.overlapping_io,
                r.mean_per_node.non_overlapping_io,
                r.mean_per_node.compute_total,
                r.app_throughput,
                r.system_throughput
            );
            if let Some(path) = &trace {
                dump_trace(&recorder, path);
            }
        }
        "explain" => {
            let (sys, full_ppn) = args
                .get(1)
                .and_then(|s| system(s))
                .unwrap_or_else(|| die("explain: unknown system"));
            let w = args
                .get(2)
                .and_then(|s| workload(s))
                .unwrap_or_else(|| die("explain: unknown workload"));
            let nodes: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
            let ppn: u32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(full_ppn);
            let cfg = IorConfig::paper_scalability(w, nodes, ppn);
            let out = hcs_core::runner::run_phase(sys.as_ref(), nodes, ppn, &cfg.phase());
            println!(
                "{} — {} @ {} nodes x {} ppn: {:.2} GB/s\n",
                sys.description(),
                w.label(),
                nodes,
                ppn,
                out.agg_bandwidth / 1e9
            );
            println!(
                "{:<20} {:>14} {:>14} {:>8}",
                "resource", "allocated", "capacity", "util"
            );
            let mut rows = out.utilization.clone();
            rows.sort_by(|a, b| {
                (b.1 / b.2.max(1e-12))
                    .partial_cmp(&(a.1 / a.2.max(1e-12)))
                    .expect("finite")
            });
            for (name, alloc, cap) in rows.iter().take(12) {
                println!(
                    "{:<20} {:>11.2} GB {:>11.2} GB {:>7.1}%",
                    name,
                    alloc / 1e9,
                    cap / 1e9,
                    alloc / cap.max(1e-12) * 100.0
                );
            }
            match &out.bottleneck {
                Some(b) => println!("\nbottleneck: {b}"),
                None => println!("\nbottleneck: none (per-stream latency-bound)"),
            }
        }
        "mdtest" => {
            let (sys, full_ppn) = args
                .get(1)
                .and_then(|s| system(s))
                .unwrap_or_else(|| die("mdtest: unknown system"));
            let nodes: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
            let ppn: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(full_ppn);
            let r = run_mdtest(sys.as_ref(), &MdtestConfig::new(nodes, ppn));
            println!("{} @ {} nodes x {} ppn:", r.system, nodes, ppn);
            for op in MetaOp::all() {
                println!("  {:<8} {:>12.0} ops/s", op.label(), r.rate(op).mean);
            }
        }
        "replay" => {
            let path = args
                .get(1)
                .unwrap_or_else(|| die("replay: missing trace path"));
            let (sys, _) = args
                .get(2)
                .and_then(|s| system(s))
                .unwrap_or_else(|| die("replay: unknown system"));
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("replay: cannot read {path}: {e}")));
            let tracer = hcs_dftrace::chrome::from_json(&json)
                .unwrap_or_else(|e| die(&format!("replay: bad trace: {e}")));
            let r = replay(&tracer, sys.as_ref(), &ReplayConfig::default());
            println!(
                "replayed {} events against {}:\n  io {:.3}s/process (stall {:.4}s), wall {:.2}s",
                tracer.len(),
                r.system,
                r.mean.io_total,
                r.mean.non_overlapping_io,
                r.duration
            );
        }
        "figures" => {
            let scale = scale_flag(&args);
            let figs = hcs_experiments::figures::all_figures(scale);
            for f in &figs {
                println!("{}", hcs_experiments::render::to_table(f));
            }
            let dir = std::path::PathBuf::from("results");
            if let Ok(n) = hcs_experiments::output::write_figures(&figs, &dir) {
                println!("[wrote {n} figures to {}]", dir.display());
            }
        }
        "takeaways" => {
            let scale = scale_flag(&args);
            let r = hcs_experiments::figures::takeaways::measure(scale);
            print!("{}", hcs_experiments::figures::takeaways::render(&r));
        }
        "" | "help" | "--help" | "-h" => println!("{USAGE}"),
        other => die(&format!("unknown command '{other}'")),
    }
}
