//! CSV / JSON output of figure data.

use std::fs;
use std::io;
use std::path::Path;

use crate::series::Figure;

/// Serializes a figure to CSV: `series,x,y,y_std` rows.
pub fn to_csv(fig: &Figure) -> String {
    let mut out = String::from("series,x,y,y_std\n");
    for s in &fig.series {
        for p in &s.points {
            out.push_str(&format!("{},{},{},{}\n", s.label, p.x, p.y, p.y_std));
        }
    }
    out
}

/// Writes a figure as `<id>.csv`, `<id>.json` and `<id>.svg` under
/// `dir`, creating the directory if needed.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_figure(fig: &Figure, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.csv", fig.id)), to_csv(fig))?;
    fs::write(
        dir.join(format!("{}.json", fig.id)),
        serde_json::to_string_pretty(fig).expect("figure serialization cannot fail"),
    )?;
    crate::svg::write_svg(fig, dir)?;
    Ok(())
}

/// Writes a batch of figures and returns how many were written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_figures(figs: &[Figure], dir: &Path) -> io::Result<usize> {
    for f in figs {
        write_figure(f, dir)?;
    }
    Ok(figs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Figure, Series};

    #[test]
    fn csv_shape() {
        let f = Figure::new("t", "t", "x", "y")
            .with_series(Series::from_xy("a", [(1.0, 2.0), (2.0, 3.0)]));
        let csv = to_csv(&f);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,y,y_std");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "a,1,2,0");
    }

    #[test]
    fn write_and_reload() {
        let dir = std::env::temp_dir().join("hcs-output-test");
        let f =
            Figure::new("roundtrip", "t", "x", "y").with_series(Series::from_xy("a", [(1.0, 2.0)]));
        write_figure(&f, &dir).unwrap();
        let json = std::fs::read_to_string(dir.join("roundtrip.json")).unwrap();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        std::fs::remove_dir_all(&dir).ok();
    }
}
