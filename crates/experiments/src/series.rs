//! Figure data containers.

use serde::{Deserialize, Serialize};

/// One measured point of a series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// The x coordinate (node count, process count...).
    pub x: f64,
    /// Mean of the measured quantity across repetitions.
    pub y: f64,
    /// Standard deviation across repetitions (0 for single runs).
    pub y_std: f64,
}

impl Point {
    /// A noise-free point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y, y_std: 0.0 }
    }
}

/// One line of a figure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label ("VAST", "GPFS", "VAST non-overlapping I/O"...).
    pub label: String,
    /// Points, ascending in x.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates a series from `(x, y)` pairs.
    pub fn from_xy(label: impl Into<String>, xy: impl IntoIterator<Item = (f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points: xy.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
        }
    }

    /// The y values.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.y).collect()
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }

    /// Largest y.
    pub fn y_max(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.y)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// One figure (or one panel of a multi-panel figure).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Stable identifier ("fig2a.scientific", "fig5b", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Finds a series by label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let s = Series::from_xy("a", [(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_max(), 20.0);
        assert_eq!(s.ys(), vec![10.0, 20.0]);
    }

    #[test]
    fn figure_builder() {
        let f = Figure::new("f", "t", "x", "y")
            .with_series(Series::from_xy("a", [(1.0, 1.0)]))
            .with_series(Series::from_xy("b", [(1.0, 2.0)]));
        assert_eq!(f.series.len(), 2);
        assert!(f.series_named("b").is_some());
        assert!(f.series_named("c").is_none());
    }
}
