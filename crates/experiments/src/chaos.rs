//! The chaos-campaign population executor: fans a [`ChaosCampaign`]'s
//! seeded fault timelines over the rayon sweep pool, evaluates every
//! metamorphic invariant against each point's fault-free twin, shrinks
//! any counterexample, and assembles the [`ChaosReport`].
//!
//! Determinism contract: every timeline derives from the campaign seed,
//! the point name and the timeline index; every engine run seeds its
//! noise from its config alone (common random numbers); and aggregation
//! preserves the (expansion × population) task order that
//! [`parallel_sweep`] guarantees — so the report is byte-identical
//! across reruns and worker counts.

use hcs_core::chaos::{
    evaluate_run, generate_timeline, has_jitter, has_same_stage_overlap, shrink_timeline,
    timeline_cost, ChaosCampaign, ChaosInvariant, ChaosReport, ChaosRunRecord, ChaosViolation,
};
use hcs_core::runner::{run_phase, run_phase_chaos, ChaosPhaseRun, FaultPhaseError};
use hcs_core::{FaultSpec, PhaseOutcome, PhaseSpec, Scenario, StageKind, Workload};

use crate::deck::{build_system, validate_deck};
use crate::sweep::parallel_sweep;

/// One expanded deck point prepared for fuzzing: its resolved run
/// shape, the stage kinds its deployment plan actually contains, the
/// fault-free twin outcome and the budget fitted to the twin's runtime.
struct PointCtx {
    scenario: Scenario,
    phase: PhaseSpec,
    nodes: u32,
    ppn: u32,
    stages: Vec<StageKind>,
    twin: PhaseOutcome,
}

/// The outcome of driving one generated timeline through the engine:
/// either a completed run (plus the optional prefix probe for the
/// monotonicity invariant), or the engine's stall report.
enum TimelineRun {
    Completed {
        run: Box<ChaosPhaseRun>,
        prefix: Option<ChaosPhaseRun>,
    },
    Stalled(String),
}

fn prepare_point(scenario: &Scenario) -> Result<PointCtx, String> {
    if !scenario.faults.is_empty() {
        return Err(format!(
            "chaos campaign point '{}' schedules literal faults; the campaign \
             generates its own timelines — remove the deck's fault axes",
            scenario.name
        ));
    }
    let (system, full_ppn) = build_system(scenario);
    let workload = scenario.resolved_workload(full_ppn);
    let config = match &workload {
        Workload::Ior(c) => c,
        other => {
            return Err(format!(
                "chaos campaign point '{}': fault fuzzing supports the IOR family \
                 only (got {})",
                scenario.name,
                other.kind()
            ))
        }
    };
    let phase = config.phase();
    let nodes = scenario.run_nodes();
    let ppn = scenario.run_ppn(full_ppn);
    let graph = system.plan(nodes, ppn, &phase);
    let mut stages: Vec<StageKind> = Vec::new();
    for stage in &graph.stages {
        if !stages.contains(&stage.kind) {
            stages.push(stage.kind);
        }
    }
    if stages.is_empty() {
        return Err(format!(
            "chaos campaign point '{}': deployment plan has no stages to fault",
            scenario.name
        ));
    }
    let twin = run_phase(system.as_ref(), nodes, ppn, &phase);
    Ok(PointCtx {
        scenario: scenario.clone(),
        phase,
        nodes,
        ppn,
        stages,
        twin,
    })
}

/// Drives one timeline (and, for multi-fault jitter-free timelines, its
/// all-but-last prefix) through the forced fault path. Systems are
/// rebuilt per task: `StorageSystem` boxes aren't shared across the
/// sweep pool, and construction is cheap next to the solve.
fn drive_timeline(ctx: &PointCtx, specs: &[FaultSpec]) -> TimelineRun {
    let (system, _) = build_system(&ctx.scenario);
    let run = match run_phase_chaos(system.as_ref(), ctx.nodes, ctx.ppn, &ctx.phase, specs) {
        Ok(run) => run,
        Err(FaultPhaseError::Stalled { at, starved }) => {
            return TimelineRun::Stalled(format!(
                "network unrecoverably stalled at {at}s (starved: {})",
                starved.join(", ")
            ))
        }
        Err(other) => panic!("chaos timeline failed fault resolution after validation: {other}"),
    };
    // The prefix probe only anchors the monotonicity invariant, which
    // needs a jitter-free, per-stage-disjoint timeline — skip the
    // engine run otherwise.
    let prefix = if specs.len() >= 2 && !has_jitter(specs) && !has_same_stage_overlap(specs) {
        let (system, _) = build_system(&ctx.scenario);
        // A stalling prefix can't anchor the monotonicity check; the
        // full timeline's own invariants still run.
        run_phase_chaos(
            system.as_ref(),
            ctx.nodes,
            ctx.ppn,
            &ctx.phase,
            &specs[..specs.len() - 1],
        )
        .ok()
    } else {
        None
    };
    TimelineRun::Completed {
        run: Box::new(run),
        prefix,
    }
}

/// Re-runs a candidate sub-timeline and reports whether it still
/// violates `invariant` — the oracle the greedy shrinker minimizes
/// against.
fn candidate_violates(ctx: &PointCtx, specs: &[FaultSpec], invariant: ChaosInvariant) -> bool {
    match drive_timeline(ctx, specs) {
        TimelineRun::Completed { run, prefix } => {
            evaluate_run(specs, &run, prefix.as_ref(), &ctx.twin)
                .violations
                .iter()
                .any(|(inv, _)| *inv == invariant)
        }
        TimelineRun::Stalled(_) => invariant == ChaosInvariant::NoUnexplainedStall,
    }
}

/// Runs a full chaos campaign: validates the base deck, prepares every
/// expanded point (plan stages + fault-free twin), executes the seeded
/// timeline population through the rayon sweep pool, evaluates the
/// metamorphic invariants, minimizes any counterexample, and assembles
/// the final [`ChaosReport`].
pub fn run_chaos_campaign(campaign: &ChaosCampaign) -> Result<ChaosReport, String> {
    campaign.check()?;
    validate_deck(&campaign.base)?;
    let points: Vec<PointCtx> = parallel_sweep(campaign.base.expand(), prepare_point)
        .into_iter()
        .collect::<Result<_, _>>()?;

    // The campaign-level budget bounds generation; each point clamps
    // the window horizon to its own twin runtime.
    let tasks: Vec<(usize, u32)> = (0..points.len())
        .flat_map(|p| (0..campaign.population).map(move |k| (p, k)))
        .collect();
    let mut engine_runs = 0usize;
    let records: Vec<ChaosRunRecord> = parallel_sweep(tasks, |&(p, k)| {
        let ctx = &points[p];
        let budget = campaign.budget.fitted(ctx.twin.duration);
        let specs = generate_timeline(&budget, &ctx.stages, campaign.seed, &ctx.scenario.name, k);
        let outcome = drive_timeline(ctx, &specs);
        (p, k, specs, outcome)
    })
    .into_iter()
    .map(|(p, k, specs, outcome)| {
        let ctx = &points[p];
        match outcome {
            TimelineRun::Completed { run, prefix } => {
                engine_runs += 1 + prefix.is_some() as usize;
                let eval = evaluate_run(&specs, &run, prefix.as_ref(), &ctx.twin);
                let violations = eval
                    .violations
                    .into_iter()
                    .map(|(invariant, detail)| ChaosViolation {
                        point: ctx.scenario.name.clone(),
                        timeline: k,
                        invariant,
                        detail,
                        minimized: shrink_timeline(&specs, |cand| {
                            candidate_violates(ctx, cand, invariant)
                        }),
                    })
                    .collect();
                ChaosRunRecord {
                    point: ctx.scenario.name.clone(),
                    timeline: k,
                    duration: run.outcome.duration,
                    slowdown: run.outcome.duration / ctx.twin.duration,
                    stall_seconds: run.report.stall_seconds,
                    cost_seconds: timeline_cost(&specs),
                    checked: eval.checked,
                    violations,
                    specs,
                }
            }
            TimelineRun::Stalled(detail) => {
                engine_runs += 1;
                let minimized = shrink_timeline(&specs, |cand| {
                    candidate_violates(ctx, cand, ChaosInvariant::NoUnexplainedStall)
                });
                ChaosRunRecord {
                    point: ctx.scenario.name.clone(),
                    timeline: k,
                    duration: f64::INFINITY,
                    slowdown: f64::INFINITY,
                    stall_seconds: f64::INFINITY,
                    cost_seconds: timeline_cost(&specs),
                    checked: vec![ChaosInvariant::NoUnexplainedStall],
                    violations: vec![ChaosViolation {
                        point: ctx.scenario.name.clone(),
                        timeline: k,
                        invariant: ChaosInvariant::NoUnexplainedStall,
                        detail,
                        minimized,
                    }],
                    specs,
                }
            }
        }
    })
    .collect();

    Ok(ChaosReport::assemble(
        campaign,
        points.len(),
        engine_runs,
        &records,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::scenario::{Deck, IorConfig, WorkloadClass};

    fn smoke_campaign(system: &str, population: u32) -> ChaosCampaign {
        let scenario = Scenario::new(
            system,
            Workload::Ior(IorConfig::smoke(WorkloadClass::Scientific, 2, 4)),
        );
        let mut campaign =
            ChaosCampaign::new(format!("chaos-{system}"), Deck::single("d", scenario));
        campaign.seed = 7;
        campaign.population = population;
        campaign
    }

    #[test]
    fn campaign_runs_clean_and_deterministically() {
        let campaign = smoke_campaign("vast-lassen", 8);
        let a = run_chaos_campaign(&campaign).unwrap();
        let b = run_chaos_campaign(&campaign).unwrap();
        assert_eq!(a, b);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.timelines, 8);
        assert_eq!(a.points, 1);
        assert!(!a.pareto.is_empty());
        assert!(!a.fragility.is_empty());
        assert!(a.max_slowdown >= 1.0);
        // Every invariant was exercised somewhere in the population.
        for stat in &a.invariants {
            assert_eq!(stat.checked, stat.passed);
        }
    }

    #[test]
    fn campaign_rejects_points_with_literal_faults() {
        let mut campaign = smoke_campaign("vast-lassen", 4);
        campaign.base.base.faults = vec![FaultSpec::outage(StageKind::Gateway, 1.0, 2.0)];
        let err = run_chaos_campaign(&campaign).unwrap_err();
        assert!(err.contains("literal faults"), "{err}");
    }

    #[test]
    fn seed_changes_the_population() {
        let campaign = smoke_campaign("gpfs", 6);
        let mut reseeded = campaign.clone();
        reseeded.seed = campaign.seed + 1;
        let a = run_chaos_campaign(&campaign).unwrap();
        let b = run_chaos_campaign(&reseeded).unwrap();
        let specs_of = |r: &ChaosReport| -> usize { r.pareto.len() + r.fragility.len() };
        // Same shape of report, different draws (overwhelmingly).
        assert_eq!(a.timelines, b.timelines);
        assert!(specs_of(&a) != specs_of(&b) || a.max_slowdown != b.max_slowdown);
    }
}
