//! Distills one deck point's run into [`PointMetrics`] and a whole
//! deck into a [`DeckMetricsSummary`].
//!
//! Collection rides the PR-2 telemetry hooks: the metered executor
//! runs every point into a fresh [`Recorder`] (a pure listener — the
//! outcome stays bit-identical to the un-metered run, which
//! `tests/report_golden.rs` pins) and this module converts what the
//! recorder saw — plus each family's own result — into the common
//! observability currency: an `IoDecomposition`, perceived vs. system
//! throughput, bottleneck shares, solver counters and cross-rep
//! spread.
//!
//! Decomposition fidelity follows the paper's method per family:
//! DLIO and replay results carry exact interval-arithmetic
//! decompositions (`hcs-dftrace::decompose`); IOR, MDTest and job
//! campaigns are accounted at phase level (an IOR run *is* one I/O
//! phase; a job's steps partition its wall time).

use hcs_core::metrics::{
    DeckMetricsSummary, KneeVerdict, LatencyHistogram, PointMetrics, ProvenanceMetrics, Stats,
    SystemMetrics,
};
use hcs_core::{Arrival, IoOp, JobStep, Recorder, Workload};
use hcs_dftrace::{EventCategory, IoDecomposition};
use hcs_simkit::Summary;

use crate::deck::{DeckResult, WorkloadOutcome};

/// Seconds a metadata phase took: total ops at the measured mean rate.
fn op_phase_seconds(total_ops: f64, rate: &Summary) -> f64 {
    if rate.mean > 0.0 {
        total_ops / rate.mean
    } else {
        0.0
    }
}

/// Builds the metrics bundle for one executed point from its workload,
/// outcome and the (per-point) recorder that listened to the run.
/// `wall_clock_seconds` is left at 0 — the executor stamps it.
pub(crate) fn collect_point_metrics(
    workload: &Workload,
    outcome: &WorkloadOutcome,
    recorder: &Recorder,
    nodes: u32,
    ppn: u32,
) -> PointMetrics {
    struct Parts {
        decomposition: IoDecomposition,
        read_seconds: f64,
        write_seconds: f64,
        perceived_throughput: f64,
        system_throughput: f64,
        throughput_unit: &'static str,
        headline_value: f64,
        headline_unit: &'static str,
        higher_is_better: bool,
        rep_values: Stats,
        rep_cv: f64,
    }

    let parts = match (workload, outcome) {
        (Workload::Ior(c), WorkloadOutcome::Ior(r)) => {
            // One pure-I/O phase: the recorder clock is the noise-free
            // base run's wall time (metadata cost included).
            let span = recorder.clock();
            let bytes = c.total_bytes();
            let bw = if span > 0.0 { bytes / span } else { 0.0 };
            let (read, write) = match c.phase().op {
                IoOp::Read => (span, 0.0),
                IoOp::Write => (0.0, span),
            };
            let rep_values = Stats::from_values(r.outcome.bandwidths.clone());
            let rep_cv = rep_values.cv();
            Parts {
                decomposition: IoDecomposition {
                    total_runtime: span,
                    io_total: span,
                    compute_total: 0.0,
                    overlapping_io: 0.0,
                    non_overlapping_io: span,
                },
                read_seconds: read,
                write_seconds: write,
                perceived_throughput: bw,
                system_throughput: bw,
                throughput_unit: "B/s",
                headline_value: r.outcome.summary.mean,
                headline_unit: "B/s",
                higher_is_better: true,
                rep_values,
                rep_cv,
            }
        }
        (Workload::Dlio(_), WorkloadOutcome::Dlio(r)) => Parts {
            decomposition: r.mean_per_node.clone(),
            read_seconds: r.mean_per_node.io_total,
            write_seconds: r.checkpoint_io,
            perceived_throughput: r.app_throughput,
            system_throughput: r.system_throughput,
            throughput_unit: "samples/s",
            headline_value: r.app_throughput,
            headline_unit: "samples/s",
            higher_is_better: true,
            rep_values: Stats::from_values(vec![r.app_throughput]),
            rep_cv: 0.0,
        },
        (Workload::Mdtest(c), WorkloadOutcome::Mdtest(r)) => {
            // Phase-level accounting: each op storm performs
            // `total_ops` operations at its measured mean rate.
            let total = c.total_ops();
            let create = op_phase_seconds(total, &r.create);
            let stat = op_phase_seconds(total, &r.stat);
            let unlink = op_phase_seconds(total, &r.unlink);
            let io = create + stat + unlink;
            let rate = if io > 0.0 { 3.0 * total / io } else { 0.0 };
            let rep_cv = if r.create.mean > 0.0 {
                r.create.std_dev / r.create.mean
            } else {
                0.0
            };
            Parts {
                decomposition: IoDecomposition {
                    total_runtime: io,
                    io_total: io,
                    compute_total: 0.0,
                    overlapping_io: 0.0,
                    non_overlapping_io: io,
                },
                read_seconds: stat,
                write_seconds: create + unlink,
                perceived_throughput: rate,
                system_throughput: rate,
                throughput_unit: "ops/s",
                headline_value: r.create.mean,
                headline_unit: "ops/s",
                higher_is_better: true,
                rep_values: Stats::from_values(vec![r.create.mean]),
                rep_cv,
            }
        }
        (Workload::Job(j), WorkloadOutcome::Job(r)) => {
            // Steps partition the job's wall time serially; `per_step`
            // aligns 1:1 with the script's steps, so the read/write
            // split follows each I/O step's direction.
            let mut read = 0.0;
            let mut write = 0.0;
            let mut bytes = 0.0;
            for (step, (_, dur)) in j.steps.iter().zip(&r.per_step) {
                if let JobStep::Io { phase, .. } = step {
                    bytes += phase.total_bytes(nodes, ppn);
                    match phase.op {
                        IoOp::Read => read += dur,
                        IoOp::Write => write += dur,
                    }
                }
            }
            Parts {
                decomposition: IoDecomposition {
                    total_runtime: r.total,
                    io_total: r.io,
                    compute_total: r.compute,
                    overlapping_io: 0.0,
                    non_overlapping_io: r.io,
                },
                read_seconds: read,
                write_seconds: write,
                perceived_throughput: if r.total > 0.0 { bytes / r.total } else { 0.0 },
                system_throughput: if r.io > 0.0 { bytes / r.io } else { 0.0 },
                throughput_unit: "B/s",
                headline_value: r.total,
                headline_unit: "s",
                higher_is_better: false,
                rep_values: Stats::from_values(vec![r.total]),
                rep_cv: 0.0,
            }
        }
        (Workload::Replay(_), WorkloadOutcome::Replay(r)) => {
            // Exact decomposition from the replayed trace; samples are
            // replayed read events, evenly attributed per process.
            let procs = r.per_process.len().max(1) as f64;
            let samples = r.tracer.by_category(&EventCategory::Read).count() as f64 / procs;
            Parts {
                decomposition: r.mean.clone(),
                read_seconds: r.mean.io_total,
                write_seconds: 0.0,
                perceived_throughput: r.mean.app_throughput(samples),
                system_throughput: r.mean.system_throughput(samples),
                throughput_unit: "samples/s",
                headline_value: r.duration,
                headline_unit: "s",
                higher_is_better: false,
                rep_values: Stats::from_values(vec![r.duration]),
                rep_cv: 0.0,
            }
        }
        _ => unreachable!("workload and outcome families always match"),
    };

    PointMetrics {
        decomposition: parts.decomposition,
        read_seconds: parts.read_seconds,
        write_seconds: parts.write_seconds,
        perceived_throughput: parts.perceived_throughput,
        system_throughput: parts.system_throughput,
        throughput_unit: parts.throughput_unit.to_string(),
        headline_value: parts.headline_value,
        headline_unit: parts.headline_unit.to_string(),
        higher_is_better: parts.higher_is_better,
        rep_values: parts.rep_values,
        rep_cv: parts.rep_cv,
        bottlenecks: recorder.metrics_summary().bottlenecks,
        solver_epochs: recorder.solver_epochs(),
        flow_groups: recorder.flow_groups(),
        wall_clock_seconds: 0.0,
        resilience: None,
        latency: Vec::new(),
        provenance: None,
    }
}

/// The p99 multiple over the low-load baseline that declares
/// saturation: the knee is the first offered-load point whose merged
/// p99 exceeds this factor times the first (lowest-rate) point's p99.
const KNEE_THRESHOLD: f64 = 2.0;

/// Extracts one throughput–latency knee verdict per system from an
/// offered-load sweep: within each `by_system` group (sweep order), the
/// first open-loop point is the baseline and the knee is the first
/// point whose merged p99 exceeds [`KNEE_THRESHOLD`]× the baseline p99.
/// Systems that never cross report `knee_rate: None` (no knee within
/// the swept range). Closed-loop points carry no latency and are
/// skipped, so fault-free closed decks produce no verdicts at all.
fn knee_verdicts(result: &DeckResult) -> Vec<KneeVerdict> {
    struct SeriesPoint {
        rate: f64,
        p99: f64,
        name: String,
        provenance: Option<ProvenanceMetrics>,
    }
    let mut knees = Vec::new();
    for (label, points) in result.by_system() {
        let mut series: Vec<SeriesPoint> = Vec::new();
        for p in &points {
            let Some(m) = &p.metrics else { continue };
            let Arrival::Open { rate, .. } = &p.scenario.arrival else {
                continue;
            };
            let mut merged = LatencyHistogram::new();
            for row in &m.latency {
                merged.merge(&row.histogram);
            }
            if let Some(p99) = merged.p99() {
                series.push(SeriesPoint {
                    rate: *rate,
                    p99,
                    name: p.scenario.name.clone(),
                    provenance: m.provenance.clone(),
                });
            }
        }
        let Some(first) = series.first() else {
            continue;
        };
        let (baseline_rate, baseline_p99) = (first.rate, first.p99);
        let knee = series
            .iter()
            .find(|pt| pt.p99 > KNEE_THRESHOLD * baseline_p99);
        knees.push(KneeVerdict {
            system: label.clone(),
            threshold: KNEE_THRESHOLD,
            baseline_p99,
            baseline_rate,
            knee_rate: knee.map(|pt| pt.rate),
            knee_point: knee.map(|pt| pt.name.clone()),
            knee_p99: knee.map(|pt| pt.p99),
            knee_blame: knee
                .and_then(|pt| knee_blame(series[0].provenance.as_ref(), pt.provenance.as_ref())),
        });
    }
    knees
}

/// Per-stage blame as a share of total measured latency — the
/// dimensionless currency in which blame growth is compared across
/// offered-load points.
fn blame_shares(prov: &ProvenanceMetrics) -> Vec<(&str, f64)> {
    if prov.latency_seconds <= 0.0 {
        return Vec::new();
    }
    prov.stages
        .iter()
        .map(|s| (s.resource.as_str(), s.blame_seconds / prov.latency_seconds))
        .collect()
}

/// Names the resource whose blame share grew most from the baseline
/// point to the knee point — the stage the knee verdict indicts. None
/// when the knee point carries no provenance record or no stage's
/// share grew (strict first-of-max over the knee point's stage order,
/// which is descending blame with alphabetical ties, so the pick is
/// deterministic).
fn knee_blame(
    baseline: Option<&ProvenanceMetrics>,
    knee: Option<&ProvenanceMetrics>,
) -> Option<String> {
    let knee = knee?;
    if knee.latency_seconds <= 0.0 {
        return None;
    }
    let before = baseline.map(blame_shares).unwrap_or_default();
    let mut best: Option<(&str, f64)> = None;
    for s in &knee.stages {
        let now = s.blame_seconds / knee.latency_seconds;
        let was = before
            .iter()
            .find(|(n, _)| *n == s.resource)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        let growth = now - was;
        if growth > 0.0 && best.map_or(true, |(_, g)| growth > g) {
            best = Some((s.resource.as_str(), growth));
        }
    }
    best.map(|(n, _)| n.to_string())
}

/// The group's dominant bottleneck: the resource with the most
/// accumulated bottleneck seconds across its points, first-of-max on
/// ties, as "stage-label resource-name".
fn top_bottleneck(points: &[&crate::deck::PointResult]) -> Option<String> {
    let mut acc: Vec<(Option<hcs_core::StageKind>, String, f64)> = Vec::new();
    for p in points {
        let Some(m) = &p.metrics else { continue };
        for b in &m.bottlenecks {
            match acc
                .iter_mut()
                .find(|(k, n, _)| *k == b.kind && *n == b.name)
            {
                Some((_, _, secs)) => *secs += b.seconds,
                None => acc.push((b.kind, b.name.clone(), b.seconds)),
            }
        }
    }
    let mut best: Option<&(Option<hcs_core::StageKind>, String, f64)> = None;
    for entry in &acc {
        if best.is_none_or(|b| entry.2 > b.2) {
            best = Some(entry);
        }
    }
    best.map(|(kind, name, _)| format!("{} {}", kind.map(|k| k.label()).unwrap_or("?"), name))
}

/// Index of the best headline among `values` for the given direction,
/// first-of-max (or min) on ties.
fn best_index(values: &[f64], higher_is_better: bool) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate().skip(1) {
        let better = if higher_is_better {
            *v > values[best]
        } else {
            *v < values[best]
        };
        if better {
            best = i;
        }
    }
    best
}

/// Rolls a metered deck up into its [`DeckMetricsSummary`]: per-system
/// cross-rep statistics over the `by_system` groups plus winner /
/// factor / crossover extraction. Returns `None` unless every point
/// carries metrics. Uses only deterministic per-point fields (never
/// wall clock), so the summary is bit-identical across rayon worker
/// counts.
pub fn deck_metrics_summary(result: &DeckResult) -> Option<DeckMetricsSummary> {
    if result.points.is_empty() || result.points.iter().any(|p| p.metrics.is_none()) {
        return None;
    }
    let first = result.points[0].metrics.as_ref().expect("checked above");
    let unit = first.headline_unit.clone();
    let higher_is_better = first.higher_is_better;

    let groups = result.by_system();
    let systems: Vec<SystemMetrics> = groups
        .iter()
        .map(|(label, points)| {
            let mut headline = Stats::new();
            let mut rep_cv = Stats::new();
            for p in points {
                let m = p.metrics.as_ref().expect("checked above");
                headline.push(m.headline_value);
                rep_cv.push(m.rep_cv);
            }
            SystemMetrics {
                system: label.clone(),
                points: points.len(),
                headline,
                rep_cv,
                top_bottleneck: top_bottleneck(points),
            }
        })
        .collect();

    let means: Vec<f64> = systems.iter().map(|s| s.headline.mean()).collect();
    let winner_idx = best_index(&means, higher_is_better);
    let winner = Some(systems[winner_idx].system.clone());
    let factor = if systems.len() < 2 {
        1.0
    } else {
        let runner_up = means
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != winner_idx)
            .map(|(_, v)| *v)
            .fold(
                if higher_is_better {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                },
                |acc, v| {
                    if higher_is_better {
                        acc.max(v)
                    } else {
                        acc.min(v)
                    }
                },
            );
        let (top, bottom) = if higher_is_better {
            (means[winner_idx], runner_up)
        } else {
            (runner_up, means[winner_idx])
        };
        if bottom > 0.0 {
            top / bottom
        } else {
            1.0
        }
    };

    // Crossovers need a multi-system sweep with aligned point counts.
    let mut crossovers = Vec::new();
    let aligned = groups.len() >= 2 && groups.iter().all(|(_, p)| p.len() == groups[0].1.len());
    if aligned {
        let mut prev: Option<usize> = None;
        for i in 0..groups[0].1.len() {
            let at: Vec<f64> = groups
                .iter()
                .map(|(_, p)| p[i].metrics.as_ref().expect("checked above").headline_value)
                .collect();
            let w = best_index(&at, higher_is_better);
            if let Some(pw) = prev {
                if pw != w {
                    crossovers.push(format!(
                        "{} -> {} at {}",
                        groups[pw].0, groups[w].0, groups[w].1[i].scenario.name
                    ));
                }
            }
            prev = Some(w);
        }
    }

    Some(DeckMetricsSummary {
        unit,
        higher_is_better,
        systems,
        winner,
        factor,
        crossovers,
        knees: knee_verdicts(result),
    })
}
