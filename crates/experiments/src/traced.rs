//! Traced experiment sweeps: figures that can cite their bottleneck.
//!
//! [`traced_ior_sweep`] runs the same node sweep a scalability figure
//! does, but through the telemetry layer ([`hcs_core::telemetry`]): the
//! whole sweep lands in one [`Recorder`] on a single clock, and every
//! data point carries the deployment stage that bound it — so a figure
//! caption can say "flat from 16 nodes: gateway-bound" instead of
//! leaving the plateau unexplained. The sweep runs serially (one shared
//! recorder), unlike the `parallel_sweep` figure loops; use it for the
//! annotated variant of a figure, not for bulk generation.

use hcs_core::telemetry::{MetricsSummary, Recorder};
use hcs_core::{StageKind, StorageSystem};
use hcs_ior::{run_ior_traced, IorConfig, WorkloadClass};

use crate::sweep::Scale;

/// One annotated point of a traced sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct TracedPoint {
    /// Client nodes.
    pub nodes: u32,
    /// Mean aggregate bandwidth, bytes/s.
    pub bandwidth: f64,
    /// The stage and resource that bound this point (the resource that
    /// was the time-weighted bottleneck during the point's run), when
    /// any resource saturated.
    pub bound_by: Option<(StageKind, String)>,
}

/// A node sweep with per-point bottleneck attribution and the full
/// telemetry of every run.
#[derive(Debug)]
pub struct TracedSweep {
    /// Storage system description.
    pub system: String,
    /// The workload class swept.
    pub workload: WorkloadClass,
    /// Annotated points, in node order.
    pub points: Vec<TracedPoint>,
    /// The recorder holding every run's events and timelines
    /// end-to-end; dump with [`Recorder::to_chrome_json`].
    pub recorder: Recorder,
}

impl TracedSweep {
    /// Chrome-trace JSON of the whole sweep.
    pub fn to_chrome_json(&self) -> String {
        self.recorder.to_chrome_json()
    }

    /// Metrics roll-up across the whole sweep.
    pub fn metrics(&self) -> MetricsSummary {
        self.recorder.metrics_summary()
    }

    /// One caption line per point: `nodes, GB/s, binding stage`.
    pub fn annotations(&self) -> Vec<String> {
        self.points
            .iter()
            .map(|p| {
                let bound = match &p.bound_by {
                    Some((kind, name)) => format!("{} ({name})", kind.label()),
                    None => "stream-limited".to_string(),
                };
                format!("{} nodes: {:.2} GB/s — {bound}", p.nodes, p.bandwidth / 1e9)
            })
            .collect()
    }
}

/// Runs an IOR node sweep with telemetry, attributing each point to the
/// stage that bound it. Bandwidths are bit-identical to the untraced
/// sweep's (the recorder is a pure listener).
pub fn traced_ior_sweep(
    system: &dyn StorageSystem,
    workload: WorkloadClass,
    node_counts: &[u32],
    ppn: u32,
    scale: Scale,
) -> TracedSweep {
    let mut recorder = Recorder::new();
    let mut points = Vec::with_capacity(node_counts.len());
    for &nodes in node_counts {
        let mut cfg = match scale {
            Scale::Paper => IorConfig::paper_scalability(workload, nodes, ppn),
            // Datacenter sweeps use the smoke geometry per point — the
            // scale raises node counts, not per-rank bytes.
            Scale::Smoke | Scale::Datacenter => IorConfig::smoke(workload, nodes, ppn),
        };
        cfg.reps = scale.reps();
        // Attribution must be per-point: diff the recorder's bottleneck
        // accounting across this run by summarizing before and after.
        let before = recorder.metrics_summary();
        let report = run_ior_traced(system, &cfg, &mut recorder);
        let after = recorder.metrics_summary();
        points.push(TracedPoint {
            nodes,
            bandwidth: report.mean_bandwidth(),
            bound_by: dominant_new_bottleneck(&before, &after),
        });
    }
    TracedSweep {
        system: system.description(),
        workload,
        points,
        recorder,
    }
}

/// The bottleneck that gained the most attributed seconds between two
/// summaries — i.e. the binding stage of the run(s) in between.
fn dominant_new_bottleneck(
    before: &MetricsSummary,
    after: &MetricsSummary,
) -> Option<(StageKind, String)> {
    let prior = |kind: &Option<StageKind>, name: &str| -> f64 {
        before
            .bottlenecks
            .iter()
            .find(|b| b.kind == *kind && b.name == name)
            .map_or(0.0, |b| b.seconds)
    };
    after
        .bottlenecks
        .iter()
        .filter_map(|b| {
            let gained = b.seconds - prior(&b.kind, &b.name);
            (gained > 1e-12).then_some((b.kind, b.name.clone(), gained))
        })
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .and_then(|(kind, name, _)| kind.map(|k| (k, name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_ior::run_ior;
    use hcs_vast::vast_on_lassen;

    #[test]
    fn sweep_matches_untraced_bandwidths_bit_exactly() {
        let sys = vast_on_lassen();
        let nodes = [1, 4, 16];
        let sweep = traced_ior_sweep(&sys, WorkloadClass::DataAnalytics, &nodes, 44, Scale::Smoke);
        for (i, &n) in nodes.iter().enumerate() {
            let mut cfg = IorConfig::smoke(WorkloadClass::DataAnalytics, n, 44);
            cfg.reps = Scale::Smoke.reps();
            let plain = run_ior(&sys, &cfg);
            assert_eq!(
                sweep.points[i].bandwidth.to_bits(),
                plain.mean_bandwidth().to_bits(),
                "telemetry must not perturb point {n}"
            );
        }
    }

    #[test]
    fn saturated_points_cite_a_stage() {
        let sys = vast_on_lassen();
        let sweep = traced_ior_sweep(
            &sys,
            WorkloadClass::DataAnalytics,
            &[1, 64],
            44,
            Scale::Smoke,
        );
        // At 64 full nodes the TCP VAST deployment is far past its
        // saturation point; some stage must be cited.
        let last = sweep.points.last().unwrap();
        assert!(last.bound_by.is_some(), "64-node point should saturate");
        assert_eq!(sweep.annotations().len(), 2);
        assert!(sweep.to_chrome_json().contains("\"resource\""));
    }
}
