//! Parallel parameter sweeps.

use rayon::prelude::*;

// The experiment scale moved into the core scenario IR (it is now
// serializable and shared with `hcs run --scale`); this module keeps
// the historical `hcs_experiments::sweep::Scale` path.
pub use hcs_core::scenario::Scale;

/// Maps `f` over `items` in parallel, preserving order.
///
/// Simulator runs are embarrassingly parallel across configurations;
/// this is the sweep loop every figure generator goes through.
pub fn parallel_sweep<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.par_iter().map(&f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let out = parallel_sweep((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
