//! Parallel parameter sweeps.

use rayon::prelude::*;

/// Experiment scale: full paper geometry or a fast smoke variant for
/// tests and CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper geometry: 3,000 segments, 10 repetitions, full node lists.
    Paper,
    /// Reduced geometry: same shapes, minutes → seconds.
    Smoke,
}

impl Scale {
    /// IOR repetitions at this scale.
    pub fn reps(self) -> u32 {
        match self {
            Scale::Paper => 10,
            Scale::Smoke => 2,
        }
    }

    /// Node counts for the Lassen scalability sweep (full nodes,
    /// 44 ppn, up to 128 nodes — §V).
    pub fn lassen_nodes(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8, 16, 32, 64, 128],
            Scale::Smoke => vec![1, 4, 16, 64],
        }
    }

    /// Node counts for the Wombat scalability sweep (all 8 nodes,
    /// 48 ppn — §V).
    pub fn wombat_nodes(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8],
            Scale::Smoke => vec![1, 2, 4, 8],
        }
    }

    /// Process counts for the single-node tests (§V: "scale the number
    /// of processes to 32").
    pub fn single_node_procs(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8, 16, 32],
            Scale::Smoke => vec![1, 4, 16, 32],
        }
    }

    /// Node counts for the ResNet-50 weak-scaling test (§VI.B: "to 32").
    pub fn resnet_nodes(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8, 16, 32],
            Scale::Smoke => vec![1, 4],
        }
    }

    /// Node counts for the Cosmoflow strong-scaling test.
    pub fn cosmoflow_nodes(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8, 16],
            Scale::Smoke => vec![1, 4],
        }
    }

    /// DLIO sample count override (`None` = paper dataset).
    pub fn dlio_samples(self) -> Option<u64> {
        match self {
            Scale::Paper => None,
            Scale::Smoke => Some(96),
        }
    }
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Simulator runs are embarrassingly parallel across configurations;
/// this is the sweep loop every figure generator goes through.
pub fn parallel_sweep<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    items.par_iter().map(&f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let out = parallel_sweep((0..100).collect(), |&x: &i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scales_differ() {
        assert!(Scale::Paper.lassen_nodes().len() > Scale::Smoke.lassen_nodes().len());
        assert_eq!(Scale::Paper.reps(), 10);
        assert!(Scale::Smoke.dlio_samples().is_some());
    }

    #[test]
    fn paper_scales_match_paper() {
        assert_eq!(*Scale::Paper.lassen_nodes().last().unwrap(), 128);
        assert_eq!(*Scale::Paper.wombat_nodes().last().unwrap(), 8);
        assert_eq!(*Scale::Paper.single_node_procs().last().unwrap(), 32);
        assert_eq!(*Scale::Paper.resnet_nodes().last().unwrap(), 32);
    }
}
