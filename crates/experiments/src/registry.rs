//! The shared system registry: every storage deployment the suite can
//! run, under the name scenario files and the CLI use.
//!
//! One table replaces the string→constructor matches that used to be
//! hand-rolled per consumer: `hcs systems`, `hcs ior <system> ...`, and
//! the scenario executor ([`crate::deck`]) all resolve names here, so a
//! deployment added to the registry is immediately scriptable
//! everywhere.

use hcs_core::StorageSystem;
use hcs_daos::DaosConfig;
use hcs_gpfs::GpfsConfig;
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_objstore::ObjectGatewayConfig;
use hcs_unifyfs::UnifyFsConfig;
use hcs_vast::{vast_on_lassen, vast_on_quartz, vast_on_ruby, vast_on_wombat};

/// One registered storage deployment.
pub struct SystemEntry {
    /// Registry key ("vast-lassen", "gpfs", ...).
    pub key: &'static str,
    /// The machine the deployment is bound to (Table I).
    pub machine: &'static str,
    /// Full-node process count on that machine (44 on Lassen's Power9
    /// nodes, 56 on Ruby, 36 on Quartz, 48 on Wombat).
    pub full_ppn: u32,
    build: fn() -> Box<dyn StorageSystem>,
}

impl SystemEntry {
    /// Constructs the deployment.
    pub fn build(&self) -> Box<dyn StorageSystem> {
        (self.build)()
    }
}

/// The registry, in the paper's presentation order.
pub fn entries() -> &'static [SystemEntry] {
    static ENTRIES: [SystemEntry; 11] = [
        SystemEntry {
            key: "vast-lassen",
            machine: "Lassen",
            full_ppn: 44,
            build: || Box::new(vast_on_lassen()),
        },
        SystemEntry {
            key: "vast-ruby",
            machine: "Ruby",
            full_ppn: 56,
            build: || Box::new(vast_on_ruby()),
        },
        SystemEntry {
            key: "vast-quartz",
            machine: "Quartz",
            full_ppn: 36,
            build: || Box::new(vast_on_quartz()),
        },
        SystemEntry {
            key: "vast-wombat",
            machine: "Wombat",
            full_ppn: 48,
            build: || Box::new(vast_on_wombat()),
        },
        SystemEntry {
            key: "gpfs",
            machine: "Lassen",
            full_ppn: 44,
            build: || Box::new(GpfsConfig::on_lassen()),
        },
        SystemEntry {
            key: "lustre-ruby",
            machine: "Ruby",
            full_ppn: 56,
            build: || Box::new(LustreConfig::on_ruby()),
        },
        SystemEntry {
            key: "lustre-quartz",
            machine: "Quartz",
            full_ppn: 36,
            build: || Box::new(LustreConfig::on_quartz()),
        },
        SystemEntry {
            key: "nvme",
            machine: "Wombat",
            full_ppn: 48,
            build: || Box::new(LocalNvmeConfig::on_wombat()),
        },
        SystemEntry {
            key: "unifyfs",
            machine: "Wombat",
            full_ppn: 48,
            build: || Box::new(UnifyFsConfig::on_wombat()),
        },
        SystemEntry {
            key: "objstore",
            machine: "Wombat",
            full_ppn: 48,
            build: || Box::new(ObjectGatewayConfig::on_wombat()),
        },
        SystemEntry {
            key: "daos",
            machine: "Wombat",
            full_ppn: 48,
            build: || Box::new(DaosConfig::on_wombat()),
        },
    ];
    &ENTRIES
}

/// Looks a deployment up by registry key.
pub fn resolve(key: &str) -> Option<&'static SystemEntry> {
    entries().iter().find(|e| e.key == key)
}

/// All registry keys, in registry order.
pub fn names() -> Vec<&'static str> {
    entries().iter().map(|e| e.key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_builds_and_names_itself() {
        for e in entries() {
            let sys = e.build();
            assert!(!sys.name().is_empty(), "{}", e.key);
            assert!(e.full_ppn >= 36, "{}", e.key);
        }
    }

    #[test]
    fn resolve_finds_known_and_rejects_unknown() {
        assert_eq!(resolve("vast-lassen").unwrap().full_ppn, 44);
        assert_eq!(resolve("lustre-ruby").unwrap().machine, "Ruby");
        assert!(resolve("bogus").is_none());
    }

    #[test]
    fn cross_protocol_backends_are_registered() {
        assert_eq!(resolve("objstore").unwrap().machine, "Wombat");
        assert_eq!(resolve("daos").unwrap().machine, "Wombat");
        assert_eq!(entries().len(), 11);
    }

    #[test]
    fn keys_are_unique() {
        let names = names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
