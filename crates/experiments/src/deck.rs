//! The scenario executor: expands a [`Deck`], resolves each point's
//! system through the [`crate::registry`], and runs its workload,
//! returning typed results that plug straight into the
//! [`crate::series`] figure machinery.
//!
//! There is **one** execution path: every figure module, ablation, the
//! `hcs run` CLI command and user-authored scenario files all come
//! through here, so a point that appears in a figure can be re-run in
//! isolation from its JSON form and reproduce the same bytes (the
//! benchmarks seed their noise from the config alone — common random
//! numbers — so results are independent of which deck, worker or order
//! executed the point).

use serde::{Deserialize, Serialize};
use std::time::Instant;

use hcs_core::runner::OpenLoopOutcome;
use hcs_core::{
    Arrival, Deck, DeckMetricsSummary, FaultSpec, IoOp, OpLatency, PointMetrics, Reconfigured,
    Recorder, ResilienceMetrics, Scenario, StageKind, StorageSystem, Workload,
};
use hcs_dlio::{run_dlio, run_dlio_traced, DlioResult};
use hcs_ior::{
    run_ior, run_ior_faulted, run_ior_faulted_traced, run_ior_open_loop,
    run_ior_open_loop_observed, run_ior_open_loop_traced, run_ior_traced, IorReport,
};
use hcs_mdtest::{run_mdtest, MdtestReport};
use hcs_replay::{replay, ReplayResult};

use crate::metrics::{collect_point_metrics, deck_metrics_summary};
use crate::registry;
use crate::report::fmt;
use crate::sweep::parallel_sweep;

/// The typed result of one scenario point — one variant per workload
/// family, mirroring [`Workload`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum WorkloadOutcome {
    /// An IOR report (bandwidth summary over repetitions).
    Ior(IorReport),
    /// A DLIO result (timeline decomposition + throughputs).
    Dlio(DlioResult),
    /// An MDTest report (create/stat/unlink rates).
    Mdtest(MdtestReport),
    /// A job-script outcome (per-step durations).
    Job(hcs_core::JobOutcome),
    /// A trace-replay result.
    Replay(ReplayResult),
}

impl WorkloadOutcome {
    /// The IOR report, panicking if the point ran another family.
    pub fn ior(&self) -> &IorReport {
        match self {
            WorkloadOutcome::Ior(r) => r,
            other => panic!("expected an IOR outcome, got {}", other.kind()),
        }
    }

    /// The DLIO result, panicking if the point ran another family.
    pub fn dlio(&self) -> &DlioResult {
        match self {
            WorkloadOutcome::Dlio(r) => r,
            other => panic!("expected a DLIO outcome, got {}", other.kind()),
        }
    }

    /// The MDTest report, panicking if the point ran another family.
    pub fn mdtest(&self) -> &MdtestReport {
        match self {
            WorkloadOutcome::Mdtest(r) => r,
            other => panic!("expected an MDTest outcome, got {}", other.kind()),
        }
    }

    /// The job outcome, panicking if the point ran another family.
    pub fn job(&self) -> &hcs_core::JobOutcome {
        match self {
            WorkloadOutcome::Job(r) => r,
            other => panic!("expected a job outcome, got {}", other.kind()),
        }
    }

    /// The replay result, panicking if the point ran another family.
    pub fn replay(&self) -> &ReplayResult {
        match self {
            WorkloadOutcome::Replay(r) => r,
            other => panic!("expected a replay outcome, got {}", other.kind()),
        }
    }

    /// The workload family label.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadOutcome::Ior(_) => "ior",
            WorkloadOutcome::Dlio(_) => "dlio",
            WorkloadOutcome::Mdtest(_) => "mdtest",
            WorkloadOutcome::Job(_) => "job",
            WorkloadOutcome::Replay(_) => "replay",
        }
    }

    /// A one-line, human-readable summary for CLI output. Number
    /// formatting is shared with the `hcs report` renderer through
    /// [`crate::report::fmt`], so the report's cells and the run
    /// listing's headlines always agree digit-for-digit.
    pub fn headline(&self) -> String {
        match self {
            WorkloadOutcome::Ior(r) => {
                fmt::gbps_pm(r.outcome.summary.mean, r.outcome.summary.std_dev)
            }
            WorkloadOutcome::Dlio(r) => format!(
                "{}, {} samples/s app throughput",
                fmt::seconds(r.duration),
                fmt::rate(r.app_throughput)
            ),
            WorkloadOutcome::Mdtest(r) => format!(
                "create {} / stat {} / unlink {} ops/s",
                fmt::rate(r.create.mean),
                fmt::rate(r.stat.mean),
                fmt::rate(r.unlink.mean)
            ),
            WorkloadOutcome::Job(r) => format!(
                "{} total, {} I/O",
                fmt::seconds(r.total),
                fmt::percent(r.io_fraction())
            ),
            WorkloadOutcome::Replay(r) => format!(
                "{} replayed, {} I/O per process",
                fmt::seconds(r.duration),
                fmt::seconds(r.mean.io_total)
            ),
        }
    }
}

/// One executed deck point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointResult {
    /// The (expanded) scenario that produced this result.
    pub scenario: Scenario,
    /// The storage system's display name ("VAST", "GPFS", ...).
    pub system: String,
    /// Client nodes the point ran at.
    pub nodes: u32,
    /// Processes per node the point ran at.
    pub ppn: u32,
    /// The typed workload result.
    pub outcome: WorkloadOutcome,
    /// Per-point observability bundle, populated only by the metered
    /// executors (`--metrics`). Absent fields serialize to nothing, so
    /// un-metered results stay byte-compatible with earlier releases.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<PointMetrics>,
}

/// An executed deck: every expanded point with its typed result, in
/// expansion order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeckResult {
    /// The deck's name (doubles as the output artifact id).
    pub name: String,
    /// The deck's title.
    pub title: String,
    /// Results, one per expanded point, in expansion order.
    pub points: Vec<PointResult>,
    /// Cross-rep statistics and verdict over the whole deck, populated
    /// only by the metered executors (`--metrics`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<DeckMetricsSummary>,
}

impl DeckResult {
    /// Groups consecutive points by their scenario's system key,
    /// preserving expansion order — decks nest systems outermost, so
    /// each group is one figure series. The group label is the system's
    /// display name.
    pub fn by_system(&self) -> Vec<(String, Vec<&PointResult>)> {
        let mut groups: Vec<(String, String, Vec<&PointResult>)> = Vec::new();
        for p in &self.points {
            match groups.last_mut() {
                Some((key, _, members)) if *key == p.scenario.system => members.push(p),
                _ => groups.push((p.scenario.system.clone(), p.system.clone(), vec![p])),
            }
        }
        groups
            .into_iter()
            .map(|(_, label, members)| (label, members))
            .collect()
    }
}

/// Resolves a scenario's system through the registry and applies its
/// graph edits.
///
/// # Panics
/// Panics when the system name is not registered (the message lists the
/// valid names).
pub fn build_system(scenario: &Scenario) -> (Box<dyn StorageSystem>, u32) {
    let entry = registry::resolve(&scenario.system).unwrap_or_else(|| {
        panic!(
            "unknown system '{}' (known: {})",
            scenario.system,
            registry::names().join(", ")
        )
    });
    let base = entry.build();
    if scenario.edits.is_empty() {
        return (base, entry.full_ppn);
    }
    let edits = scenario.edits.clone();
    let system = Reconfigured::new(base, move |g| {
        for edit in &edits {
            edit.apply(g);
        }
    });
    (Box::new(system), entry.full_ppn)
}

/// Loads the Chrome-format trace a replay scenario names.
fn load_replay_trace(config: &hcs_core::scenario::ReplayConfig) -> hcs_dftrace::Tracer {
    let path = config
        .trace
        .as_deref()
        .expect("replay scenario needs a 'trace' path to a Chrome-format trace");
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read replay trace '{path}': {e}"));
    hcs_dftrace::chrome::from_json(&json)
        .unwrap_or_else(|e| panic!("cannot parse replay trace '{path}': {e:?}"))
}

/// Runs one already-resolved workload on a system. The low-level
/// executor shared by scenario points and by ablations that mutate
/// backend fields directly (which a registry name cannot express).
pub fn run_workload_on(
    system: &dyn StorageSystem,
    workload: &Workload,
    nodes: u32,
    ppn: u32,
) -> WorkloadOutcome {
    match workload {
        Workload::Ior(c) => WorkloadOutcome::Ior(run_ior(system, c)),
        Workload::Dlio(c) => WorkloadOutcome::Dlio(run_dlio(system, c, nodes)),
        Workload::Mdtest(c) => WorkloadOutcome::Mdtest(run_mdtest(system, c)),
        Workload::Job(j) => WorkloadOutcome::Job(j.run(system, nodes, ppn)),
        Workload::Replay(c) => WorkloadOutcome::Replay(replay(&load_replay_trace(c), system, c)),
    }
}

/// [`run_workload_on`] with telemetry. MDTest and replay have no traced
/// twins (their engines predate the recorder), so those families run
/// untraced and only contribute their results.
pub fn run_workload_on_traced(
    system: &dyn StorageSystem,
    workload: &Workload,
    nodes: u32,
    ppn: u32,
    recorder: &mut Recorder,
) -> WorkloadOutcome {
    match workload {
        Workload::Ior(c) => WorkloadOutcome::Ior(run_ior_traced(system, c, recorder)),
        Workload::Dlio(c) => WorkloadOutcome::Dlio(run_dlio_traced(system, c, nodes, recorder)),
        Workload::Job(j) => WorkloadOutcome::Job(j.run_traced(system, nodes, ppn, recorder)),
        Workload::Mdtest(_) | Workload::Replay(_) => run_workload_on(system, workload, nodes, ppn),
    }
}

/// Runs a fault-injected workload, returning the outcome and its
/// resilience record (slowdown vs. the fault-free twin, stall and
/// drain seconds).
///
/// # Panics
/// Panics when the workload family is not IOR (fault injection targets
/// the flow-level phase runner; the other families' engines do not
/// consume capacity schedules yet) or when the schedule fails to
/// resolve — `validate_deck` catches both ahead of time with a clean
/// diagnostic.
fn run_workload_faulted(
    system: &dyn StorageSystem,
    workload: &Workload,
    faults: &[FaultSpec],
    recorder: Option<&mut Recorder>,
    label: &str,
) -> (WorkloadOutcome, ResilienceMetrics) {
    let config = match workload {
        Workload::Ior(c) => c,
        other => panic!(
            "scenario '{label}': fault injection supports the IOR family only (got {})",
            other.kind()
        ),
    };
    let result = match recorder {
        Some(rec) => run_ior_faulted_traced(system, config, faults, rec),
        None => run_ior_faulted(system, config, faults),
    };
    match result {
        Ok((report, resilience)) => (WorkloadOutcome::Ior(report), resilience),
        Err(e) => panic!("scenario '{label}': {e}"),
    }
}

/// Runs an open-loop workload: operations arrive at the scenario's
/// offered rate instead of back-to-back, and every completion's
/// submit→finish latency lands in an HDR-style histogram. Returns the
/// (single-rep) outcome plus the open-loop observables.
///
/// # Panics
/// Panics when the workload family is not IOR (open-loop arrival
/// injection drives the flow-level phase runner, like fault injection)
/// or when the run stalls unrecovered — `validate_deck` catches the
/// family mismatch ahead of time with a clean diagnostic.
fn run_workload_open_loop(
    system: &dyn StorageSystem,
    workload: &Workload,
    arrival: &Arrival,
    faults: &[FaultSpec],
    recorder: Option<&mut Recorder>,
    provenance: bool,
    label: &str,
) -> (WorkloadOutcome, OpenLoopOutcome) {
    let config = match workload {
        Workload::Ior(c) => c,
        other => panic!(
            "scenario '{label}': open-loop arrivals support the IOR family only (got {})",
            other.kind()
        ),
    };
    let result = if provenance {
        run_ior_open_loop_observed(system, config, arrival, faults, recorder)
    } else {
        match recorder {
            Some(rec) => run_ior_open_loop_traced(system, config, arrival, faults, rec),
            None => run_ior_open_loop(system, config, arrival, faults),
        }
    };
    match result {
        Ok((report, open)) => (WorkloadOutcome::Ior(report), open),
        Err(e) => panic!("scenario '{label}': {e}"),
    }
}

/// Distills an open-loop run into the point's latency rows: one
/// [`OpLatency`] per op class and size bucket the window exercised (IOR
/// phases are homogeneous, so exactly one row today).
fn open_loop_latency(workload: &Workload, open: &OpenLoopOutcome) -> Vec<OpLatency> {
    let Workload::Ior(config) = workload else {
        unreachable!("open-loop runs are IOR-only");
    };
    let phase = config.phase();
    let op = match phase.op {
        IoOp::Write => "write",
        IoOp::Read => "read",
    };
    vec![OpLatency {
        op: op.to_string(),
        size_bytes: phase.transfer_size as u64,
        histogram: open.histogram.clone(),
    }]
}

/// Checks a deck before execution, returning a one-line diagnostic on
/// the first problem: an unknown system name, fault injection or
/// open-loop arrivals on a workload family that does not support them
/// (IOR only today), a malformed fault window or arrival spec, an
/// `offered_load` sweep over a closed-loop base, or a fault targeting a
/// stage the scenario's deployment plan does not contain. `hcs run`
/// calls this up front so bad decks exit with a message instead of a
/// panic backtrace.
///
/// Fault/plan mismatches are judged at *deck* level: the planned stages
/// of every expanded point are unioned first, so a cross-protocol deck
/// whose fault filter names a stage kind no swept system plans (say a
/// `ClientMount` outage swept over DAOS's mountless library stack) is
/// called out as impossible for the whole deck, not blamed on whichever
/// point happened to expand first.
pub fn validate_deck(deck: &Deck) -> Result<(), String> {
    if !deck.axes.offered_load.is_empty() && deck.base.arrival.is_closed() {
        return Err(format!(
            "deck '{}' sweeps offered_load but the base scenario's arrival is closed-loop; \
             give the base an open arrival spec (the sweep overrides its rate)",
            deck.name
        ));
    }
    // Planned (kind, name) pairs across every expanded point, plus the
    // first per-point fault/plan mismatch, deferred until the union is
    // known.
    let mut planned_union: Vec<(StageKind, String)> = Vec::new();
    let mut unmatched: Vec<(String, FaultSpec)> = Vec::new();
    for scenario in deck.expand() {
        let entry = registry::resolve(&scenario.system).ok_or_else(|| {
            format!(
                "unknown system '{}' (known: {})",
                scenario.system,
                registry::names().join(", ")
            )
        })?;
        scenario
            .arrival
            .check()
            .map_err(|e| format!("scenario '{}': {e}", scenario.name))?;
        if !scenario.arrival.is_closed() && !matches!(scenario.workload, Workload::Ior(_)) {
            return Err(format!(
                "scenario '{}': open-loop arrivals support the IOR family only (got {})",
                scenario.name,
                scenario.workload.kind()
            ));
        }
        if scenario.faults.is_empty() {
            continue;
        }
        let workload = scenario.resolved_workload(entry.full_ppn);
        let config = match &workload {
            Workload::Ior(c) => c,
            other => {
                return Err(format!(
                    "scenario '{}': fault injection supports the IOR family only (got {})",
                    scenario.name,
                    other.kind()
                ))
            }
        };
        for spec in &scenario.faults {
            spec.check()
                .map_err(|e| format!("scenario '{}': {e}", scenario.name))?;
        }
        let (system, _) = build_system(&scenario);
        let graph = system.plan(
            scenario.run_nodes(),
            scenario.run_ppn(entry.full_ppn),
            &config.phase(),
        );
        for st in &graph.stages {
            if !planned_union
                .iter()
                .any(|(k, n)| *k == st.kind && *n == st.name)
            {
                planned_union.push((st.kind, st.name.clone()));
            }
        }
        for spec in &scenario.faults {
            if !graph
                .stages
                .iter()
                .any(|st| spec.matches(st.kind, &st.name))
            {
                unmatched.push((
                    format!(
                        "scenario '{}': fault targets no planned stage (kind {}{}); planned stages: {}",
                        scenario.name,
                        spec.stage.label(),
                        spec.name
                            .as_deref()
                            .map(|n| format!(", name '{n}'"))
                            .unwrap_or_default(),
                        graph
                            .stages
                            .iter()
                            .map(|s| format!("{} '{}'", s.kind.label(), s.name))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    spec.clone(),
                ));
            }
        }
    }
    if let Some((per_point_msg, spec)) = unmatched.first() {
        if !planned_union.iter().any(|(k, n)| spec.matches(*k, n)) {
            return Err(format!(
                "deck '{}': fault targets no planned stage in any swept system (kind {}{}); \
                 planned stage kinds across the deck: {}",
                deck.name,
                spec.stage.label(),
                spec.name
                    .as_deref()
                    .map(|n| format!(", name '{n}'"))
                    .unwrap_or_default(),
                planned_union
                    .iter()
                    .map(|(k, n)| format!("{} '{}'", k.label(), n))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        return Err(per_point_msg.clone());
    }
    Ok(())
}

/// Runs one scenario point.
///
/// # Panics
/// Panics on an unknown system name or an invalid workload.
pub fn run_scenario(scenario: &Scenario) -> PointResult {
    run_scenario_impl(scenario, None)
}

/// [`run_scenario`] with telemetry.
pub fn run_scenario_traced(scenario: &Scenario, recorder: &mut Recorder) -> PointResult {
    run_scenario_impl(scenario, Some(recorder))
}

fn run_scenario_impl(scenario: &Scenario, recorder: Option<&mut Recorder>) -> PointResult {
    let (system, full_ppn) = build_system(scenario);
    let workload = scenario.resolved_workload(full_ppn);
    workload.validate();
    let nodes = scenario.run_nodes();
    let ppn = scenario.run_ppn(full_ppn);
    let outcome = if !scenario.arrival.is_closed() {
        run_workload_open_loop(
            &*system,
            &workload,
            &scenario.arrival,
            &scenario.faults,
            recorder,
            false,
            &scenario.name,
        )
        .0
    } else if scenario.faults.is_empty() {
        match recorder {
            Some(rec) => run_workload_on_traced(&system, &workload, nodes, ppn, rec),
            None => run_workload_on(&system, &workload, nodes, ppn),
        }
    } else {
        run_workload_faulted(
            &*system,
            &workload,
            &scenario.faults,
            recorder,
            &scenario.name,
        )
        .0
    };
    PointResult {
        scenario: scenario.clone(),
        system: system.name().to_string(),
        nodes,
        ppn,
        outcome,
        metrics: None,
    }
}

/// [`run_scenario`] with observability: runs the point traced into a
/// private recorder and distills the run into [`PointMetrics`]. The
/// outcome is bit-identical to [`run_scenario`]'s — the recorder is a
/// pure listener and the traced twins reproduce the untraced results.
pub fn run_scenario_metered(scenario: &Scenario) -> PointResult {
    run_scenario_metered_impl(scenario, false).0
}

/// The metered executor's core: also returns the point's private
/// recorder so a traced deck run can stack it onto a shared timeline.
fn run_scenario_metered_impl(scenario: &Scenario, provenance: bool) -> (PointResult, Recorder) {
    let start = Instant::now();
    let (system, full_ppn) = build_system(scenario);
    let workload = scenario.resolved_workload(full_ppn);
    workload.validate();
    let nodes = scenario.run_nodes();
    let ppn = scenario.run_ppn(full_ppn);
    let mut rec = Recorder::new();
    let (outcome, resilience, latency, blame) = if !scenario.arrival.is_closed() {
        let (outcome, open) = run_workload_open_loop(
            &*system,
            &workload,
            &scenario.arrival,
            &scenario.faults,
            Some(&mut rec),
            provenance,
            &scenario.name,
        );
        let latency = open_loop_latency(&workload, &open);
        let blame = open.provenance;
        (outcome, None, latency, blame)
    } else if scenario.faults.is_empty() {
        let outcome = run_workload_on_traced(&system, &workload, nodes, ppn, &mut rec);
        (outcome, None, Vec::new(), None)
    } else {
        let (outcome, resilience) = run_workload_faulted(
            &*system,
            &workload,
            &scenario.faults,
            Some(&mut rec),
            &scenario.name,
        );
        (outcome, Some(resilience), Vec::new(), None)
    };
    let mut metrics = collect_point_metrics(&workload, &outcome, &rec, nodes, ppn);
    metrics.wall_clock_seconds = start.elapsed().as_secs_f64();
    metrics.resilience = resilience;
    metrics.latency = latency;
    metrics.provenance = blame;
    (
        PointResult {
            scenario: scenario.clone(),
            system: system.name().to_string(),
            nodes,
            ppn,
            outcome,
            metrics: Some(metrics),
        },
        rec,
    )
}

/// Runs a list of scenario points in parallel, preserving order.
/// Results are independent of worker count and scheduling because every
/// benchmark seeds its noise from its config alone.
pub fn run_scenarios(scenarios: &[Scenario]) -> Vec<PointResult> {
    parallel_sweep(scenarios.to_vec(), run_scenario)
}

/// Expands and executes a deck in parallel.
pub fn run_deck(deck: &Deck) -> DeckResult {
    DeckResult {
        name: deck.name.clone(),
        title: deck.title.clone(),
        points: run_scenarios(&deck.expand()),
        metrics: None,
    }
}

/// [`run_deck`] with observability: every point runs metered (in
/// parallel, preserving order) and the deck gains its
/// [`DeckMetricsSummary`]. Outcomes are bit-identical to [`run_deck`]'s.
pub fn run_deck_with_metrics(deck: &Deck) -> DeckResult {
    let mut result = DeckResult {
        name: deck.name.clone(),
        title: deck.title.clone(),
        points: parallel_sweep(deck.expand(), run_scenario_metered),
        metrics: None,
    };
    result.metrics = deck_metrics_summary(&result);
    result
}

/// [`run_deck_with_metrics`] with latency provenance: every open-loop
/// point additionally runs the per-op blame probe, so its
/// [`PointMetrics`] carries a `provenance` record, knee verdicts gain
/// `knee_blame`, and `hcs report` renders the **Tail forensics**
/// section. The probe is a pure listener — outcomes stay bit-identical
/// to [`run_deck_with_metrics`]'s. Call [`validate_provenance`] first:
/// the probe rides the open-loop IOR phase runner only.
pub fn run_deck_with_provenance(deck: &Deck) -> DeckResult {
    let mut result = DeckResult {
        name: deck.name.clone(),
        title: deck.title.clone(),
        points: parallel_sweep(deck.expand(), |s| run_scenario_metered_impl(s, true).0),
        metrics: None,
    };
    result.metrics = deck_metrics_summary(&result);
    result
}

/// Checks that every point of a deck can carry the latency-provenance
/// probe, returning a one-line diagnostic on the first that cannot:
/// the probe decomposes per-op submit→finish latency, so it requires
/// the open-loop IOR phase runner on every expanded point.
pub fn validate_provenance(deck: &Deck) -> Result<(), String> {
    for scenario in deck.expand() {
        if !matches!(scenario.workload, Workload::Ior(_)) {
            return Err(format!(
                "scenario '{}': latency provenance supports the IOR family only (got {})",
                scenario.name,
                scenario.workload.kind()
            ));
        }
        if scenario.arrival.is_closed() {
            return Err(format!(
                "scenario '{}': latency provenance needs open-loop arrivals (per-op latency                  exists only under an arrival process); give the base an open arrival spec or                  sweep offered_load",
                scenario.name
            ));
        }
    }
    Ok(())
}

/// Expands and executes a deck sequentially, feeding every point's
/// telemetry into `recorder` (tracing shares one recorder clock, so the
/// traced path trades parallelism for a coherent timeline).
pub fn run_deck_traced(deck: &Deck, recorder: &mut Recorder) -> DeckResult {
    DeckResult {
        name: deck.name.clone(),
        title: deck.title.clone(),
        points: deck
            .expand()
            .iter()
            .map(|s| run_scenario_traced(s, recorder))
            .collect(),
        metrics: None,
    }
}

/// [`run_deck_traced`] with observability: each point runs into its own
/// recorder (so per-point metrics see only their run), then the private
/// recorders are stacked onto `recorder` in order — the resulting
/// Chrome trace is bit-identical to [`run_deck_traced`]'s.
pub fn run_deck_traced_with_metrics(deck: &Deck, recorder: &mut Recorder) -> DeckResult {
    let mut result = DeckResult {
        name: deck.name.clone(),
        title: deck.title.clone(),
        points: deck
            .expand()
            .iter()
            .map(|s| {
                let (point, rec) = run_scenario_metered_impl(s, false);
                recorder.absorb_recorder(&rec);
                point
            })
            .collect(),
        metrics: None,
    };
    result.metrics = deck_metrics_summary(&result);
    result
}

/// [`run_deck_traced_with_metrics`] with latency provenance: points
/// also run the blame probe, and each op's blame windows land in the
/// shared Chrome trace as annotation spans (pid
/// [`hcs_core::telemetry::PROVENANCE_PID`]) alongside the PR-2 flow
/// lanes.
pub fn run_deck_traced_with_provenance(deck: &Deck, recorder: &mut Recorder) -> DeckResult {
    let mut result = DeckResult {
        name: deck.name.clone(),
        title: deck.title.clone(),
        points: deck
            .expand()
            .iter()
            .map(|s| {
                let (point, rec) = run_scenario_metered_impl(s, true);
                recorder.absorb_recorder(&rec);
                point
            })
            .collect(),
        metrics: None,
    };
    result.metrics = deck_metrics_summary(&result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::scenario::{GraphEdit, IorConfig, MdtestConfig, WorkloadClass};
    use hcs_core::StageKind;

    fn smoke_scenario(system: &str) -> Scenario {
        Scenario::new(
            system,
            Workload::Ior(IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4)),
        )
    }

    #[test]
    fn scenario_matches_direct_run() {
        let point = run_scenario(&smoke_scenario("gpfs"));
        let direct = run_ior(
            &hcs_gpfs::GpfsConfig::on_lassen(),
            &IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4),
        );
        assert_eq!(point.outcome.ior(), &direct);
        assert_eq!(point.system, "GPFS");
        assert_eq!((point.nodes, point.ppn), (1, 4));
    }

    #[test]
    #[should_panic(expected = "unknown system 'betafs'")]
    fn unknown_system_is_rejected_with_catalog() {
        run_scenario(&smoke_scenario("betafs"));
    }

    #[test]
    fn edits_reconfigure_the_deployment() {
        let mut fat = smoke_scenario("vast-lassen");
        fat.edits = vec![GraphEdit::ScalePool {
            kind: StageKind::Gateway,
            factor: 8.0,
        }];
        let base = run_scenario(&smoke_scenario("vast-lassen"));
        let wide = run_scenario(&fat);
        // 4 ranks on one node can't saturate the gateway; push the scale.
        let mut base_big = smoke_scenario("vast-lassen");
        base_big.nodes = Some(32);
        base_big.full_node = true;
        let mut wide_big = fat.clone();
        wide_big.nodes = Some(32);
        wide_big.full_node = true;
        let b = run_scenario(&base_big);
        let w = run_scenario(&wide_big);
        // The x8 gateway lifts the ceiling until the next stage binds
        // (~1.4x on this deployment).
        assert!(
            w.outcome.ior().outcome.summary.mean > 1.3 * b.outcome.ior().outcome.summary.mean,
            "gateway x8 should lift the ceiling: {} vs {}",
            w.outcome.ior().outcome.summary.mean,
            b.outcome.ior().outcome.summary.mean
        );
        // Small scale is unaffected by design only in direction, but
        // both must stay valid runs.
        assert!(wide.outcome.ior().outcome.summary.mean >= base.outcome.ior().outcome.summary.mean);
        assert_eq!(b.ppn, 44, "full_node resolves Lassen's 44 ppn");
    }

    #[test]
    fn deck_runs_mixed_axes_in_order() {
        let mut deck = Deck::single("t", smoke_scenario("vast-lassen"));
        deck.axes.systems = vec!["vast-lassen".into(), "gpfs".into()];
        deck.axes.nodes = vec![1, 2];
        let result = run_deck(&deck);
        assert_eq!(result.points.len(), 4);
        let groups = result.by_system();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "VAST");
        assert_eq!(groups[1].0, "GPFS");
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[0].1[1].nodes, 2);
    }

    #[test]
    fn deck_results_serde_round_trip() {
        let mut deck = Deck::single(
            "meta",
            Scenario::new("gpfs", Workload::Mdtest(MdtestConfig::new(1, 4))),
        );
        deck.base.reps = Some(2);
        let result = run_deck(&deck);
        let back: DeckResult =
            serde_json::from_str(&serde_json::to_string(&result).unwrap()).unwrap();
        assert_eq!(back, result);
        assert!(result.points[0].outcome.headline().contains("ops/s"));
    }

    #[test]
    fn metered_deck_matches_plain_outcomes() {
        let mut deck = Deck::single("t", smoke_scenario("vast-lassen"));
        deck.axes.nodes = vec![1, 2];
        let plain = run_deck(&deck);
        let metered = run_deck_with_metrics(&deck);
        assert_eq!(plain.points.len(), metered.points.len());
        for (p, m) in plain.points.iter().zip(&metered.points) {
            assert_eq!(p.outcome, m.outcome, "metering must not perturb outcomes");
            assert!(p.metrics.is_none());
            let pm = m.metrics.as_ref().expect("metered points carry metrics");
            assert!(pm.decomposition.total_runtime > 0.0);
            assert!(!pm.bottlenecks.is_empty());
            assert!(pm.solver_epochs > 0);
        }
        let summary = metered.metrics.as_ref().expect("full deck summarizes");
        assert_eq!(summary.unit, "B/s");
        assert_eq!(summary.winner.as_deref(), Some("VAST"));
        assert_eq!(summary.factor, 1.0, "single system has no runner-up");
        // Un-metered serialization must not even mention the field.
        assert!(!serde_json::to_string(&plain)
            .unwrap()
            .contains("\"metrics\""));
    }

    #[test]
    fn traced_deck_matches_untraced_results() {
        let deck = Deck::single("t", smoke_scenario("lustre-ruby"));
        let plain = run_deck(&deck);
        let mut rec = Recorder::new();
        let traced = run_deck_traced(&deck, &mut rec);
        assert_eq!(plain, traced);
        assert!(!rec.to_chrome_json().is_empty());
    }

    fn gateway_outage(start: f64, end: f64) -> hcs_core::FaultSpec {
        hcs_core::FaultSpec::outage(StageKind::Gateway, start, end)
    }

    #[test]
    fn faulted_deck_completes_and_carries_resilience() {
        let mut deck = Deck::single("fault-t", smoke_scenario("vast-lassen"));
        deck.axes.fault_sets = vec![Vec::new(), vec![gateway_outage(0.05, 0.15)]];
        let result = run_deck_with_metrics(&deck);
        assert_eq!(result.points.len(), 2);
        let free = &result.points[0];
        let faulted = &result.points[1];
        assert!(free.metrics.as_ref().unwrap().resilience.is_none());
        let res = faulted
            .metrics
            .as_ref()
            .unwrap()
            .resilience
            .as_ref()
            .expect("faulted point carries resilience");
        assert!(res.slowdown_factor > 1.0, "{}", res.slowdown_factor);
        assert!((res.stall_seconds - 0.1).abs() < 1e-9);
        assert_eq!(res.fault_events, 2);
        // The faulted point's twin is the fault-free sibling.
        let free_bw = free.outcome.ior().outcome.summary.mean;
        let faulted_bw = faulted.outcome.ior().outcome.summary.mean;
        assert!((free_bw / faulted_bw - res.slowdown_factor).abs() < 1e-9);
    }

    #[test]
    fn fault_free_artifacts_never_mention_fault_fields() {
        let mut deck = Deck::single("t", smoke_scenario("vast-lassen"));
        deck.axes.nodes = vec![1, 2];
        let json = serde_json::to_string(&run_deck_with_metrics(&deck)).unwrap();
        assert!(!json.contains("\"resilience\""), "byte-compat broken");
        assert!(!json.contains("\"faults\""), "byte-compat broken");
        // Closed-loop runs must not mention the open-loop fields either.
        assert!(!json.contains("\"arrival\""), "byte-compat broken");
        assert!(!json.contains("\"latency\""), "byte-compat broken");
        assert!(!json.contains("\"knees\""), "byte-compat broken");
    }

    fn open_scenario(system: &str, rate: f64) -> Scenario {
        smoke_scenario(system).with_arrival(Arrival::Open {
            rate,
            discipline: hcs_core::Discipline::Poisson,
            duration: 0.4,
            seed: 7,
        })
    }

    #[test]
    fn open_loop_deck_carries_latency_and_knees() {
        let mut deck = Deck::single("sat", open_scenario("vast-lassen", 1.0));
        deck.axes.offered_load = vec![50.0, 2000.0];
        assert_eq!(validate_deck(&deck), Ok(()));
        let result = run_deck_with_metrics(&deck);
        assert_eq!(result.points.len(), 2);
        let p99s: Vec<f64> = result
            .points
            .iter()
            .map(|p| {
                let rows = &p.metrics.as_ref().unwrap().latency;
                assert_eq!(rows.len(), 1, "one op class per IOR phase");
                assert_eq!(rows[0].op, "read");
                assert!(!rows[0].histogram.is_empty());
                rows[0].histogram.p99().expect("non-empty")
            })
            .collect();
        assert!(
            p99s[1] >= p99s[0],
            "p99 must not improve under load: {p99s:?}"
        );
        let summary = result.metrics.as_ref().expect("metered deck summarizes");
        assert_eq!(summary.knees.len(), 1);
        assert_eq!(summary.knees[0].system, "VAST");
        assert_eq!(summary.knees[0].baseline_rate, 50.0);
        // A metered open-loop run reproduces the un-metered outcome.
        let plain = run_deck(&deck);
        for (p, m) in plain.points.iter().zip(&result.points) {
            assert_eq!(p.outcome, m.outcome, "metering must not perturb outcomes");
        }
    }

    #[test]
    fn open_loop_composes_with_faults_in_the_executor() {
        let calm = Deck::single("calm", open_scenario("vast-lassen", 200.0));
        let mut stormy = Deck::single("stormy", open_scenario("vast-lassen", 200.0));
        stormy.base.faults = vec![gateway_outage(0.1, 0.25)];
        assert_eq!(validate_deck(&stormy), Ok(()));
        let calm_p99 = run_deck_with_metrics(&calm).points[0]
            .metrics
            .as_ref()
            .unwrap()
            .latency[0]
            .histogram
            .p99()
            .unwrap();
        let stormy_p99 = run_deck_with_metrics(&stormy).points[0]
            .metrics
            .as_ref()
            .unwrap()
            .latency[0]
            .histogram
            .p99()
            .unwrap();
        assert!(
            stormy_p99 > calm_p99,
            "a mid-run outage must push the tail out: {stormy_p99} vs {calm_p99}"
        );
    }

    #[test]
    fn provenance_deck_decomposes_latency_and_blames_the_knee() {
        let mut deck = Deck::single("sat", open_scenario("vast-lassen", 1.0));
        deck.axes.offered_load = vec![50.0, 2000.0];
        assert_eq!(validate_provenance(&deck), Ok(()));
        let result = run_deck_with_provenance(&deck);
        for p in &result.points {
            let m = p.metrics.as_ref().expect("provenance deck is metered");
            let prov = m.provenance.as_ref().expect("provenance deck decomposes");
            assert!(prov.ops > 0);
            let reassembled = prov.queueing_seconds
                + prov.stall_seconds
                + prov.blame_seconds
                + prov.ideal_seconds;
            assert!(
                (reassembled - prov.latency_seconds).abs() <= 1e-9 * prov.latency_seconds,
                "shares must reassemble the measured latency: {} vs {}",
                reassembled,
                prov.latency_seconds
            );
        }
        let summary = result.metrics.as_ref().expect("provenance deck summarizes");
        assert_eq!(summary.knees.len(), 1);
        let knee = &summary.knees[0];
        assert!(
            knee.knee_rate.is_some(),
            "2000 ops/s saturates the smoke rig"
        );
        assert!(
            knee.knee_blame.is_some(),
            "a provenance-backed knee names the stage whose blame grew"
        );
        // The probe is a pure listener: outcomes match the plain run.
        let plain = run_deck(&deck);
        for (p, m) in plain.points.iter().zip(&result.points) {
            assert_eq!(p.outcome, m.outcome, "provenance must not perturb outcomes");
        }
    }

    #[test]
    fn validate_provenance_names_unsupported_points() {
        let closed = Deck::single("c", smoke_scenario("vast-lassen"));
        let err = validate_provenance(&closed).unwrap_err();
        assert!(err.contains("open-loop arrivals"), "{err}");

        let family = Deck::single(
            "f",
            Scenario::new("gpfs", Workload::Mdtest(MdtestConfig::new(1, 4))),
        );
        let err = validate_provenance(&family).unwrap_err();
        assert!(err.contains("IOR family only"), "{err}");
    }

    #[test]
    fn validate_deck_names_bad_arrival_specs() {
        let mut closed_sweep = Deck::single("c", smoke_scenario("vast-lassen"));
        closed_sweep.axes.offered_load = vec![100.0];
        let err = validate_deck(&closed_sweep).unwrap_err();
        assert!(err.contains("sweeps offered_load"), "{err}");

        let family = Deck::single(
            "f",
            Scenario::new("gpfs", Workload::Mdtest(MdtestConfig::new(1, 4))).with_arrival(
                Arrival::Open {
                    rate: 100.0,
                    discipline: hcs_core::Discipline::Poisson,
                    duration: 1.0,
                    seed: 0,
                },
            ),
        );
        let err = validate_deck(&family).unwrap_err();
        assert!(
            err.contains("open-loop arrivals support the IOR family only (got mdtest)"),
            "{err}"
        );

        let zero_rate = Deck::single("z", open_scenario("vast-lassen", 0.0));
        let err = validate_deck(&zero_rate).unwrap_err();
        assert!(
            err.contains("arrival rate must be finite and positive"),
            "{err}"
        );
    }

    #[test]
    fn validate_deck_accepts_good_and_names_bad() {
        let mut good = Deck::single("g", smoke_scenario("vast-lassen"));
        good.base.faults = vec![gateway_outage(1.0, 2.0)];
        assert_eq!(validate_deck(&good), Ok(()));

        let unknown = Deck::single("u", smoke_scenario("betafs"));
        let err = validate_deck(&unknown).unwrap_err();
        assert!(err.contains("unknown system 'betafs'"), "{err}");

        let mut missing = Deck::single("m", smoke_scenario("nvme"));
        missing.base.faults = vec![gateway_outage(1.0, 2.0)];
        let err = validate_deck(&missing).unwrap_err();
        assert!(err.contains("fault targets no planned stage"), "{err}");

        let mut window = Deck::single("w", smoke_scenario("vast-lassen"));
        window.base.faults = vec![gateway_outage(2.0, 1.0)];
        let err = validate_deck(&window).unwrap_err();
        assert!(err.contains("end must be finite and after start"), "{err}");

        let mut family = Deck::single(
            "f",
            Scenario::new("gpfs", Workload::Mdtest(MdtestConfig::new(1, 4))),
        );
        family.base.faults = vec![gateway_outage(1.0, 2.0)];
        let err = validate_deck(&family).unwrap_err();
        assert!(err.contains("IOR family only"), "{err}");
    }

    #[test]
    fn traced_faulted_deck_matches_untraced() {
        let mut deck = Deck::single("fault-t", smoke_scenario("vast-lassen"));
        deck.base.faults = vec![gateway_outage(0.05, 0.15)];
        let plain = run_deck(&deck);
        let mut rec = Recorder::new();
        let traced = run_deck_traced(&deck, &mut rec);
        assert_eq!(plain, traced);
        assert!(rec.to_chrome_json().contains("faulted"));
    }
}
