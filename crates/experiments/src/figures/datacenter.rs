//! The datacenter saturation showcase deck — the `--scale datacenter`
//! flagship (shipped as `examples/scenarios/datacenter.saturation.json`).
//!
//! A node sweep from 10^5 to 10^6 clients (1 ppn) against the
//! VAST-on-Lassen deployment. At these counts the planner compiles node
//! equivalence classes instead of per-node resources — the whole sweep
//! is a handful of aggregate flows per point, so a 10^6-client point
//! plans and runs in seconds where the expanded plan would materialize
//! a million resources. Per-rank geometry is the smoke config: the
//! point of the deck is client *count*, not bytes moved per rank.

use hcs_core::scenario::{IorConfig, Scenario, Workload, WorkloadClass};
use hcs_core::Deck;

/// The `datacenter.saturation` deck: 10^5–10^6 clients, 1 ppn.
pub fn deck() -> Deck {
    let base = Scenario::new(
        "vast-lassen",
        Workload::Ior(IorConfig::smoke(WorkloadClass::Scientific, 1, 1)),
    );
    let mut deck = Deck::single("datacenter.saturation", base).with_title(
        "Datacenter saturation: IOR seq-write, 10^5-10^6 clients on VAST (equivalence-class plan)",
    );
    deck.axes.nodes = vec![100_000, 250_000, 500_000, 1_000_000];
    deck.axes.ppn = vec![1];
    deck
}
