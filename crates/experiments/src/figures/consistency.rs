//! Run-to-run consistency (§IV.C): "Our experiments are not performed
//! in an isolated environment and all file systems, including VAST, are
//! shared ... To test performance consistency in the shared environment
//! we repeated our tests 10 times."
//!
//! This figure reports each deployment's coefficient of variation over
//! the 10 repetitions of the paper's scalability workload — the
//! dedicated appliance should sit measurably below the facility's
//! shared parallel file systems.

use hcs_core::StorageSystem;
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

use crate::series::{Figure, Point, Series};
use crate::sweep::{parallel_sweep, Scale};

/// Generates the consistency figure: CV (%) of repeated runs per
/// deployment.
pub fn generate(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "consistency",
        "Run-to-run variability over 10 repetitions (coefficient of variation)",
        "variant (0=VAST/TCP 1=VAST/RDMA 2=GPFS 3=Lustre 4=NVMe)",
        "CV (%)",
    );
    let tcp = vast_on_lassen();
    let rdma = vast_on_wombat();
    let gpfs = GpfsConfig::on_lassen();
    let lustre = LustreConfig::on_ruby();
    let nvme = LocalNvmeConfig::on_wombat();
    let systems: [(&dyn StorageSystem, u32, f64); 5] = [
        (&tcp, 44, 0.0),
        (&rdma, 48, 1.0),
        (&gpfs, 44, 2.0),
        (&lustre, 56, 3.0),
        (&nvme, 48, 4.0),
    ];
    let _ = scale;
    let points = parallel_sweep(systems.to_vec(), |&(sys, ppn, x)| {
        let mut cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 4, ppn);
        cfg.reps = 10; // the paper's repetition count, at every scale
        let rep = run_ior(sys, &cfg);
        let cv = rep.outcome.summary.std_dev / rep.outcome.summary.mean * 100.0;
        Point::new(x, cv)
    });
    fig.series.push(Series {
        label: "CV over 10 reps".into(),
        points,
    });
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_systems_wobble_more_than_dedicated() {
        let f = generate(Scale::Smoke);
        let s = &f.series[0];
        let gpfs_cv = s.y_at(2.0).unwrap();
        let nvme_cv = s.y_at(4.0).unwrap();
        let rdma_cv = s.y_at(1.0).unwrap();
        assert!(
            gpfs_cv > nvme_cv,
            "the facility file system varies more than dedicated drives: {gpfs_cv} vs {nvme_cv}"
        );
        assert!(gpfs_cv > rdma_cv);
        // Everything stays single-digit percent — the paper reports
        // consistent results across its 10 repetitions.
        for p in &s.points {
            assert!(p.y < 15.0, "CV runaway: {}", p.y);
        }
    }
}
