//! Run-to-run consistency (§IV.C): "Our experiments are not performed
//! in an isolated environment and all file systems, including VAST, are
//! shared ... To test performance consistency in the shared environment
//! we repeated our tests 10 times."
//!
//! This figure reports each deployment's coefficient of variation over
//! the 10 repetitions of the paper's scalability workload — the
//! dedicated appliance should sit measurably below the facility's
//! shared parallel file systems.

use hcs_core::scenario::{IorConfig, Scenario, Workload, WorkloadClass};
use hcs_core::Deck;

use crate::deck::run_deck;
use crate::series::{Figure, Point, Series};
use crate::sweep::Scale;

/// The consistency deck: one 4-node full-node point per deployment,
/// always at the paper's 10 repetitions.
pub fn deck() -> Deck {
    let base = Scenario::new(
        "vast-lassen",
        Workload::Ior(IorConfig::paper_scalability(
            WorkloadClass::DataAnalytics,
            4,
            44,
        )),
    )
    .with_reps(10) // the paper's repetition count, at every scale
    .at_full_node();
    let mut deck = Deck::single("consistency", base)
        .with_title("Run-to-run variability over 10 repetitions (coefficient of variation)");
    deck.axes.systems = vec![
        "vast-lassen".into(),
        "vast-wombat".into(),
        "gpfs".into(),
        "lustre-ruby".into(),
        "nvme".into(),
    ];
    deck
}

/// Generates the consistency figure: CV (%) of repeated runs per
/// deployment.
pub fn generate(scale: Scale) -> Figure {
    let _ = scale;
    let result = run_deck(&deck());
    let mut fig = Figure::new(
        result.name.clone(),
        result.title.clone(),
        "variant (0=VAST/TCP 1=VAST/RDMA 2=GPFS 3=Lustre 4=NVMe)",
        "CV (%)",
    );
    let points = result
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let s = &p.outcome.ior().outcome.summary;
            Point::new(i as f64, s.std_dev / s.mean * 100.0)
        })
        .collect();
    fig.series.push(Series {
        label: "CV over 10 reps".into(),
        points,
    });
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_systems_wobble_more_than_dedicated() {
        let f = generate(Scale::Smoke);
        let s = &f.series[0];
        let gpfs_cv = s.y_at(2.0).unwrap();
        let nvme_cv = s.y_at(4.0).unwrap();
        let rdma_cv = s.y_at(1.0).unwrap();
        assert!(
            gpfs_cv > nvme_cv,
            "the facility file system varies more than dedicated drives: {gpfs_cv} vs {nvme_cv}"
        );
        assert!(gpfs_cv > rdma_cv);
        // Everything stays single-digit percent — the paper reports
        // consistent results across its 10 repetitions.
        for p in &s.points {
            assert!(p.y < 15.0, "CV runaway: {}", p.y);
        }
    }
}
