//! Fig 2 — "Scalability test results for scientific simulations, data
//! analytics and ML applications."
//!
//! Panel (a): Lassen, VAST vs GPFS, full nodes (44 ppn), 1–128 nodes.
//! Panel (b): Wombat, VAST vs NVMe, full nodes (48 ppn), 1–8 nodes.
//! Three workloads each (§V): sequential write, sequential read,
//! random read — all with the paper's IOR geometry (1 MiB block and
//! transfer, 3,000 segments, task reordering, 10 reps).

use hcs_core::scenario::{IorConfig, Scenario, Workload, WorkloadClass};
use hcs_core::Deck;

use crate::deck::run_deck;
use crate::figures::{ior_bandwidth_figure, workload_tag};
use crate::series::Figure;
use crate::sweep::Scale;

/// One panel as a deck: sweep systems × node counts.
fn deck(
    id: &str,
    title: &str,
    systems: &[&str],
    nodes: &[u32],
    ppn: u32,
    workload: WorkloadClass,
    reps: u32,
) -> Deck {
    let base = Scenario::new(
        systems[0],
        Workload::Ior(IorConfig::paper_scalability(workload, 1, ppn)),
    )
    .with_reps(reps);
    let mut deck = Deck::single(format!("{id}.{}", workload_tag(workload)), base)
        .with_title(format!("{title} — {}", workload.label()));
    deck.axes.systems = systems.iter().map(|s| s.to_string()).collect();
    deck.axes.nodes = nodes.to_vec();
    deck
}

/// The six Fig 2 decks (two panels × three workloads), in figure order.
pub fn decks(scale: Scale) -> Vec<Deck> {
    let mut decks = Vec::new();
    for w in WorkloadClass::all() {
        decks.push(deck(
            "fig2a",
            "Scalability on Lassen (44 ppn)",
            &["vast-lassen", "gpfs"],
            &scale.lassen_nodes(),
            44,
            w,
            scale.reps(),
        ));
        decks.push(deck(
            "fig2b",
            "Scalability on Wombat (48 ppn)",
            &["vast-wombat", "nvme"],
            &scale.wombat_nodes(),
            48,
            w,
            scale.reps(),
        ));
    }
    decks
}

/// Generates Fig 2a and Fig 2b (three workloads each → six figures).
pub fn generate(scale: Scale) -> Vec<Figure> {
    decks(scale)
        .iter()
        .map(|d| {
            ior_bandwidth_figure(&run_deck(d), "nodes", "aggregate bandwidth (GB/s)", |p| {
                p.nodes as f64
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn fig2_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        assert_eq!(figs.len(), 6);

        // Panel a, sequential reads: GPFS dominates TCP VAST (§V.B).
        let a_da = figs
            .iter()
            .find(|f| f.id == "fig2a.analytics")
            .expect("fig2a analytics");
        let gpfs = a_da.series_named("GPFS").unwrap();
        let vast = a_da.series_named("VAST").unwrap();
        assert!(shapes::dominates(gpfs, vast));

        // VAST on Lassen flattens at the gateway (~25 GB/s).
        assert!(vast.y_max() < 30.0, "VAST@Lassen ceiling: {}", vast.y_max());

        // Panel b, ML: VAST wins small scales, NVMe wins at 8 nodes
        // ("VAST is able to outperform the NVMe on small scales").
        let b_ml = figs.iter().find(|f| f.id == "fig2b.ml").expect("fig2b ml");
        let vast_w = b_ml.series_named("VAST").unwrap();
        let nvme = b_ml.series_named("NVMe").unwrap();
        assert!(vast_w.y_at(1.0).unwrap() > nvme.y_at(1.0).unwrap());
        assert!(nvme.y_at(8.0).unwrap() > vast_w.y_at(8.0).unwrap());
    }
}
