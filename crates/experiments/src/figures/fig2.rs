//! Fig 2 — "Scalability test results for scientific simulations, data
//! analytics and ML applications."
//!
//! Panel (a): Lassen, VAST vs GPFS, full nodes (44 ppn), 1–128 nodes.
//! Panel (b): Wombat, VAST vs NVMe, full nodes (48 ppn), 1–8 nodes.
//! Three workloads each (§V): sequential write, sequential read,
//! random read — all with the paper's IOR geometry (1 MiB block and
//! transfer, 3,000 segments, task reordering, 10 reps).

use hcs_core::StorageSystem;
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_nvme::LocalNvmeConfig;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

use crate::series::{Figure, Point, Series};
use crate::sweep::{parallel_sweep, Scale};

fn workload_tag(w: WorkloadClass) -> &'static str {
    match w {
        WorkloadClass::Scientific => "scientific",
        WorkloadClass::DataAnalytics => "analytics",
        WorkloadClass::MachineLearning => "ml",
    }
}

/// One panel: sweep node counts for each system.
fn panel(
    id: &str,
    title: &str,
    systems: &[&dyn StorageSystem],
    nodes: &[u32],
    ppn: u32,
    workload: WorkloadClass,
    reps: u32,
) -> Figure {
    let mut fig = Figure::new(
        format!("{id}.{}", workload_tag(workload)),
        format!("{title} — {}", workload.label()),
        "nodes",
        "aggregate bandwidth (GB/s)",
    );
    for sys in systems {
        let points = parallel_sweep(nodes.to_vec(), |&n| {
            let mut cfg = IorConfig::paper_scalability(workload, n, ppn);
            cfg.reps = reps;
            let rep = run_ior(*sys, &cfg);
            Point {
                x: n as f64,
                y: rep.outcome.summary.mean / 1e9,
                y_std: rep.outcome.summary.std_dev / 1e9,
            }
        });
        fig.series.push(Series {
            label: sys.name().to_string(),
            points,
        });
    }
    fig
}

/// Generates Fig 2a and Fig 2b (three workloads each → six figures).
pub fn generate(scale: Scale) -> Vec<Figure> {
    let vast_l = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    let vast_w = vast_on_wombat();
    let nvme = LocalNvmeConfig::on_wombat();

    let mut figs = Vec::new();
    for w in WorkloadClass::all() {
        figs.push(panel(
            "fig2a",
            "Scalability on Lassen (44 ppn)",
            &[&vast_l, &gpfs],
            &scale.lassen_nodes(),
            44,
            w,
            scale.reps(),
        ));
        figs.push(panel(
            "fig2b",
            "Scalability on Wombat (48 ppn)",
            &[&vast_w, &nvme],
            &scale.wombat_nodes(),
            48,
            w,
            scale.reps(),
        ));
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn fig2_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        assert_eq!(figs.len(), 6);

        // Panel a, sequential reads: GPFS dominates TCP VAST (§V.B).
        let a_da = figs
            .iter()
            .find(|f| f.id == "fig2a.analytics")
            .expect("fig2a analytics");
        let gpfs = a_da.series_named("GPFS").unwrap();
        let vast = a_da.series_named("VAST").unwrap();
        assert!(shapes::dominates(gpfs, vast));

        // VAST on Lassen flattens at the gateway (~25 GB/s).
        assert!(vast.y_max() < 30.0, "VAST@Lassen ceiling: {}", vast.y_max());

        // Panel b, ML: VAST wins small scales, NVMe wins at 8 nodes
        // ("VAST is able to outperform the NVMe on small scales").
        let b_ml = figs.iter().find(|f| f.id == "fig2b.ml").expect("fig2b ml");
        let vast_w = b_ml.series_named("VAST").unwrap();
        let nvme = b_ml.series_named("NVMe").unwrap();
        assert!(vast_w.y_at(1.0).unwrap() > nvme.y_at(1.0).unwrap());
        assert!(nvme.y_at(8.0).unwrap() > vast_w.y_at(8.0).unwrap());
    }
}
