//! Fig 5 — "ResNet-50 Throughput": (a) application throughput, (b)
//! system throughput, VAST vs GPFS, weak scaling (§VI.B).
//!
//! "Although the system throughput looks very different for the two
//! file systems, the throughput that the application perceives is only
//! slightly higher for GPFS compared to that of VAST, with the
//! difference becoming more apparent only for larger scales."

use hcs_core::Deck;
use hcs_dlio::resnet50;

use crate::deck::{run_deck, DeckResult};
use crate::figures::fig4::{apply_scale, dlio_deck};
use crate::series::{Figure, Point, Series};
use crate::sweep::Scale;

/// The Fig 5 deck (one run per point feeds both panels).
pub fn deck(scale: Scale) -> Deck {
    let cfg = apply_scale(resnet50(), scale);
    dlio_deck(
        "fig5",
        format!("{} throughput", cfg.name),
        cfg,
        &scale.resnet_nodes(),
    )
}

/// Converts an executed DLIO deck into the (application, system)
/// throughput panels.
pub(crate) fn throughput_figures(result: &DeckResult, id_app: &str, id_sys: &str) -> Vec<Figure> {
    let name = result
        .points
        .first()
        .map(|p| p.outcome.dlio().workload.clone())
        .unwrap_or_default();
    let mut app = Figure::new(
        id_app,
        format!("{name} application throughput"),
        "nodes",
        "samples/s",
    );
    let mut sysfig = Figure::new(
        id_sys,
        format!("{name} system throughput"),
        "nodes",
        "samples/s",
    );
    for (label, points) in result.by_system() {
        app.series.push(Series {
            label: label.clone(),
            points: points
                .iter()
                .map(|p| Point::new(p.nodes as f64, p.outcome.dlio().app_throughput))
                .collect(),
        });
        sysfig.series.push(Series {
            label,
            points: points
                .iter()
                .map(|p| Point::new(p.nodes as f64, p.outcome.dlio().system_throughput))
                .collect(),
        });
    }
    vec![app, sysfig]
}

/// Generates Fig 5a and Fig 5b.
pub fn generate(scale: Scale) -> Vec<Figure> {
    throughput_figures(&run_deck(&deck(scale)), "fig5a", "fig5b")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        let app = &figs[0];
        let sys = &figs[1];
        let last = app.series_named("VAST").unwrap().points.last().unwrap().x;

        // App throughput: GPFS only slightly ahead.
        let g_app = app.series_named("GPFS").unwrap().y_at(last).unwrap();
        let v_app = app.series_named("VAST").unwrap().y_at(last).unwrap();
        assert!(g_app >= v_app * 0.99, "GPFS at least matches VAST");
        assert!(g_app < v_app * 1.4, "but only slightly: {}", g_app / v_app);

        // System throughput: wildly different (§VI.B).
        let g_sys = sys.series_named("GPFS").unwrap().y_at(last).unwrap();
        let v_sys = sys.series_named("VAST").unwrap().y_at(last).unwrap();
        assert!(g_sys > 2.0 * v_sys, "system ratio = {}", g_sys / v_sys);
    }
}
