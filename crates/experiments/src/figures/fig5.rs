//! Fig 5 — "ResNet-50 Throughput": (a) application throughput, (b)
//! system throughput, VAST vs GPFS, weak scaling (§VI.B).
//!
//! "Although the system throughput looks very different for the two
//! file systems, the throughput that the application perceives is only
//! slightly higher for GPFS compared to that of VAST, with the
//! difference becoming more apparent only for larger scales."

use hcs_core::StorageSystem;
use hcs_dlio::{resnet50, run_dlio, DlioConfig};
use hcs_gpfs::GpfsConfig;
use hcs_vast::vast_on_lassen;

use crate::series::{Figure, Point, Series};
use crate::sweep::{parallel_sweep, Scale};

/// Builds the (app, system) throughput panels for a DLIO workload.
pub(crate) fn throughput_panels(
    id_app: &str,
    id_sys: &str,
    cfg: &DlioConfig,
    systems: &[&dyn StorageSystem],
    nodes: &[u32],
) -> Vec<Figure> {
    let mut app = Figure::new(
        id_app,
        format!("{} application throughput", cfg.name),
        "nodes",
        "samples/s",
    );
    let mut sysfig = Figure::new(
        id_sys,
        format!("{} system throughput", cfg.name),
        "nodes",
        "samples/s",
    );
    for s in systems {
        let results = parallel_sweep(nodes.to_vec(), |&n| run_dlio(*s, cfg, n));
        app.series.push(Series {
            label: s.name().to_string(),
            points: nodes
                .iter()
                .zip(&results)
                .map(|(&n, r)| Point::new(n as f64, r.app_throughput))
                .collect(),
        });
        sysfig.series.push(Series {
            label: s.name().to_string(),
            points: nodes
                .iter()
                .zip(&results)
                .map(|(&n, r)| Point::new(n as f64, r.system_throughput))
                .collect(),
        });
    }
    vec![app, sysfig]
}

/// Generates Fig 5a and Fig 5b.
pub fn generate(scale: Scale) -> Vec<Figure> {
    let vast = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    let systems: [&dyn StorageSystem; 2] = [&vast, &gpfs];
    let mut cfg = resnet50();
    if let Some(samples) = scale.dlio_samples() {
        cfg.samples = cfg.samples.min(samples);
    }
    throughput_panels("fig5a", "fig5b", &cfg, &systems, &scale.resnet_nodes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        let app = &figs[0];
        let sys = &figs[1];
        let last = app.series_named("VAST").unwrap().points.last().unwrap().x;

        // App throughput: GPFS only slightly ahead.
        let g_app = app.series_named("GPFS").unwrap().y_at(last).unwrap();
        let v_app = app.series_named("VAST").unwrap().y_at(last).unwrap();
        assert!(g_app >= v_app * 0.99, "GPFS at least matches VAST");
        assert!(g_app < v_app * 1.4, "but only slightly: {}", g_app / v_app);

        // System throughput: wildly different (§VI.B).
        let g_sys = sys.series_named("GPFS").unwrap().y_at(last).unwrap();
        let v_sys = sys.series_named("VAST").unwrap().y_at(last).unwrap();
        assert!(g_sys > 2.0 * v_sys, "system ratio = {}", g_sys / v_sys);
    }
}
