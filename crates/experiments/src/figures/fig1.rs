//! Fig 1 — "The differences between VAST and GPFS on Lassen."
//!
//! The paper's Fig 1 is a pair of architecture diagrams. Here they are
//! *generated from the configuration structs*, so the rendering always
//! matches what the simulation actually wires up: component counts,
//! link widths and the path a request crosses.

use hcs_gpfs::GpfsConfig;
use hcs_vast::VastConfig;

/// Renders the VAST-on-Lassen architecture panel (Fig 1a) from a
/// configuration.
pub fn render_vast(cfg: &VastConfig) -> String {
    let gw = cfg
        .gateway
        .as_ref()
        .map(|g| {
            format!(
                "{} gateway node(s), {} ({:.1} GB/s each)",
                g.count,
                g.uplink.name,
                g.uplink.bandwidth / 1e9
            )
        })
        .unwrap_or_else(|| "direct fabric attach (no gateway)".into());
    format!(
        "Fig 1a — {label}\n\
         \n\
         compute nodes ({transport:?} mount, {nstream} connection(s)/node)\n\
              |\n\
              v\n\
         {gw}\n\
              |\n\
              v\n\
         {cnodes} CNodes (stateless NFS servers; write path runs similarity\n\
         reduction at {wbw:.1} GB/s per CNode, reads at {rbw:.1} GB/s)\n\
              |  NVMe-oF fabric: {fabric:.1} GB/s per DBox\n\
              v\n\
         {dboxes} DBoxes x {dnodes} DNodes ({fwd:.1} GB/s forwarding each)\n\
             SCM: {scm} x {scm_name}\n\
             QLC: {qlc} x {qlc_name}\n",
        label = cfg.label,
        transport = cfg.transport.kind,
        nstream = cfg.transport.nconnect,
        gw = gw,
        cnodes = cfg.cnodes,
        wbw = cfg.cnode_write_bw / 1e9,
        rbw = cfg.cnode_read_bw / 1e9,
        fabric = cfg.fabric_bw_per_dbox / 1e9,
        dboxes = cfg.dboxes,
        dnodes = cfg.dnodes_per_dbox,
        fwd = cfg.dnode_forward_bw / 1e9,
        scm = cfg.dboxes * cfg.scm_per_dbox,
        scm_name = cfg.scm.name,
        qlc = cfg.dboxes * cfg.qlc_per_dbox,
        qlc_name = cfg.qlc.name,
    )
}

/// Renders the GPFS-on-Lassen architecture panel (Fig 1b) from a
/// configuration.
pub fn render_gpfs(cfg: &GpfsConfig) -> String {
    format!(
        "Fig 1b — {label}\n\
         \n\
         compute nodes (native GPFS client; read engine {rd:.1} GB/s,\n\
         write-behind {wr:.1} GB/s per node)\n\
              |  InfiniBand SAN\n\
              v\n\
         {servers} NSD servers ({sbw:.1} GB/s each)\n\
              |  read-ahead / pagepool cache: {cbw:.0} GB/s, seq hit {hit:.0}%\n\
              v\n\
         {hdds} SAS HDDs in declustered parity groups ({layout:?})\n",
        label = cfg.label,
        rd = cfg.client_read_bw / 1e9,
        wr = cfg.client_write_bw / 1e9,
        servers = cfg.nsd_servers,
        sbw = cfg.server_bw / 1e9,
        cbw = cfg.server_cache.bandwidth / 1e9,
        hit = cfg.server_cache.seq_hit_ratio * 100.0,
        hdds = cfg.hdd_count,
        layout = cfg.layout,
    )
}

/// Both panels, from the paper's Lassen deployments.
pub fn render() -> String {
    let vast = hcs_vast::vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    format!("{}\n{}", render_vast(&vast), render_gpfs(&gpfs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reflects_the_configs() {
        let out = render();
        // Panel (a): the §IV.B component counts.
        assert!(out.contains("16 CNodes"));
        assert!(out.contains("5 DBoxes"));
        assert!(out.contains("110 x Hyperscale QLC SSD"));
        assert!(out.contains("30 x SCM SSD"));
        assert!(out.contains("1 gateway node(s)"));
        // Panel (b).
        assert!(out.contains("16 NSD servers"));
        assert!(out.contains("SAS HDDs"));
        assert!(out.contains("read-ahead"));
    }

    #[test]
    fn fig1_tracks_config_changes() {
        let mut v = hcs_vast::vast_on_wombat();
        v.cnodes = 3;
        let out = render_vast(&v);
        assert!(out.contains("3 CNodes"));
        assert!(out.contains("no gateway"));
    }
}
