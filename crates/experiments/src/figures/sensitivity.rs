//! Calibration sensitivity analysis.
//!
//! A simulation-based reproduction is only credible if its qualitative
//! conclusions do not hinge on the exact calibration constants. This
//! harness perturbs each load-bearing constant by ±25 % and re-checks
//! the paper's three quantified takeaways. A claim that flips under a
//! 25 % nudge would be an artifact of calibration, not architecture;
//! none of the paper's takeaways do (see `EXPERIMENTS.md`).

use serde::{Deserialize, Serialize};

use hcs_core::scenario::{IorConfig, Workload, WorkloadClass};
use hcs_gpfs::GpfsConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_vast::{vast_on_lassen, vast_on_wombat, VastConfig};

use crate::deck::run_workload_on;
use crate::sweep::{parallel_sweep, Scale};

/// One perturbation case and the takeaway values measured under it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SensitivityCase {
    /// What was perturbed ("tcp_stream_bw x0.75", ...).
    pub label: String,
    /// RDMA-over-TCP per-node read advantage.
    pub rdma_over_tcp: f64,
    /// GPFS sequential→random drop.
    pub gpfs_drop: f64,
    /// VAST-over-NVMe single-node fsync-write advantage.
    pub vast_over_nvme: f64,
}

impl SensitivityCase {
    /// Do the paper's qualitative claims survive this perturbation?
    ///
    /// * RDMA beats TCP severalfold (≥3×),
    /// * GPFS drops most of its read bandwidth on random access (≥70 %),
    /// * VAST beats raw NVMe on single-node fsync writes (≥2×).
    pub fn claims_hold(&self) -> bool {
        self.rdma_over_tcp >= 3.0 && self.gpfs_drop >= 0.70 && self.vast_over_nvme >= 2.0
    }
}

/// The perturbation set: `(label, factor applier)`.
type Perturb = (&'static str, fn(&mut Knobs, f64));

/// Mutable calibration knobs under study.
struct Knobs {
    tcp: VastConfig,
    rdma: VastConfig,
    gpfs: GpfsConfig,
    nvme: LocalNvmeConfig,
}

impl Knobs {
    fn baseline() -> Self {
        Knobs {
            tcp: vast_on_lassen(),
            rdma: vast_on_wombat(),
            gpfs: GpfsConfig::on_lassen(),
            nvme: LocalNvmeConfig::on_wombat(),
        }
    }
}

fn measure(k: &Knobs, reps: u32) -> (f64, f64, f64) {
    // Every measurement runs through the deck executor's workload
    // dispatcher — the same path `hcs run` takes.
    let bandwidth = |sys: &dyn hcs_core::StorageSystem, cfg: IorConfig| {
        let (nodes, ppn) = (cfg.nodes, cfg.tasks_per_node);
        run_workload_on(sys, &Workload::Ior(cfg), nodes, ppn)
            .ior()
            .mean_bandwidth()
    };
    let per_node = |sys: &dyn hcs_core::StorageSystem, w, ppn| {
        let mut cfg = IorConfig::paper_scalability(w, 1, ppn);
        cfg.reps = reps;
        bandwidth(sys, cfg)
    };
    let rdma_over_tcp = per_node(&k.rdma, WorkloadClass::DataAnalytics, 48)
        / per_node(&k.tcp, WorkloadClass::DataAnalytics, 44);
    let gpfs_drop = 1.0
        - per_node(&k.gpfs, WorkloadClass::MachineLearning, 44)
            / per_node(&k.gpfs, WorkloadClass::DataAnalytics, 44);
    let mut sn = IorConfig::paper_single_node(WorkloadClass::Scientific, 32);
    sn.reps = reps;
    let vast_over_nvme = bandwidth(&k.rdma, sn.clone()) / bandwidth(&k.nvme, sn);
    (rdma_over_tcp, gpfs_drop, vast_over_nvme)
}

/// Runs the sensitivity study: baseline plus every knob × {0.75, 1.25}.
pub fn analyze(scale: Scale) -> Vec<SensitivityCase> {
    let perturbations: Vec<Perturb> = vec![
        ("tcp_stream_bw", |k, f| k.tcp.transport.per_stream_bw *= f),
        ("rdma_stream_bw", |k, f| k.rdma.transport.per_stream_bw *= f),
        ("cnode_write_bw", |k, f| k.rdma.cnode_write_bw *= f),
        ("dnode_forward_bw", |k, f| k.rdma.dnode_forward_bw *= f),
        ("gpfs_thrash_latency", |k, f| {
            k.gpfs.random_thrash_latency *= f
        }),
        ("gpfs_client_read_bw", |k, f| k.gpfs.client_read_bw *= f),
        ("nvme_sync_latency", |k, f| k.nvme.drive.sync_latency *= f),
        ("gateway_uplink", |k, f| {
            if let Some(g) = &mut k.tcp.gateway {
                g.uplink.bandwidth *= f;
            }
        }),
    ];

    let reps = scale.reps().min(3);
    let mut cases: Vec<(String, Option<(usize, f64)>)> = vec![("baseline".into(), None)];
    for (i, (name, _)) in perturbations.iter().enumerate() {
        for factor in [0.75, 1.25] {
            cases.push((format!("{name} x{factor}"), Some((i, factor))));
        }
    }

    parallel_sweep(cases, |(label, tweak)| {
        let mut k = Knobs::baseline();
        if let Some((idx, factor)) = tweak {
            (perturbations[*idx].1)(&mut k, *factor);
        }
        let (rdma_over_tcp, gpfs_drop, vast_over_nvme) = measure(&k, reps);
        SensitivityCase {
            label: label.clone(),
            rdma_over_tcp,
            gpfs_drop,
            vast_over_nvme,
        }
    })
}

/// Renders the study as a table.
pub fn render(cases: &[SensitivityCase]) -> String {
    let mut out =
        String::from("calibration sensitivity — the §VII claims under ±25% perturbations\n");
    out.push_str(&format!(
        "{:<28} {:>12} {:>10} {:>12} {:>8}\n",
        "case", "RDMA/TCP", "GPFS drop", "VAST/NVMe", "claims"
    ));
    for c in cases {
        out.push_str(&format!(
            "{:<28} {:>11.1}x {:>9.0}% {:>11.1}x {:>8}\n",
            c.label,
            c.rdma_over_tcp,
            c.gpfs_drop * 100.0,
            c.vast_over_nvme,
            if c.claims_hold() { "hold" } else { "FLIP" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_claim_flips_under_25_percent_perturbations() {
        let cases = analyze(Scale::Smoke);
        assert_eq!(cases.len(), 17); // baseline + 8 knobs × 2 factors
        for c in &cases {
            assert!(
                c.claims_hold(),
                "claim flipped under {}: rdma/tcp={:.1} drop={:.2} vast/nvme={:.1}",
                c.label,
                c.rdma_over_tcp,
                c.gpfs_drop,
                c.vast_over_nvme
            );
        }
    }

    #[test]
    fn perturbations_actually_move_the_numbers() {
        let cases = analyze(Scale::Smoke);
        let base = cases.iter().find(|c| c.label == "baseline").unwrap();
        let tcp_down = cases
            .iter()
            .find(|c| c.label == "tcp_stream_bw x0.75")
            .unwrap();
        assert!(
            tcp_down.rdma_over_tcp > base.rdma_over_tcp,
            "slower TCP must widen the RDMA advantage"
        );
        let sync_down = cases
            .iter()
            .find(|c| c.label == "nvme_sync_latency x0.75")
            .unwrap();
        assert!(
            sync_down.vast_over_nvme < base.vast_over_nvme,
            "cheaper NVMe flushes must shrink VAST's advantage"
        );
    }
}
