//! Ablation experiments beyond the paper — isolating the design choices
//! DESIGN.md calls out.
//!
//! The paper itself motivates the first of these (§V.A: "we plan on
//! deploying a custom VAST configuration on cloud-like resources ... to
//! test this" — the gateway-width hypothesis the authors could not test
//! on production hardware, and the simulator can).
//!
//! Ablations that only touch the *deployment graph* (gateway width,
//! transport swap) or only sweep registry systems (burst buffer,
//! metadata) are declarative [`Deck`]s with [`GraphEdit`] axes — fully
//! expressible as scenario JSON. The rest mutate backend calibration
//! fields a registry name cannot express; they build their systems
//! directly but run through the same executor
//! ([`crate::deck::run_workload_on`]).

use hcs_core::scenario::{GraphEdit, IorConfig, MdtestConfig, Scenario, Workload, WorkloadClass};
use hcs_core::{Deck, StageKind};
use hcs_dlio::cosmoflow;
use hcs_gpfs::GpfsConfig;
use hcs_lustre::LustreConfig;
use hcs_mdtest::MetaOp;
use hcs_simkit::units::gbit_per_s;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

use crate::deck::{run_deck, run_workload_on};
use crate::series::{Figure, Point, Series};
use crate::sweep::{parallel_sweep, Scale};

/// Gateway uplink widths swept by [`gateway_width_deck`], Gb.
const GATEWAY_WIDTHS: [f64; 5] = [100.0, 200.0, 400.0, 800.0, 1600.0];

/// `nconnect` values swept by [`nconnect_deck`].
const NCONNECT_COUNTS: [u32; 5] = [1, 2, 4, 8, 16];

/// Gateway-uplink width deck on Lassen: each edit set retargets the
/// gateway stage's capacity — a pure deployment-graph edit, no backend
/// change.
pub fn gateway_width_deck(scale: Scale) -> Deck {
    let base = Scenario::new(
        "vast-lassen",
        Workload::Ior(IorConfig::paper_scalability(
            WorkloadClass::DataAnalytics,
            64,
            44,
        )),
    )
    .with_reps(scale.reps());
    let mut deck = Deck::single("ablation.gateway", base)
        .with_title("VAST@Lassen aggregate seq-read bandwidth vs gateway uplink");
    deck.axes.edit_sets = GATEWAY_WIDTHS
        .iter()
        .map(|&gb| {
            vec![GraphEdit::SetPoolCapacity {
                kind: StageKind::Gateway,
                capacity: gbit_per_s(gb),
            }]
        })
        .collect();
    deck
}

/// Gateway-uplink width sweep on Lassen: how much aggregate VAST
/// bandwidth would wider gateway Ethernet buy at 64 nodes?
pub fn gateway_width_sweep(scale: Scale) -> Figure {
    let result = run_deck(&gateway_width_deck(scale));
    let mut fig = Figure::new(
        result.name.clone(),
        result.title.clone(),
        "gateway uplink (Gb)",
        "aggregate bandwidth (GB/s)",
    );
    fig.series.push(Series {
        label: "VAST (wider gateway)".into(),
        points: result
            .points
            .iter()
            .zip(GATEWAY_WIDTHS)
            .map(|(p, gb)| Point::new(gb, p.outcome.ior().mean_bandwidth() / 1e9))
            .collect(),
    });
    fig
}

/// `nconnect` deck on Wombat: each edit set swaps the client transport
/// for the same RDMA spec with a different connection count.
pub fn nconnect_deck(scale: Scale) -> Deck {
    let base_sys = vast_on_wombat();
    let base = Scenario::new(
        "vast-wombat",
        Workload::Ior(IorConfig::paper_scalability(
            WorkloadClass::DataAnalytics,
            1,
            48,
        )),
    )
    .with_reps(scale.reps());
    let mut deck = Deck::single("ablation.nconnect", base)
        .with_title("VAST@Wombat per-node seq-read bandwidth vs nconnect");
    deck.axes.edit_sets = NCONNECT_COUNTS
        .iter()
        .map(|&n| {
            let mut t = base_sys.transport.clone();
            t.nconnect = n;
            vec![GraphEdit::SwapTransport {
                transport: t,
                client_nic_bw: base_sys.client_nic_bw,
            }]
        })
        .collect();
    deck
}

/// `nconnect` sweep on Wombat: per-node read bandwidth vs connection
/// count (the knob behind the 8× takeaway).
pub fn nconnect_sweep(scale: Scale) -> Figure {
    let result = run_deck(&nconnect_deck(scale));
    let mut fig = Figure::new(
        result.name.clone(),
        result.title.clone(),
        "nconnect",
        "per-node bandwidth (GB/s)",
    );
    fig.series.push(Series {
        label: "VAST (RDMA)".into(),
        points: result
            .points
            .iter()
            .zip(NCONNECT_COUNTS)
            .map(|(p, n)| Point::new(n as f64, p.outcome.ior().mean_bandwidth() / 1e9))
            .collect(),
    });
    fig
}

/// Similarity-reduction ablation: write bandwidth with the reduction
/// pipeline on (CPU-bound CNodes, less media traffic) vs off (faster
/// CNodes, full media traffic).
///
/// Mutates VAST calibration fields, so it builds its systems directly
/// and shares only the executor.
pub fn similarity_ablation(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "ablation.similarity",
        "VAST@Wombat aggregate seq-write bandwidth, similarity reduction on/off",
        "nodes",
        "aggregate bandwidth (GB/s)",
    );
    let nodes = scale.wombat_nodes();
    for (label, on) in [("similarity on", true), ("similarity off", false)] {
        let points = parallel_sweep(nodes.clone(), |&n| {
            let mut v = vast_on_wombat();
            v.similarity_reduction = on;
            if !on {
                // The CNode CPU freed from hashing/compression speeds
                // the write path up.
                v.cnode_write_bw *= 1.6;
            }
            let mut cfg = IorConfig::paper_scalability(WorkloadClass::Scientific, n, 48);
            cfg.reps = scale.reps();
            let out = run_workload_on(&v, &Workload::Ior(cfg), n, 48);
            Point::new(n as f64, out.ior().mean_bandwidth() / 1e9)
        });
        fig.series.push(Series {
            label: label.into(),
            points,
        });
    }
    fig
}

/// GPFS read-ahead ablation: the seq/random gap with the server cache
/// crippled. Mutates GPFS calibration fields.
pub fn gpfs_cache_ablation(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "ablation.gpfs-cache",
        "GPFS aggregate read bandwidth at 32 nodes, with and without read-ahead cache",
        "variant (0=cache on seq, 1=cache off seq, 2=cache on rand, 3=cache off rand)",
        "aggregate bandwidth (GB/s)",
    );
    let variants: Vec<(u32, bool, WorkloadClass)> = vec![
        (0, true, WorkloadClass::DataAnalytics),
        (1, false, WorkloadClass::DataAnalytics),
        (2, true, WorkloadClass::MachineLearning),
        (3, false, WorkloadClass::MachineLearning),
    ];
    let points = parallel_sweep(variants, |&(i, cache_on, w)| {
        let mut g = GpfsConfig::on_lassen();
        if !cache_on {
            g.server_cache.seq_hit_ratio = 0.0;
            g.server_cache.rand_hit_ratio = 0.0;
            g.server_cache.capacity = 0.0;
        }
        // Measured at scale: the cache's bandwidth contribution shows
        // at the server pool, not through a single node's NIC.
        let mut cfg = IorConfig::paper_scalability(w, 32, 44);
        cfg.reps = scale.reps();
        let out = run_workload_on(&g, &Workload::Ior(cfg), 32, 44);
        Point::new(i as f64, out.ior().mean_bandwidth() / 1e9)
    });
    fig.series.push(Series {
        label: "GPFS".into(),
        points,
    });
    fig
}

/// I/O-thread-count sweep for Cosmoflow on VAST: the paper contrasts
/// ResNet-50's eight pipeline threads with Cosmoflow's four (§VI.C);
/// how much of the stall is thread starvation?
pub fn dlio_thread_sweep(scale: Scale) -> Figure {
    let threads = [1u32, 2, 4, 8, 16];
    let mut fig = Figure::new(
        "ablation.dlio-threads",
        "Cosmoflow on VAST@Lassen: non-overlapping I/O vs pipeline threads",
        "I/O threads",
        "non-overlapping I/O per node (s)",
    );
    let vast = vast_on_lassen();
    let points = parallel_sweep(threads.to_vec(), |&t| {
        let mut cfg = cosmoflow();
        cfg.read_threads = t;
        cfg.prefetch_depth = (2 * t).max(cfg.batch_size);
        if let Some(s) = scale.dlio_samples() {
            cfg.samples = cfg.samples.min(s);
        }
        cfg.epochs = if scale == Scale::Smoke { 1 } else { cfg.epochs };
        let out = run_workload_on(&vast, &Workload::Dlio(cfg), 4, 44);
        Point::new(t as f64, out.dlio().non_overlapping_io())
    });
    fig.series.push(Series {
        label: "VAST".into(),
        points,
    });
    fig
}

/// Burst-buffer deck: synchronized checkpoint writes on Wombat across
/// VAST, raw node-local NVMe, and a UnifyFS-style user-level burst
/// buffer over the same drives.
pub fn burst_buffer_deck(scale: Scale) -> Deck {
    let mut cfg = IorConfig::paper_scalability(WorkloadClass::Scientific, 1, 48);
    cfg.fsync = true;
    let base = Scenario::new("vast-wombat", Workload::Ior(cfg)).with_reps(scale.reps());
    let mut deck = Deck::single("ablation.burst-buffer", base)
        .with_title("Synchronized checkpoint writes on Wombat: VAST vs NVMe vs UnifyFS");
    deck.axes.systems = vec!["vast-wombat".into(), "nvme".into(), "unifyfs".into()];
    deck.axes.nodes = scale.wombat_nodes();
    deck
}

/// Burst-buffer study — the question the paper's intro raises by naming
/// UnifyFS as the other configurable storage system.
pub fn burst_buffer_checkpoint(scale: Scale) -> Figure {
    let result = run_deck(&burst_buffer_deck(scale));
    let mut fig = Figure::new(
        result.name.clone(),
        result.title.clone(),
        "nodes",
        "aggregate bandwidth (GB/s)",
    );
    for (label, points) in result.by_system() {
        fig.series.push(Series {
            label,
            points: points
                .iter()
                .map(|p| Point::new(p.nodes as f64, p.outcome.ior().mean_bandwidth() / 1e9))
                .collect(),
        });
    }
    fig
}

/// Metadata-rates deck: one MDTest storm per deployment.
pub fn metadata_deck() -> Deck {
    let base = Scenario::new("vast-lassen", Workload::Mdtest(MdtestConfig::new(8, 32)));
    let mut deck = Deck::single("ablation.mdtest", base)
        .with_title("MDTest-equivalent stat rates across deployments (8 nodes x 32 tasks)");
    deck.axes.systems = vec![
        "vast-lassen".into(),
        "vast-wombat".into(),
        "gpfs".into(),
        "unifyfs".into(),
    ];
    deck
}

/// Metadata rates (MDTest-equivalent) across the deployments.
pub fn metadata_rates(scale: Scale) -> Figure {
    let _ = scale;
    let result = run_deck(&metadata_deck());
    let mut fig = Figure::new(
        result.name.clone(),
        result.title.clone(),
        "variant (0=VAST/TCP 1=VAST/RDMA 2=GPFS 3=UnifyFS)",
        "stat ops/s",
    );
    fig.series.push(Series {
        label: "stat/s".into(),
        points: result
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| Point::new(i as f64, p.outcome.mdtest().rate(MetaOp::Stat).mean))
            .collect(),
    });
    fig
}

/// Lustre stripe-count sweep: single-rank read bandwidth vs stripe
/// width (§II: prior work tunes exactly this knob). Mutates the Lustre
/// layout, so it builds its systems directly.
pub fn lustre_stripe_sweep(scale: Scale) -> Figure {
    let stripes = [1u32, 2, 4, 8, 16, 64];
    let mut fig = Figure::new(
        "ablation.lustre-stripes",
        "Lustre@Ruby single-rank seq-read bandwidth vs stripe count",
        "stripe count",
        "bandwidth (GB/s)",
    );
    let points = parallel_sweep(stripes.to_vec(), |&c| {
        let l = LustreConfig::on_ruby().with_stripe_count(c);
        let mut cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 1, 1);
        cfg.reps = scale.reps();
        let out = run_workload_on(&l, &Workload::Ior(cfg), 1, 1);
        Point::new(c as f64, out.ior().mean_bandwidth() / 1e9)
    });
    fig.series.push(Series {
        label: "Lustre".into(),
        points,
    });
    fig
}

/// The declarative ablation decks (the ones expressible as pure
/// scenario JSON), for the builtin catalog.
pub fn decks(scale: Scale) -> Vec<Deck> {
    vec![
        gateway_width_deck(scale),
        nconnect_deck(scale),
        burst_buffer_deck(scale),
        metadata_deck(),
    ]
}

/// All ablation figures.
pub fn generate(scale: Scale) -> Vec<Figure> {
    vec![
        gateway_width_sweep(scale),
        nconnect_sweep(scale),
        similarity_ablation(scale),
        gpfs_cache_ablation(scale),
        dlio_thread_sweep(scale),
        burst_buffer_checkpoint(scale),
        metadata_rates(scale),
        lustre_stripe_sweep(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn wider_gateway_lifts_the_ceiling() {
        let f = gateway_width_sweep(Scale::Smoke);
        let s = &f.series[0];
        assert!(shapes::is_nondecreasing(s, 0.02));
        assert!(
            s.points.last().unwrap().y > 3.0 * s.points[0].y,
            "16x the uplink should lift the 64-node ceiling several-fold"
        );
    }

    #[test]
    fn nconnect_scales_then_saturates() {
        let f = nconnect_sweep(Scale::Smoke);
        let s = &f.series[0];
        assert!(shapes::is_nondecreasing(s, 0.02));
        assert!(s.y_at(16.0).unwrap() > 4.0 * s.y_at(1.0).unwrap());
    }

    #[test]
    fn more_threads_hide_more_io() {
        let f = dlio_thread_sweep(Scale::Smoke);
        let s = &f.series[0];
        assert!(
            s.y_at(1.0).unwrap() > s.y_at(16.0).unwrap(),
            "stall should shrink with threads: {:?}",
            s.points
        );
    }

    #[test]
    fn burst_buffer_ordering() {
        let f = burst_buffer_checkpoint(Scale::Smoke);
        let unify = f.series_named("UnifyFS").unwrap();
        let nvme = f.series_named("NVMe").unwrap();
        let vast = f.series_named("VAST").unwrap();
        for p in &unify.points {
            // Log-structured local writes beat raw in-place NVMe fsync
            // and, at full scale, the shared appliance.
            assert!(p.y >= nvme.y_at(p.x).unwrap());
        }
        // VAST wins at one node (SCM absorbs fsync); local scaling wins at 8.
        assert!(vast.y_at(1.0).unwrap() > nvme.y_at(1.0).unwrap());
        assert!(unify.y_at(8.0).unwrap() > vast.y_at(8.0).unwrap());
    }

    #[test]
    fn metadata_rates_order_by_transport() {
        let f = metadata_rates(Scale::Smoke);
        let s = &f.series[0];
        let tcp = s.y_at(0.0).unwrap();
        let rdma = s.y_at(1.0).unwrap();
        let unify = s.y_at(3.0).unwrap();
        assert!(rdma > 3.0 * tcp, "rdma {rdma} vs tcp {tcp}");
        assert!(unify > tcp);
    }

    #[test]
    fn stripe_sweep_rises_then_plateaus() {
        let f = lustre_stripe_sweep(Scale::Smoke);
        let s = &f.series[0];
        assert!(shapes::is_nondecreasing(s, 0.05));
        assert!(s.y_at(8.0).unwrap() > 2.0 * s.y_at(1.0).unwrap());
        assert!(s.y_at(64.0).unwrap() < 1.2 * s.y_at(8.0).unwrap());
    }

    #[test]
    fn cache_off_kills_gpfs_seq_reads() {
        let f = gpfs_cache_ablation(Scale::Smoke);
        let s = &f.series[0];
        let on_seq = s.y_at(0.0).unwrap();
        let off_seq = s.y_at(1.0).unwrap();
        assert!(on_seq > 2.0 * off_seq, "{on_seq} vs {off_seq}");
    }
}
