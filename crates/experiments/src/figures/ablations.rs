//! Ablation experiments beyond the paper — isolating the design choices
//! DESIGN.md calls out.
//!
//! The paper itself motivates the first of these (§V.A: "we plan on
//! deploying a custom VAST configuration on cloud-like resources ... to
//! test this" — the gateway-width hypothesis the authors could not test
//! on production hardware, and the simulator can).

use hcs_core::{Reconfigured, StageKind};
use hcs_dlio::{cosmoflow, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_mdtest::{run_mdtest, MdtestConfig, MetaOp};
use hcs_nvme::LocalNvmeConfig;
use hcs_simkit::units::gbit_per_s;
use hcs_unifyfs::UnifyFsConfig;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

use crate::series::{Figure, Point, Series};
use crate::sweep::{parallel_sweep, Scale};

/// Gateway-uplink width sweep on Lassen: how much aggregate VAST
/// bandwidth would wider gateway Ethernet buy at 64 nodes?
pub fn gateway_width_sweep(scale: Scale) -> Figure {
    let widths = [100.0, 200.0, 400.0, 800.0, 1600.0]; // Gb total uplink
    let mut fig = Figure::new(
        "ablation.gateway",
        "VAST@Lassen aggregate seq-read bandwidth vs gateway uplink",
        "gateway uplink (Gb)",
        "aggregate bandwidth (GB/s)",
    );
    let points = parallel_sweep(widths.to_vec(), |&gb| {
        // A pure deployment-graph edit: retarget the gateway stage's
        // uplink to `gb` Gb without touching the backend config.
        let target = gbit_per_s(gb);
        let v = Reconfigured::new(vast_on_lassen(), move |g| {
            let current = g
                .capacity_of(StageKind::Gateway)
                .expect("Lassen VAST plans a gateway stage");
            g.scale_pool(StageKind::Gateway, target / current);
        });
        let mut cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 64, 44);
        cfg.reps = scale.reps();
        Point::new(gb, run_ior(&v, &cfg).mean_bandwidth() / 1e9)
    });
    fig.series.push(Series {
        label: "VAST (wider gateway)".into(),
        points,
    });
    fig
}

/// `nconnect` sweep on Wombat: per-node read bandwidth vs connection
/// count (the knob behind the 8× takeaway).
pub fn nconnect_sweep(scale: Scale) -> Figure {
    let counts = [1u32, 2, 4, 8, 16];
    let mut fig = Figure::new(
        "ablation.nconnect",
        "VAST@Wombat per-node seq-read bandwidth vs nconnect",
        "nconnect",
        "per-node bandwidth (GB/s)",
    );
    let points = parallel_sweep(counts.to_vec(), |&n| {
        // Swap the transport in the deployment graph: same RDMA spec,
        // different connection count — the client-mount capacity and
        // per-stream ceiling follow.
        let base = vast_on_wombat();
        let mut t = base.transport.clone();
        t.nconnect = n;
        let nic = base.client_nic_bw;
        let v = Reconfigured::new(base, move |g| g.swap_transport(&t, nic));
        let mut cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 1, 48);
        cfg.reps = scale.reps();
        Point::new(n as f64, run_ior(&v, &cfg).mean_bandwidth() / 1e9)
    });
    fig.series.push(Series {
        label: "VAST (RDMA)".into(),
        points,
    });
    fig
}

/// Similarity-reduction ablation: write bandwidth with the reduction
/// pipeline on (CPU-bound CNodes, less media traffic) vs off (faster
/// CNodes, full media traffic).
pub fn similarity_ablation(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "ablation.similarity",
        "VAST@Wombat aggregate seq-write bandwidth, similarity reduction on/off",
        "nodes",
        "aggregate bandwidth (GB/s)",
    );
    let nodes = scale.wombat_nodes();
    for (label, on) in [("similarity on", true), ("similarity off", false)] {
        let points = parallel_sweep(nodes.clone(), |&n| {
            let mut v = vast_on_wombat();
            v.similarity_reduction = on;
            if !on {
                // The CNode CPU freed from hashing/compression speeds
                // the write path up.
                v.cnode_write_bw *= 1.6;
            }
            let mut cfg = IorConfig::paper_scalability(WorkloadClass::Scientific, n, 48);
            cfg.reps = scale.reps();
            Point::new(n as f64, run_ior(&v, &cfg).mean_bandwidth() / 1e9)
        });
        fig.series.push(Series {
            label: label.into(),
            points,
        });
    }
    fig
}

/// GPFS read-ahead ablation: the seq/random gap with the server cache
/// crippled.
pub fn gpfs_cache_ablation(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "ablation.gpfs-cache",
        "GPFS aggregate read bandwidth at 32 nodes, with and without read-ahead cache",
        "variant (0=cache on seq, 1=cache off seq, 2=cache on rand, 3=cache off rand)",
        "aggregate bandwidth (GB/s)",
    );
    let variants: Vec<(u32, bool, WorkloadClass)> = vec![
        (0, true, WorkloadClass::DataAnalytics),
        (1, false, WorkloadClass::DataAnalytics),
        (2, true, WorkloadClass::MachineLearning),
        (3, false, WorkloadClass::MachineLearning),
    ];
    let points = parallel_sweep(variants, |&(i, cache_on, w)| {
        let mut g = GpfsConfig::on_lassen();
        if !cache_on {
            g.server_cache.seq_hit_ratio = 0.0;
            g.server_cache.rand_hit_ratio = 0.0;
            g.server_cache.capacity = 0.0;
        }
        // Measured at scale: the cache's bandwidth contribution shows
        // at the server pool, not through a single node's NIC.
        let mut cfg = IorConfig::paper_scalability(w, 32, 44);
        cfg.reps = scale.reps();
        Point::new(i as f64, run_ior(&g, &cfg).mean_bandwidth() / 1e9)
    });
    fig.series.push(Series {
        label: "GPFS".into(),
        points,
    });
    fig
}

/// I/O-thread-count sweep for Cosmoflow on VAST: the paper contrasts
/// ResNet-50's eight pipeline threads with Cosmoflow's four (§VI.C);
/// how much of the stall is thread starvation?
pub fn dlio_thread_sweep(scale: Scale) -> Figure {
    let threads = [1u32, 2, 4, 8, 16];
    let mut fig = Figure::new(
        "ablation.dlio-threads",
        "Cosmoflow on VAST@Lassen: non-overlapping I/O vs pipeline threads",
        "I/O threads",
        "non-overlapping I/O per node (s)",
    );
    let vast = vast_on_lassen();
    let points = parallel_sweep(threads.to_vec(), |&t| {
        let mut cfg = cosmoflow();
        cfg.read_threads = t;
        cfg.prefetch_depth = (2 * t).max(cfg.batch_size);
        if let Some(s) = scale.dlio_samples() {
            cfg.samples = cfg.samples.min(s);
        }
        cfg.epochs = if scale == Scale::Smoke { 1 } else { cfg.epochs };
        let r = run_dlio(&vast, &cfg, 4);
        Point::new(t as f64, r.non_overlapping_io())
    });
    fig.series.push(Series {
        label: "VAST".into(),
        points,
    });
    fig
}

/// Burst-buffer study: synchronized checkpoint bandwidth on Wombat
/// across VAST, raw node-local NVMe, and a UnifyFS-style user-level
/// burst buffer over the same drives — the question the paper's intro
/// raises by naming UnifyFS as the other configurable storage system.
pub fn burst_buffer_checkpoint(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "ablation.burst-buffer",
        "Synchronized checkpoint writes on Wombat: VAST vs NVMe vs UnifyFS",
        "nodes",
        "aggregate bandwidth (GB/s)",
    );
    let nodes = scale.wombat_nodes();
    let vast = vast_on_wombat();
    let nvme = LocalNvmeConfig::on_wombat();
    let unify = UnifyFsConfig::on_wombat();
    let systems: [(&str, &dyn hcs_core::StorageSystem); 3] =
        [("VAST", &vast), ("NVMe", &nvme), ("UnifyFS", &unify)];
    for (label, sys) in systems {
        let points = parallel_sweep(nodes.clone(), |&n| {
            let mut cfg = IorConfig::paper_scalability(WorkloadClass::Scientific, n, 48);
            cfg.fsync = true;
            cfg.reps = scale.reps();
            Point::new(n as f64, run_ior(sys, &cfg).mean_bandwidth() / 1e9)
        });
        fig.series.push(Series {
            label: label.into(),
            points,
        });
    }
    fig
}

/// Metadata rates (MDTest-equivalent) across the deployments.
pub fn metadata_rates(scale: Scale) -> Figure {
    let mut fig = Figure::new(
        "ablation.mdtest",
        "MDTest-equivalent stat rates across deployments (8 nodes x 32 tasks)",
        "variant (0=VAST/TCP 1=VAST/RDMA 2=GPFS 3=UnifyFS)",
        "stat ops/s",
    );
    let cfg = MdtestConfig::new(8, 32);
    let tcp = vast_on_lassen();
    let rdma = vast_on_wombat();
    let gpfs = GpfsConfig::on_lassen();
    let unify = UnifyFsConfig::on_wombat();
    let systems: [(&dyn hcs_core::StorageSystem, f64); 4] =
        [(&tcp, 0.0), (&rdma, 1.0), (&gpfs, 2.0), (&unify, 3.0)];
    let _ = scale;
    let points = parallel_sweep(systems.to_vec(), |&(sys, x)| {
        Point::new(x, run_mdtest(sys, &cfg).rate(MetaOp::Stat).mean)
    });
    fig.series.push(Series {
        label: "stat/s".into(),
        points,
    });
    fig
}

/// Lustre stripe-count sweep: single-rank read bandwidth vs stripe
/// width (§II: prior work tunes exactly this knob).
pub fn lustre_stripe_sweep(scale: Scale) -> Figure {
    let stripes = [1u32, 2, 4, 8, 16, 64];
    let mut fig = Figure::new(
        "ablation.lustre-stripes",
        "Lustre@Ruby single-rank seq-read bandwidth vs stripe count",
        "stripe count",
        "bandwidth (GB/s)",
    );
    let points = parallel_sweep(stripes.to_vec(), |&c| {
        let l = LustreConfig::on_ruby().with_stripe_count(c);
        let mut cfg = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 1, 1);
        cfg.reps = scale.reps();
        Point::new(c as f64, run_ior(&l, &cfg).mean_bandwidth() / 1e9)
    });
    fig.series.push(Series {
        label: "Lustre".into(),
        points,
    });
    fig
}

/// All ablation figures.
pub fn generate(scale: Scale) -> Vec<Figure> {
    vec![
        gateway_width_sweep(scale),
        nconnect_sweep(scale),
        similarity_ablation(scale),
        gpfs_cache_ablation(scale),
        dlio_thread_sweep(scale),
        burst_buffer_checkpoint(scale),
        metadata_rates(scale),
        lustre_stripe_sweep(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn wider_gateway_lifts_the_ceiling() {
        let f = gateway_width_sweep(Scale::Smoke);
        let s = &f.series[0];
        assert!(shapes::is_nondecreasing(s, 0.02));
        assert!(
            s.points.last().unwrap().y > 3.0 * s.points[0].y,
            "16x the uplink should lift the 64-node ceiling several-fold"
        );
    }

    #[test]
    fn nconnect_scales_then_saturates() {
        let f = nconnect_sweep(Scale::Smoke);
        let s = &f.series[0];
        assert!(shapes::is_nondecreasing(s, 0.02));
        assert!(s.y_at(16.0).unwrap() > 4.0 * s.y_at(1.0).unwrap());
    }

    #[test]
    fn more_threads_hide_more_io() {
        let f = dlio_thread_sweep(Scale::Smoke);
        let s = &f.series[0];
        assert!(
            s.y_at(1.0).unwrap() > s.y_at(16.0).unwrap(),
            "stall should shrink with threads: {:?}",
            s.points
        );
    }

    #[test]
    fn burst_buffer_ordering() {
        let f = burst_buffer_checkpoint(Scale::Smoke);
        let unify = f.series_named("UnifyFS").unwrap();
        let nvme = f.series_named("NVMe").unwrap();
        let vast = f.series_named("VAST").unwrap();
        for p in &unify.points {
            // Log-structured local writes beat raw in-place NVMe fsync
            // and, at full scale, the shared appliance.
            assert!(p.y >= nvme.y_at(p.x).unwrap());
        }
        // VAST wins at one node (SCM absorbs fsync); local scaling wins at 8.
        assert!(vast.y_at(1.0).unwrap() > nvme.y_at(1.0).unwrap());
        assert!(unify.y_at(8.0).unwrap() > vast.y_at(8.0).unwrap());
    }

    #[test]
    fn metadata_rates_order_by_transport() {
        let f = metadata_rates(Scale::Smoke);
        let s = &f.series[0];
        let tcp = s.y_at(0.0).unwrap();
        let rdma = s.y_at(1.0).unwrap();
        let unify = s.y_at(3.0).unwrap();
        assert!(rdma > 3.0 * tcp, "rdma {rdma} vs tcp {tcp}");
        assert!(unify > tcp);
    }

    #[test]
    fn stripe_sweep_rises_then_plateaus() {
        let f = lustre_stripe_sweep(Scale::Smoke);
        let s = &f.series[0];
        assert!(shapes::is_nondecreasing(s, 0.05));
        assert!(s.y_at(8.0).unwrap() > 2.0 * s.y_at(1.0).unwrap());
        assert!(s.y_at(64.0).unwrap() < 1.2 * s.y_at(8.0).unwrap());
    }

    #[test]
    fn cache_off_kills_gpfs_seq_reads() {
        let f = gpfs_cache_ablation(Scale::Smoke);
        let s = &f.series[0];
        let on_seq = s.y_at(0.0).unwrap();
        let off_seq = s.y_at(1.0).unwrap();
        assert!(on_seq > 2.0 * off_seq, "{on_seq} vs {off_seq}");
    }
}
