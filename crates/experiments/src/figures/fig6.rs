//! Fig 6 — "Cosmoflow Throughput": (a) application throughput, (b)
//! system throughput, VAST vs GPFS, strong scaling (§VI.C).
//!
//! "Unsurprisingly, GPFS serves Cosmoflow better than VAST ... The
//! system throughput of VAST is also lower than that of GPFS."

use hcs_core::StorageSystem;
use hcs_dlio::cosmoflow;
use hcs_gpfs::GpfsConfig;
use hcs_vast::vast_on_lassen;

use crate::figures::fig5::throughput_panels;
use crate::series::Figure;
use crate::sweep::Scale;

/// Generates Fig 6a and Fig 6b.
pub fn generate(scale: Scale) -> Vec<Figure> {
    let vast = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    let systems: [&dyn StorageSystem; 2] = [&vast, &gpfs];
    let mut cfg = cosmoflow();
    if let Some(samples) = scale.dlio_samples() {
        cfg.samples = cfg.samples.min(samples);
    }
    throughput_panels("fig6a", "fig6b", &cfg, &systems, &scale.cosmoflow_nodes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        let app = &figs[0];
        let sys = &figs[1];
        for p in &app.series_named("GPFS").unwrap().points {
            let v = app.series_named("VAST").unwrap().y_at(p.x).unwrap();
            assert!(
                p.y > 1.2 * v,
                "GPFS clearly ahead on Cosmoflow app throughput at {} nodes: {} vs {v}",
                p.x,
                p.y
            );
        }
        for p in &sys.series_named("GPFS").unwrap().points {
            let v = sys.series_named("VAST").unwrap().y_at(p.x).unwrap();
            assert!(p.y > v, "GPFS ahead on system throughput at {} nodes", p.x);
        }
    }
}
