//! Fig 6 — "Cosmoflow Throughput": (a) application throughput, (b)
//! system throughput, VAST vs GPFS, strong scaling (§VI.C).
//!
//! "Unsurprisingly, GPFS serves Cosmoflow better than VAST ... The
//! system throughput of VAST is also lower than that of GPFS."

use hcs_core::Deck;
use hcs_dlio::cosmoflow;

use crate::deck::run_deck;
use crate::figures::fig4::{apply_scale, dlio_deck};
use crate::figures::fig5::throughput_figures;
use crate::series::Figure;
use crate::sweep::Scale;

/// The Fig 6 deck (one run per point feeds both panels).
pub fn deck(scale: Scale) -> Deck {
    let cfg = apply_scale(cosmoflow(), scale);
    dlio_deck(
        "fig6",
        format!("{} throughput", cfg.name),
        cfg,
        &scale.cosmoflow_nodes(),
    )
}

/// Generates Fig 6a and Fig 6b.
pub fn generate(scale: Scale) -> Vec<Figure> {
    throughput_figures(&run_deck(&deck(scale)), "fig6a", "fig6b")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        let app = &figs[0];
        let sys = &figs[1];
        for p in &app.series_named("GPFS").unwrap().points {
            let v = app.series_named("VAST").unwrap().y_at(p.x).unwrap();
            assert!(
                p.y > 1.2 * v,
                "GPFS clearly ahead on Cosmoflow app throughput at {} nodes: {} vs {v}",
                p.x,
                p.y
            );
        }
        for p in &sys.series_named("GPFS").unwrap().points {
            let v = sys.series_named("VAST").unwrap().y_at(p.x).unwrap();
            assert!(p.y > v, "GPFS ahead on system throughput at {} nodes", p.x);
        }
    }
}
