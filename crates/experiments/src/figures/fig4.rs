//! Fig 4 — "I/O time analysis" for the DLIO workloads.
//!
//! Panel (a): ResNet-50, weak scaling to 32 nodes, one epoch (§VI.B).
//! Panel (b): Cosmoflow, strong scaling, four epochs (§VI.C).
//! Each panel stacks, per storage system, the mean per-node
//! *overlapping* and *non-overlapping* I/O time.

use hcs_core::scenario::{DlioConfig, Scenario, Workload};
use hcs_core::Deck;
use hcs_dlio::{cosmoflow, resnet50};

use crate::deck::{run_deck, DeckResult};
use crate::series::{Figure, Point, Series};
use crate::sweep::Scale;

pub(crate) fn apply_scale(mut cfg: DlioConfig, scale: Scale) -> DlioConfig {
    if let Some(samples) = scale.dlio_samples() {
        cfg.samples = cfg.samples.min(samples);
    }
    cfg
}

/// A VAST-vs-GPFS DLIO deck over node counts — the sweep behind
/// Figs 4, 5 and 6.
pub(crate) fn dlio_deck(id: &str, title: String, cfg: DlioConfig, nodes: &[u32]) -> Deck {
    let base = Scenario::new("vast-lassen", Workload::Dlio(cfg));
    let mut deck = Deck::single(id, base).with_title(title);
    deck.axes.systems = vec!["vast-lassen".into(), "gpfs".into()];
    deck.axes.nodes = nodes.to_vec();
    deck
}

/// The two Fig 4 decks.
pub fn decks(scale: Scale) -> Vec<Deck> {
    let resnet = apply_scale(resnet50(), scale);
    let cosmo = apply_scale(cosmoflow(), scale);
    vec![
        dlio_deck(
            "fig4a",
            format!("I/O time analysis — {}", resnet.name),
            resnet,
            &scale.resnet_nodes(),
        ),
        dlio_deck(
            "fig4b",
            format!("I/O time analysis — {}", cosmo.name),
            cosmo,
            &scale.cosmoflow_nodes(),
        ),
    ]
}

/// Converts an executed DLIO deck into the stacked I/O-time panel:
/// per-system overlapping and non-overlapping series.
fn io_time_figure(result: &DeckResult) -> Figure {
    let mut fig = Figure::new(
        result.name.clone(),
        result.title.clone(),
        "nodes",
        "I/O time per node (s)",
    );
    for (label, points) in result.by_system() {
        fig.series.push(Series {
            label: format!("{label} overlapping"),
            points: points
                .iter()
                .map(|p| Point::new(p.nodes as f64, p.outcome.dlio().overlapping_io()))
                .collect(),
        });
        fig.series.push(Series {
            label: format!("{label} non-overlapping"),
            points: points
                .iter()
                .map(|p| Point::new(p.nodes as f64, p.outcome.dlio().non_overlapping_io()))
                .collect(),
        });
    }
    fig
}

/// Generates Fig 4a and Fig 4b.
pub fn generate(scale: Scale) -> Vec<Figure> {
    decks(scale)
        .iter()
        .map(|d| io_time_figure(&run_deck(d)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        assert_eq!(figs.len(), 2);

        // (a) ResNet-50: VAST spends more I/O time than GPFS, and most
        // of VAST's I/O overlaps with compute (§VI.B).
        let a = &figs[0];
        let v_over = a.series_named("VAST overlapping").unwrap();
        let v_non = a.series_named("VAST non-overlapping").unwrap();
        let g_over = a.series_named("GPFS overlapping").unwrap();
        let g_non = a.series_named("GPFS non-overlapping").unwrap();
        for p in &v_over.points {
            let x = p.x;
            let v_io = p.y + v_non.y_at(x).unwrap();
            let g_io = g_over.y_at(x).unwrap() + g_non.y_at(x).unwrap();
            assert!(v_io > g_io, "VAST I/O time exceeds GPFS at {x} nodes");
            assert!(
                p.y > v_non.y_at(x).unwrap(),
                "VAST I/O mostly hidden at {x}"
            );
        }

        // (b) Cosmoflow: the VAST non-overlapping share dominates its
        // GPFS counterpart (§VI.C "dramatically increased").
        let b = &figs[1];
        let v_non = b.series_named("VAST non-overlapping").unwrap();
        let g_non = b.series_named("GPFS non-overlapping").unwrap();
        for p in &v_non.points {
            assert!(
                p.y > 3.0 * g_non.y_at(p.x).unwrap().max(1e-9),
                "VAST stalls on Cosmoflow at {} nodes",
                p.x
            );
        }
    }
}
