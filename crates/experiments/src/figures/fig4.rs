//! Fig 4 — "I/O time analysis" for the DLIO workloads.
//!
//! Panel (a): ResNet-50, weak scaling to 32 nodes, one epoch (§VI.B).
//! Panel (b): Cosmoflow, strong scaling, four epochs (§VI.C).
//! Each panel stacks, per storage system, the mean per-node
//! *overlapping* and *non-overlapping* I/O time.

use hcs_core::StorageSystem;
use hcs_dlio::{cosmoflow, resnet50, run_dlio, DlioConfig};
use hcs_gpfs::GpfsConfig;
use hcs_vast::vast_on_lassen;

use crate::series::{Figure, Point, Series};
use crate::sweep::{parallel_sweep, Scale};

fn apply_scale(mut cfg: DlioConfig, scale: Scale) -> DlioConfig {
    if let Some(samples) = scale.dlio_samples() {
        cfg.samples = cfg.samples.min(samples);
    }
    cfg
}

/// One panel: per-system overlap/non-overlap series over node counts.
pub(crate) fn io_time_panel(
    id: &str,
    cfg: &DlioConfig,
    systems: &[&dyn StorageSystem],
    nodes: &[u32],
) -> Figure {
    let mut fig = Figure::new(
        id,
        format!("I/O time analysis — {}", cfg.name),
        "nodes",
        "I/O time per node (s)",
    );
    for sys in systems {
        let results = parallel_sweep(nodes.to_vec(), |&n| run_dlio(*sys, cfg, n));
        let overlap: Vec<Point> = nodes
            .iter()
            .zip(&results)
            .map(|(&n, r)| Point::new(n as f64, r.overlapping_io()))
            .collect();
        let non_overlap: Vec<Point> = nodes
            .iter()
            .zip(&results)
            .map(|(&n, r)| Point::new(n as f64, r.non_overlapping_io()))
            .collect();
        fig.series.push(Series {
            label: format!("{} overlapping", sys.name()),
            points: overlap,
        });
        fig.series.push(Series {
            label: format!("{} non-overlapping", sys.name()),
            points: non_overlap,
        });
    }
    fig
}

/// Generates Fig 4a and Fig 4b.
pub fn generate(scale: Scale) -> Vec<Figure> {
    let vast = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    let systems: [&dyn StorageSystem; 2] = [&vast, &gpfs];

    let resnet = apply_scale(resnet50(), scale);
    let cosmo = apply_scale(cosmoflow(), scale);

    vec![
        io_time_panel("fig4a", &resnet, &systems, &scale.resnet_nodes()),
        io_time_panel("fig4b", &cosmo, &systems, &scale.cosmoflow_nodes()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        assert_eq!(figs.len(), 2);

        // (a) ResNet-50: VAST spends more I/O time than GPFS, and most
        // of VAST's I/O overlaps with compute (§VI.B).
        let a = &figs[0];
        let v_over = a.series_named("VAST overlapping").unwrap();
        let v_non = a.series_named("VAST non-overlapping").unwrap();
        let g_over = a.series_named("GPFS overlapping").unwrap();
        let g_non = a.series_named("GPFS non-overlapping").unwrap();
        for p in &v_over.points {
            let x = p.x;
            let v_io = p.y + v_non.y_at(x).unwrap();
            let g_io = g_over.y_at(x).unwrap() + g_non.y_at(x).unwrap();
            assert!(v_io > g_io, "VAST I/O time exceeds GPFS at {x} nodes");
            assert!(
                p.y > v_non.y_at(x).unwrap(),
                "VAST I/O mostly hidden at {x}"
            );
        }

        // (b) Cosmoflow: the VAST non-overlapping share dominates its
        // GPFS counterpart (§VI.C "dramatically increased").
        let b = &figs[1];
        let v_non = b.series_named("VAST non-overlapping").unwrap();
        let g_non = b.series_named("GPFS non-overlapping").unwrap();
        for p in &v_non.points {
            assert!(
                p.y > 3.0 * g_non.y_at(p.x).unwrap().max(1e-9),
                "VAST stalls on Cosmoflow at {} nodes",
                p.x
            );
        }
    }
}
