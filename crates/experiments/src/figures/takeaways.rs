//! §VII — the paper's three quantified takeaways, plus the §VI.A
//! compute-fraction observation, re-derived from the simulation.

use serde::{Deserialize, Serialize};

use hcs_dlio::{resnet50, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_nvme::LocalNvmeConfig;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

use crate::sweep::Scale;

/// The measured takeaway numbers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TakeawayReport {
    /// TCP-deployed VAST per-node write bandwidth, GB/s (paper: ~1).
    pub tcp_per_node_write: f64,
    /// RDMA-deployed VAST per-node write bandwidth, GB/s (paper: ~8
    /// for write and read combined statement).
    pub rdma_per_node_write: f64,
    /// RDMA-deployed VAST per-node read bandwidth, GB/s.
    pub rdma_per_node_read: f64,
    /// RDMA-over-TCP advantage (paper: "up to 8x").
    pub rdma_over_tcp: f64,
    /// GPFS per-node sequential read, GB/s (paper: ~14.5).
    pub gpfs_seq_read: f64,
    /// GPFS per-node random read, GB/s (paper: ~1.4).
    pub gpfs_rand_read: f64,
    /// GPFS sequential→random drop (paper: ~90 %).
    pub gpfs_drop: f64,
    /// RDMA VAST per-node sequential read, GB/s (paper: ~9).
    pub vast_seq_read: f64,
    /// RDMA VAST per-node random read, GB/s (paper: ~7).
    pub vast_rand_read: f64,
    /// VAST-over-NVMe single-node fsync-write advantage (paper: ~5x).
    pub vast_over_nvme: f64,
    /// ResNet-50 compute-only fraction of runtime (paper: ~97 %).
    pub resnet_compute_fraction: f64,
}

/// Measures every takeaway at the given scale.
pub fn measure(scale: Scale) -> TakeawayReport {
    let reps = scale.reps();
    let per_node = |sys: &dyn hcs_core::StorageSystem, w, ppn| {
        let mut cfg = IorConfig::paper_scalability(w, 1, ppn);
        cfg.reps = reps;
        run_ior(sys, &cfg).mean_bandwidth() / 1e9
    };

    let tcp = vast_on_lassen();
    let rdma = vast_on_wombat();
    let gpfs = GpfsConfig::on_lassen();
    let nvme = LocalNvmeConfig::on_wombat();

    let tcp_per_node_write = per_node(&tcp, WorkloadClass::Scientific, 44);
    let rdma_per_node_write = per_node(&rdma, WorkloadClass::Scientific, 48);
    let rdma_per_node_read = per_node(&rdma, WorkloadClass::DataAnalytics, 48);
    let tcp_per_node_read = per_node(&tcp, WorkloadClass::DataAnalytics, 44);

    let gpfs_seq_read = per_node(&gpfs, WorkloadClass::DataAnalytics, 44);
    let gpfs_rand_read = per_node(&gpfs, WorkloadClass::MachineLearning, 44);
    let vast_seq_read = rdma_per_node_read;
    let vast_rand_read = per_node(&rdma, WorkloadClass::MachineLearning, 48);

    // TK3: single-node fsync write, 32 procs (§V.A / Fig 3d).
    let mut sn = IorConfig::paper_single_node(WorkloadClass::Scientific, 32);
    sn.reps = reps;
    let vast_sn = run_ior(&rdma, &sn).mean_bandwidth();
    let nvme_sn = run_ior(&nvme, &sn).mean_bandwidth();

    // TK4: ResNet-50 on its home system (GPFS), one node.
    let mut resnet = resnet50();
    if let Some(s) = scale.dlio_samples() {
        resnet.samples = resnet.samples.min(s);
    }
    let frac = run_dlio(&gpfs, &resnet, 1).compute_fraction();

    TakeawayReport {
        tcp_per_node_write,
        rdma_per_node_write,
        rdma_per_node_read,
        rdma_over_tcp: (rdma_per_node_write / tcp_per_node_write)
            .max(rdma_per_node_read / tcp_per_node_read),
        gpfs_seq_read,
        gpfs_rand_read,
        gpfs_drop: 1.0 - gpfs_rand_read / gpfs_seq_read,
        vast_seq_read,
        vast_rand_read,
        vast_over_nvme: vast_sn / nvme_sn,
        resnet_compute_fraction: frac,
    }
}

/// Renders the takeaways alongside the paper's claims.
pub fn render(r: &TakeawayReport) -> String {
    format!(
        "§VII takeaways — paper vs simulation\n\
         {:<52} {:>8} {:>10}\n\
         {:-<72}\n\
         {:<52} {:>8} {:>10.2}\n\
         {:<52} {:>8} {:>10.2}\n\
         {:<52} {:>8} {:>10.1}x\n\
         {:<52} {:>8} {:>10.2}\n\
         {:<52} {:>8} {:>10.2}\n\
         {:<52} {:>8} {:>10.0}%\n\
         {:<52} {:>8} {:>10.2}\n\
         {:<52} {:>8} {:>10.2}\n\
         {:<52} {:>8} {:>10.1}x\n\
         {:<52} {:>8} {:>10.0}%\n",
        "takeaway",
        "paper",
        "measured",
        "",
        "TCP VAST per-node write (GB/s)",
        "~1",
        r.tcp_per_node_write,
        "RDMA VAST per-node write (GB/s)",
        "~8",
        r.rdma_per_node_write,
        "RDMA over TCP per-node advantage",
        "up to 8",
        r.rdma_over_tcp,
        "GPFS per-node seq read (GB/s)",
        "14.5",
        r.gpfs_seq_read,
        "GPFS per-node random read (GB/s)",
        "1.4",
        r.gpfs_rand_read,
        "GPFS seq->random drop",
        "90",
        r.gpfs_drop * 100.0,
        "RDMA VAST per-node seq read (GB/s)",
        "9",
        r.vast_seq_read,
        "RDMA VAST per-node random read (GB/s)",
        "7",
        r.vast_rand_read,
        "VAST over NVMe, single-node fsync write",
        "5",
        r.vast_over_nvme,
        "ResNet-50 compute-only runtime fraction",
        "97",
        r.resnet_compute_fraction * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn takeaways_land_in_paper_bands() {
        let r = measure(Scale::Smoke);
        assert!(
            (0.5..1.6).contains(&r.tcp_per_node_write),
            "tcp write {}",
            r.tcp_per_node_write
        );
        assert!(
            (4.0..10.0).contains(&r.rdma_per_node_write),
            "rdma write {}",
            r.rdma_per_node_write
        );
        assert!(
            (4.0..13.0).contains(&r.rdma_over_tcp),
            "rdma/tcp {}",
            r.rdma_over_tcp
        );
        assert!(
            (10.0..17.0).contains(&r.gpfs_seq_read),
            "gpfs seq {}",
            r.gpfs_seq_read
        );
        assert!(
            (0.8..2.6).contains(&r.gpfs_rand_read),
            "gpfs rand {}",
            r.gpfs_rand_read
        );
        assert!((0.75..0.97).contains(&r.gpfs_drop), "drop {}", r.gpfs_drop);
        assert!(r.vast_rand_read > 0.6 * r.vast_seq_read, "vast consistency");
        assert!(
            (3.0..8.0).contains(&r.vast_over_nvme),
            "vast/nvme {}",
            r.vast_over_nvme
        );
        assert!(
            r.resnet_compute_fraction > 0.9,
            "compute frac {}",
            r.resnet_compute_fraction
        );
    }

    #[test]
    fn render_mentions_every_takeaway() {
        let r = measure(Scale::Smoke);
        let s = render(&r);
        assert!(s.contains("RDMA over TCP"));
        assert!(s.contains("GPFS seq->random drop"));
        assert!(s.contains("VAST over NVMe"));
        assert!(s.contains("ResNet-50"));
    }
}
