//! The per-artifact generators.

pub mod ablations;
pub mod consistency;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod sensitivity;
pub mod table1;
pub mod takeaways;

use crate::series::Figure;
use crate::sweep::Scale;

/// Generates every figure of the paper at the given scale (Table I and
/// the takeaways have their own textual generators).
pub fn all_figures(scale: Scale) -> Vec<Figure> {
    let mut figs = Vec::new();
    figs.extend(fig2::generate(scale));
    figs.extend(fig3::generate(scale));
    figs.extend(fig4::generate(scale));
    figs.extend(fig5::generate(scale));
    figs.extend(fig6::generate(scale));
    figs.push(consistency::generate(scale));
    figs
}
