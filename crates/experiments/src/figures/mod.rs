//! The per-artifact generators.
//!
//! Every figure module is a thin *deck constructor*: it declares its
//! sweep as a [`Deck`] (see [`hcs_core::scenario`]) and converts the
//! executed [`DeckResult`] into [`Figure`] series. The decks are also
//! exported as data ([`all_decks`]) so `hcs decks` can list them and
//! `hcs run` can execute any of them from JSON.

pub mod ablations;
pub mod consistency;
pub mod datacenter;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod sensitivity;
pub mod table1;
pub mod takeaways;

use hcs_core::scenario::WorkloadClass;
use hcs_core::Deck;

use crate::deck::{DeckResult, PointResult};
use crate::series::{Figure, Point, Series};
use crate::sweep::Scale;

/// Figure-id suffix for a workload class.
pub(crate) fn workload_tag(w: WorkloadClass) -> &'static str {
    match w {
        WorkloadClass::Scientific => "scientific",
        WorkloadClass::DataAnalytics => "analytics",
        WorkloadClass::MachineLearning => "ml",
    }
}

/// Converts an executed IOR deck into a bandwidth figure: one series
/// per system group (label = display name), y = mean GB/s with
/// std-dev error bars, x from `x`.
pub(crate) fn ior_bandwidth_figure(
    result: &DeckResult,
    x_label: &str,
    y_label: &str,
    x: impl Fn(&PointResult) -> f64,
) -> Figure {
    let mut fig = Figure::new(result.name.clone(), result.title.clone(), x_label, y_label);
    for (label, points) in result.by_system() {
        fig.series.push(Series {
            label,
            points: points
                .iter()
                .map(|p| {
                    let s = &p.outcome.ior().outcome.summary;
                    Point {
                        x: x(p),
                        y: s.mean / 1e9,
                        y_std: s.std_dev / 1e9,
                    }
                })
                .collect(),
        });
    }
    fig
}

/// Generates every figure of the paper at the given scale (Table I and
/// the takeaways have their own textual generators).
pub fn all_figures(scale: Scale) -> Vec<Figure> {
    let mut figs = Vec::new();
    figs.extend(fig2::generate(scale));
    figs.extend(fig3::generate(scale));
    figs.extend(fig4::generate(scale));
    figs.extend(fig5::generate(scale));
    figs.extend(fig6::generate(scale));
    figs.push(consistency::generate(scale));
    figs
}

/// Every builtin deck at the given scale, in figure order — the catalog
/// behind `hcs decks` and `hcs run <name>`. Decks whose modules also
/// apply backend-field mutations (some ablations, the sensitivity
/// analysis) are not listable here; they run through the same executor
/// via `run_workload_on`.
pub fn all_decks(scale: Scale) -> Vec<Deck> {
    let mut decks = Vec::new();
    decks.push(example_deck());
    decks.extend(fig2::decks(scale));
    decks.extend(fig3::decks(scale));
    decks.extend(fig4::decks(scale));
    decks.push(fig5::deck(scale));
    decks.push(fig6::deck(scale));
    decks.push(consistency::deck());
    decks.extend(ablations::decks(scale));
    decks.push(datacenter::deck());
    decks
}

/// The shipped example deck (`examples/scenarios/fig2a.json`): Fig 2a's
/// scientific-workload panel over a compact node list, small enough for
/// a CI smoke run.
pub fn example_deck() -> Deck {
    use hcs_core::scenario::{IorConfig, Scenario, Workload};
    let base = Scenario::new(
        "vast-lassen",
        Workload::Ior(IorConfig::paper_scalability(
            WorkloadClass::Scientific,
            1,
            44,
        )),
    );
    let mut deck = Deck::single("fig2a", base)
        .with_title("Fig 2a example: IOR seq-write scalability on Lassen (44 ppn)");
    deck.axes.systems = vec!["vast-lassen".into(), "gpfs".into()];
    deck.axes.nodes = vec![1, 4, 16, 64];
    deck
}
