//! Table I — "Clusters used for experiments".

use hcs_topology::all_clusters;

/// Renders Table I from the topology crate.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str("TABLE I: Clusters used for experiments\n");
    out.push_str(&format!(
        "{:<8} {:>6} {:>5} {:>4} {:>8} {:<18} {:<10}\n",
        "Name", "Nodes", "CPU", "GPU", "RAM(GB)", "Arch", "Network"
    ));
    for c in all_clusters() {
        out.push_str(&format!(
            "{:<8} {:>6} {:>5} {:>4} {:>8.0} {:<18} {:<10}\n",
            c.name,
            c.nodes,
            c.node.cores,
            c.node.gpus,
            c.node.ram / 1e9,
            c.node.arch,
            c.node.nic.name,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_rows() {
        let t = render();
        for name in ["Lassen", "Ruby", "Quartz", "Wombat"] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("795"));
        assert!(t.contains("3018"));
        assert!(t.contains("A64fx"));
    }
}
