//! Fig 3 — "Single node test with fsync results for scientific
//! simulations and data analytics."
//!
//! Four panels, one per machine (§V): (a) Lassen — VAST vs GPFS,
//! (b) Quartz — VAST vs Lustre, (c) Ruby — VAST vs Lustre,
//! (d) Wombat — VAST vs NVMe. One node, 1–32 processes,
//! synchronization on writes ("our purpose is to test the raw
//! performance of the file systems").

use hcs_core::scenario::{IorConfig, Scenario, Workload, WorkloadClass};
use hcs_core::Deck;

use crate::deck::run_deck;
use crate::figures::{ior_bandwidth_figure, workload_tag};
use crate::series::Figure;
use crate::sweep::Scale;

/// One panel as a deck: sweep systems × process counts on one node.
fn deck(
    id: &str,
    machine: &str,
    systems: &[&str],
    procs: &[u32],
    workload: WorkloadClass,
    reps: u32,
) -> Deck {
    let base = Scenario::new(
        systems[0],
        Workload::Ior(IorConfig::paper_single_node(workload, 1)),
    )
    .with_reps(reps);
    let mut deck = Deck::single(format!("{id}.{}", workload_tag(workload)), base).with_title(
        format!("Single node with fsync on {machine} — {}", workload.label()),
    );
    deck.axes.systems = systems.iter().map(|s| s.to_string()).collect();
    deck.axes.ppn = procs.to_vec();
    deck
}

/// The eight Fig 3 decks (four machines × two workloads), in figure
/// order.
pub fn decks(scale: Scale) -> Vec<Deck> {
    let procs = scale.single_node_procs();
    let reps = scale.reps();
    let mut decks = Vec::new();
    for w in [WorkloadClass::Scientific, WorkloadClass::DataAnalytics] {
        decks.push(deck(
            "fig3a",
            "Lassen",
            &["vast-lassen", "gpfs"],
            &procs,
            w,
            reps,
        ));
        decks.push(deck(
            "fig3b",
            "Quartz",
            &["vast-quartz", "lustre-quartz"],
            &procs,
            w,
            reps,
        ));
        decks.push(deck(
            "fig3c",
            "Ruby",
            &["vast-ruby", "lustre-ruby"],
            &procs,
            w,
            reps,
        ));
        decks.push(deck(
            "fig3d",
            "Wombat",
            &["vast-wombat", "nvme"],
            &procs,
            w,
            reps,
        ));
    }
    decks
}

/// Generates Fig 3a–3d for both single-node workloads (eight figures).
pub fn generate(scale: Scale) -> Vec<Figure> {
    decks(scale)
        .iter()
        .map(|d| {
            ior_bandwidth_figure(&run_deck(d), "processes", "bandwidth (GB/s)", |p| {
                p.ppn as f64
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn fig3_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        assert_eq!(figs.len(), 8);
        let get = |id: &str| figs.iter().find(|f| f.id == id).expect("figure");

        // (b)/(c): Lustre ramps near-linearly and beats gateway-starved
        // VAST at full process counts.
        for id in ["fig3b.scientific", "fig3c.scientific"] {
            let f = get(id);
            let lustre = f.series_named("Lustre").unwrap();
            let vast = f.series_named("VAST").unwrap();
            assert!(shapes::scales_with_factor(lustre, 1.6), "{id}");
            assert!(
                lustre.y_at(32.0).unwrap() > 4.0 * vast.y_at(32.0).unwrap(),
                "{id}: Lustre should dwarf VAST at 32 procs"
            );
        }

        // (d): VAST ≈ 5× NVMe at 32 procs (§V.A).
        let f = get("fig3d.scientific");
        let r = shapes::ratio_at(
            f.series_named("VAST").unwrap(),
            f.series_named("NVMe").unwrap(),
            32.0,
        )
        .unwrap();
        assert!((3.0..8.0).contains(&r), "VAST/NVMe at 32 procs = {r}");

        // (a): VAST flat at its TCP ceiling; GPFS fsync ramps past it.
        let f = get("fig3a.scientific");
        let vast = f.series_named("VAST").unwrap();
        assert!(shapes::saturates_from(vast, 4.0, 0.25));

        // VAST single-node ordering across machines: Lassen > Ruby > Quartz.
        let va = get("fig3a.analytics")
            .series_named("VAST")
            .unwrap()
            .y_at(32.0)
            .unwrap();
        let vr = get("fig3c.analytics")
            .series_named("VAST")
            .unwrap()
            .y_at(32.0)
            .unwrap();
        let vq = get("fig3b.analytics")
            .series_named("VAST")
            .unwrap()
            .y_at(32.0)
            .unwrap();
        assert!(va > vr && vr > vq, "ordering: {va} {vr} {vq}");
    }
}
