//! Fig 3 — "Single node test with fsync results for scientific
//! simulations and data analytics."
//!
//! Four panels, one per machine (§V): (a) Lassen — VAST vs GPFS,
//! (b) Quartz — VAST vs Lustre, (c) Ruby — VAST vs Lustre,
//! (d) Wombat — VAST vs NVMe. One node, 1–32 processes,
//! synchronization on writes ("our purpose is to test the raw
//! performance of the file systems").

use hcs_core::StorageSystem;
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_lustre::LustreConfig;
use hcs_nvme::LocalNvmeConfig;
use hcs_vast::{vast_on_lassen, vast_on_quartz, vast_on_ruby, vast_on_wombat};

use crate::series::{Figure, Point, Series};
use crate::sweep::{parallel_sweep, Scale};

fn workload_tag(w: WorkloadClass) -> &'static str {
    match w {
        WorkloadClass::Scientific => "scientific",
        WorkloadClass::DataAnalytics => "analytics",
        WorkloadClass::MachineLearning => "ml",
    }
}

fn panel(
    id: &str,
    machine: &str,
    systems: &[&dyn StorageSystem],
    procs: &[u32],
    workload: WorkloadClass,
    reps: u32,
) -> Figure {
    let mut fig = Figure::new(
        format!("{id}.{}", workload_tag(workload)),
        format!("Single node with fsync on {machine} — {}", workload.label()),
        "processes",
        "bandwidth (GB/s)",
    );
    for sys in systems {
        let points = parallel_sweep(procs.to_vec(), |&p| {
            let mut cfg = IorConfig::paper_single_node(workload, p);
            cfg.reps = reps;
            let rep = run_ior(*sys, &cfg);
            Point {
                x: p as f64,
                y: rep.outcome.summary.mean / 1e9,
                y_std: rep.outcome.summary.std_dev / 1e9,
            }
        });
        fig.series.push(Series {
            label: sys.name().to_string(),
            points,
        });
    }
    fig
}

/// Generates Fig 3a–3d for both single-node workloads (eight figures).
pub fn generate(scale: Scale) -> Vec<Figure> {
    let procs = scale.single_node_procs();
    let reps = scale.reps();

    let vast_l = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    let vast_q = vast_on_quartz();
    let lustre_q = LustreConfig::on_quartz();
    let vast_r = vast_on_ruby();
    let lustre_r = LustreConfig::on_ruby();
    let vast_w = vast_on_wombat();
    let nvme = LocalNvmeConfig::on_wombat();

    let mut figs = Vec::new();
    for w in [WorkloadClass::Scientific, WorkloadClass::DataAnalytics] {
        figs.push(panel("fig3a", "Lassen", &[&vast_l, &gpfs], &procs, w, reps));
        figs.push(panel(
            "fig3b",
            "Quartz",
            &[&vast_q, &lustre_q],
            &procs,
            w,
            reps,
        ));
        figs.push(panel(
            "fig3c",
            "Ruby",
            &[&vast_r, &lustre_r],
            &procs,
            w,
            reps,
        ));
        figs.push(panel("fig3d", "Wombat", &[&vast_w, &nvme], &procs, w, reps));
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn fig3_shapes_hold_at_smoke_scale() {
        let figs = generate(Scale::Smoke);
        assert_eq!(figs.len(), 8);
        let get = |id: &str| figs.iter().find(|f| f.id == id).expect("figure");

        // (b)/(c): Lustre ramps near-linearly and beats gateway-starved
        // VAST at full process counts.
        for id in ["fig3b.scientific", "fig3c.scientific"] {
            let f = get(id);
            let lustre = f.series_named("Lustre").unwrap();
            let vast = f.series_named("VAST").unwrap();
            assert!(shapes::scales_with_factor(lustre, 1.6), "{id}");
            assert!(
                lustre.y_at(32.0).unwrap() > 4.0 * vast.y_at(32.0).unwrap(),
                "{id}: Lustre should dwarf VAST at 32 procs"
            );
        }

        // (d): VAST ≈ 5× NVMe at 32 procs (§V.A).
        let f = get("fig3d.scientific");
        let r = shapes::ratio_at(
            f.series_named("VAST").unwrap(),
            f.series_named("NVMe").unwrap(),
            32.0,
        )
        .unwrap();
        assert!((3.0..8.0).contains(&r), "VAST/NVMe at 32 procs = {r}");

        // (a): VAST flat at its TCP ceiling; GPFS fsync ramps past it.
        let f = get("fig3a.scientific");
        let vast = f.series_named("VAST").unwrap();
        assert!(shapes::saturates_from(vast, 4.0, 0.25));

        // VAST single-node ordering across machines: Lassen > Ruby > Quartz.
        let va = get("fig3a.analytics")
            .series_named("VAST")
            .unwrap()
            .y_at(32.0)
            .unwrap();
        let vr = get("fig3c.analytics")
            .series_named("VAST")
            .unwrap()
            .y_at(32.0)
            .unwrap();
        let vq = get("fig3b.analytics")
            .series_named("VAST")
            .unwrap()
            .y_at(32.0)
            .unwrap();
        assert!(va > vr && vr > vq, "ordering: {va} {vr} {vq}");
    }
}
