//! # hcs-experiments
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper from the simulation stack:
//!
//! | Artifact | Module | Content |
//! |---|---|---|
//! | Table I  | [`figures::table1`] | cluster specifications |
//! | Fig 2a/2b | [`figures::fig2`] | IOR scalability, Lassen & Wombat, three workloads |
//! | Fig 3a–3d | [`figures::fig3`] | single-node fsync tests on all four machines |
//! | Fig 4a/4b | [`figures::fig4`] | DLIO I/O-time decomposition (ResNet-50, Cosmoflow) |
//! | Fig 5a/5b | [`figures::fig5`] | ResNet-50 application & system throughput |
//! | Fig 6a/6b | [`figures::fig6`] | Cosmoflow application & system throughput |
//! | §VII takeaways | [`figures::takeaways`] | the three quantified takeaways + the 97 % compute fraction |
//! | — | [`figures::ablations`] | design-choice sweeps beyond the paper (gateway width, nconnect, similarity reduction, cache off, I/O threads) |
//!
//! Each generator returns [`series::Figure`] values that can be rendered
//! as ASCII charts ([`render`]), written as CSV/JSON ([`output`]), and
//! checked against the paper's qualitative shapes ([`shapes`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod deck;
pub mod figures;
pub mod metrics;
pub mod output;
pub mod registry;
pub mod render;
pub mod report;
pub mod series;
pub mod shapes;
pub mod svg;
pub mod sweep;
pub mod traced;

pub use chaos::run_chaos_campaign;
pub use deck::{
    run_deck, run_deck_traced, run_deck_traced_with_metrics, run_deck_traced_with_provenance,
    run_deck_with_metrics, run_deck_with_provenance, run_scenario_metered, validate_deck,
    validate_provenance, DeckResult, PointResult, WorkloadOutcome,
};
pub use metrics::deck_metrics_summary;
pub use report::{render_chaos_markdown, render_markdown, to_report_json, ReportJson};
pub use series::{Figure, Point, Series};
pub use sweep::Scale;
pub use traced::{traced_ior_sweep, TracedPoint, TracedSweep};
