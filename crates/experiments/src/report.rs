//! The `hcs report` renderer: one markdown (or JSON) attribution table
//! per executed deck.
//!
//! Input is a [`DeckResult`] as `hcs run` writes it. Points that carry
//! [`PointMetrics`] (a `--metrics` run) get the full treatment —
//! bottleneck stage + share, I/O-time decomposition bars, perceived
//! vs. system throughput, cross-rep CV; points without metrics fall
//! back to a headline-only table, so the command works on any result
//! artifact. Everything rendered here is deterministic: the one
//! non-deterministic metric (host wall clock) is deliberately omitted,
//! which is what lets `tests/report_golden.rs` pin the output byte for
//! byte.

use std::fmt::Write as _;

use hcs_core::metrics::{DeckMetricsSummary, PointMetrics, ProvenanceMetrics, Stats};
use hcs_core::ChaosReport;
use serde::{Deserialize, Serialize};

use crate::deck::{DeckResult, PointResult};

/// Numeric formatting shared by [`WorkloadOutcome::headline`] and the
/// report tables, so CLI one-liners and report cells agree on units and
/// precision.
///
/// [`WorkloadOutcome::headline`]: crate::deck::WorkloadOutcome::headline
pub mod fmt {
    /// Bandwidth in GB/s, two decimals: "12.34 GB/s".
    pub fn gbps(bytes_per_s: f64) -> String {
        format!("{:.2} GB/s", bytes_per_s / 1e9)
    }

    /// Bandwidth with spread: "12.34 ± 0.56 GB/s".
    pub fn gbps_pm(mean: f64, std_dev: f64) -> String {
        format!("{:.2} ± {:.2} GB/s", mean / 1e9, std_dev / 1e9)
    }

    /// Duration, one decimal: "12.3 s".
    pub fn seconds(s: f64) -> String {
        format!("{s:.1} s")
    }

    /// Duration, two decimals for table cells: "12.34 s".
    pub fn seconds2(s: f64) -> String {
        format!("{s:.2} s")
    }

    /// Integer-rounded rate (samples/s, ops/s): "1234".
    pub fn rate(r: f64) -> String {
        format!("{r:.0}")
    }

    /// Integer percentage of a fraction: "97%".
    pub fn percent(fraction: f64) -> String {
        format!("{:.0}%", fraction * 100.0)
    }

    /// One-decimal percentage for CVs and shares: "4.2%".
    pub fn percent1(fraction: f64) -> String {
        format!("{:.1}%", fraction * 100.0)
    }

    /// A value in a family's unit: bytes/s render as GB/s, seconds as
    /// durations, anything else as an integer rate with its unit.
    pub fn value(v: f64, unit: &str) -> String {
        match unit {
            "B/s" => gbps(v),
            "s" => seconds(v),
            _ => format!("{} {unit}", rate(v)),
        }
    }

    /// An optional latency: the adaptive rendering when present, an
    /// em-dash when the histogram recorded nothing.
    pub fn latency_opt(s: Option<f64>) -> String {
        s.map(latency).unwrap_or_else(|| "\u{2014}".into())
    }

    /// A latency in seconds, adaptive unit: "850 µs", "12.34 ms",
    /// "1.50 s".
    pub fn latency(s: f64) -> String {
        if s < 1e-3 {
            format!("{:.0} µs", s * 1e6)
        } else if s < 1.0 {
            format!("{:.2} ms", s * 1e3)
        } else {
            format!("{s:.2} s")
        }
    }

    /// A byte count, binary units when exact: "1 MiB", "4 KiB", "37 B".
    pub fn bytes(b: u64) -> String {
        if b >= 1 << 20 && b % (1 << 20) == 0 {
            format!("{} MiB", b >> 20)
        } else if b >= 1 << 10 && b % (1 << 10) == 0 {
            format!("{} KiB", b >> 10)
        } else {
            format!("{b} B")
        }
    }
}

/// Width of the decomposition bar column, characters.
const BAR_WIDTH: usize = 12;

/// Renders a share bar over labelled segments. Cells are allocated by
/// largest remainder so the bar always has exactly [`BAR_WIDTH`]
/// characters and the split is deterministic.
fn remainder_bar(segments: &[(char, f64)]) -> String {
    let total: f64 = segments.iter().map(|(_, v)| v.max(0.0)).sum();
    if total <= 0.0 {
        return "-".repeat(BAR_WIDTH);
    }
    let exact: Vec<f64> = segments
        .iter()
        .map(|(_, v)| v.max(0.0) / total * BAR_WIDTH as f64)
        .collect();
    let mut cells: Vec<usize> = exact.iter().map(|x| x.floor() as usize).collect();
    let mut rest: usize = BAR_WIDTH - cells.iter().sum::<usize>();
    while rest > 0 {
        // Hand leftover cells to the largest fractional remainder,
        // first-of-max on ties.
        let mut best = 0;
        for i in 1..exact.len() {
            if exact[i] - cells[i] as f64 > exact[best] - cells[best] as f64 {
                best = i;
            }
        }
        cells[best] += 1;
        rest -= 1;
    }
    let mut bar = String::with_capacity(BAR_WIDTH);
    for ((ch, _), n) in segments.iter().zip(cells) {
        for _ in 0..n {
            bar.push(*ch);
        }
    }
    bar
}

/// Renders an application-perceived-runtime bar: `c` compute-only,
/// `o` I/O hidden behind compute, `s` non-overlapping I/O (stall).
fn decomposition_bar(m: &PointMetrics) -> String {
    let d = &m.decomposition;
    remainder_bar(&[
        ('c', (d.compute_total - d.overlapping_io).max(0.0)),
        ('o', d.overlapping_io.max(0.0)),
        ('s', d.non_overlapping_io.max(0.0)),
    ])
}

/// Renders a latency-provenance bar: `q` open-loop queueing, `f`
/// fault stall, `b` contention blame, `i` ideal service.
fn provenance_bar(p: &ProvenanceMetrics) -> String {
    remainder_bar(&[
        ('q', p.queueing_seconds),
        ('f', p.stall_seconds),
        ('b', p.blame_seconds),
        ('i', p.ideal_seconds),
    ])
}

/// The top bottleneck of a metered point, as "stage name (share)".
fn bottleneck_cell(m: &PointMetrics) -> String {
    match m.bottlenecks.first() {
        Some(b) => format!(
            "{} {} ({})",
            b.kind.map(|k| k.label()).unwrap_or("?"),
            b.name,
            fmt::percent1(b.share)
        ),
        None => "—".to_string(),
    }
}

fn point_scale(p: &PointResult) -> String {
    format!("{}x{}", p.nodes, p.ppn)
}

/// Renders a deck result as a markdown report.
pub fn render_markdown(result: &DeckResult) -> String {
    let mut out = String::new();
    let title = if result.title.is_empty() {
        "untitled"
    } else {
        &result.title
    };
    let _ = writeln!(out, "# Deck `{}` — {}", result.name, title);
    let metered = result.points.iter().filter(|p| p.metrics.is_some()).count();
    let systems = result.by_system().len();
    let _ = writeln!(
        out,
        "\n{} point{} · {} system{} · metrics on {} point{}\n",
        result.points.len(),
        if result.points.len() == 1 { "" } else { "s" },
        systems,
        if systems == 1 { "" } else { "s" },
        metered,
        if metered == 1 { "" } else { "s" },
    );

    let _ = writeln!(out, "## Points\n");
    if metered == 0 {
        let _ = writeln!(out, "| point | system | scale | headline |");
        let _ = writeln!(out, "|---|---|---|---|");
        for p in &result.points {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                p.scenario.name,
                p.system,
                point_scale(p),
                p.outcome.headline()
            );
        }
        let _ = writeln!(
            out,
            "\n_No metrics in this artifact — re-run with `hcs run --metrics` to collect \
             decomposition, bottleneck shares and cross-rep statistics._"
        );
        return out;
    }

    let _ = writeln!(
        out,
        "| point | system | scale | headline | bottleneck | c/o/s | read | write | compute | stall | perceived | system thpt | rep CV |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|---|---|");
    for p in &result.points {
        match &p.metrics {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | `{}` | {} | {} | {} | {} | {} | {} | {} |",
                    p.scenario.name,
                    p.system,
                    point_scale(p),
                    p.outcome.headline(),
                    bottleneck_cell(m),
                    decomposition_bar(m),
                    fmt::seconds2(m.read_seconds),
                    fmt::seconds2(m.write_seconds),
                    fmt::seconds2(m.decomposition.compute_total),
                    fmt::seconds2(m.decomposition.non_overlapping_io),
                    fmt::value(m.perceived_throughput, &m.throughput_unit),
                    fmt::value(m.system_throughput, &m.throughput_unit),
                    fmt::percent1(m.rep_cv),
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | — | — | — | — | — | — | — | — | — |",
                    p.scenario.name,
                    p.system,
                    point_scale(p),
                    p.outcome.headline(),
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "\n_Bar: `c` compute-only, `o` I/O overlapped with compute, `s` stall \
         (non-overlapping I/O), over the application-perceived runtime._"
    );

    let faulted: Vec<&PointResult> = result
        .points
        .iter()
        .filter(|p| p.metrics.as_ref().is_some_and(|m| m.resilience.is_some()))
        .collect();
    if !faulted.is_empty() {
        let _ = writeln!(out, "\n## Resilience\n");
        let _ = writeln!(
            out,
            "| point | system | slowdown | fault-free | faulted | stall | drain | events |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        for p in &faulted {
            let r = p
                .metrics
                .as_ref()
                .and_then(|m| m.resilience.as_ref())
                .expect("filtered on resilience presence");
            let _ = writeln!(
                out,
                "| {} | {} | {:.2}x | {} | {} | {} | {} | {} |",
                p.scenario.name,
                p.system,
                r.slowdown_factor,
                fmt::seconds2(r.fault_free_seconds),
                fmt::seconds2(r.faulted_seconds),
                fmt::seconds2(r.stall_seconds),
                fmt::seconds2(r.drain_seconds),
                r.fault_events,
            );
        }
        let _ = writeln!(
            out,
            "\n_Slowdown is faulted over fault-free runtime of the same point (paired twin, \
             identical noise stream); stall is time with every active flow at rate zero; \
             drain is runtime past the last capacity event._"
        );
    }

    let with_latency: Vec<&PointResult> = result
        .points
        .iter()
        .filter(|p| p.metrics.as_ref().is_some_and(|m| !m.latency.is_empty()))
        .collect();
    if !with_latency.is_empty() {
        let _ = writeln!(out, "\n## Latency\n");
        let _ = writeln!(
            out,
            "| point | system | op | size | ops | p50 | p95 | p99 | p999 |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
        for p in &with_latency {
            let m = p.metrics.as_ref().expect("filtered on latency presence");
            for row in &m.latency {
                let h = &row.histogram;
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                    p.scenario.name,
                    p.system,
                    row.op,
                    fmt::bytes(row.size_bytes),
                    h.count(),
                    fmt::latency_opt(h.p50()),
                    fmt::latency_opt(h.p95()),
                    fmt::latency_opt(h.p99()),
                    fmt::latency_opt(h.p999()),
                );
            }
        }
        let _ = writeln!(
            out,
            "\n_Per-operation submit→finish latency (queueing included) under the open-loop \
             arrival process; percentiles are nearest-rank over log-bucketed histograms \
             (≤ 3.2% relative error) and merge exactly across reps and workers._"
        );
        if let Some(summary) = &result.metrics {
            if !summary.knees.is_empty() {
                let _ = writeln!(out, "\n### Throughput–latency knee\n");
                for k in &summary.knees {
                    match (&k.knee_rate, &k.knee_point, &k.knee_p99) {
                        (Some(rate), Some(point), Some(p99)) => {
                            let blame = k
                                .knee_blame
                                .as_deref()
                                .map(|r| {
                                    format!(
                                        " Blame growth indicts `{r}` — the stage whose \
                                         contention share grew most from the baseline."
                                    )
                                })
                                .unwrap_or_default();
                            let _ = writeln!(
                                out,
                                "- **{}**: knee at {} ops/s (`{}`) — p99 {} vs {} baseline at \
                                 {} ops/s ({}x threshold).{}",
                                k.system,
                                fmt::rate(*rate),
                                point,
                                fmt::latency(*p99),
                                fmt::latency(k.baseline_p99),
                                fmt::rate(k.baseline_rate),
                                k.threshold,
                                blame,
                            );
                        }
                        _ => {
                            let _ = writeln!(
                                out,
                                "- **{}**: no knee within the swept range — p99 stays under {}x \
                                 the {} baseline at {} ops/s.",
                                k.system,
                                k.threshold,
                                fmt::latency(k.baseline_p99),
                                fmt::rate(k.baseline_rate),
                            );
                        }
                    }
                }
            }
        }
    }

    let with_prov: Vec<(&PointResult, &ProvenanceMetrics)> = result
        .points
        .iter()
        .filter_map(|p| {
            p.metrics
                .as_ref()
                .and_then(|m| m.provenance.as_ref())
                .map(|prov| (p, prov))
        })
        .collect();
    if !with_prov.is_empty() {
        let _ = writeln!(out, "\n## Tail forensics\n");
        let _ = writeln!(
            out,
            "| point | system | ops | tail ops | tail > | queueing | stall | blame | ideal | \
             q/f/b/i |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
        for (p, prov) in &with_prov {
            let total = prov.latency_seconds;
            let share = |v: f64| {
                if total > 0.0 {
                    fmt::percent1(v / total)
                } else {
                    "\u{2014}".into()
                }
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | `{}` |",
                p.scenario.name,
                p.system,
                prov.ops,
                prov.tail_ops,
                fmt::latency(prov.tail_threshold),
                share(prov.queueing_seconds),
                share(prov.stall_seconds),
                share(prov.blame_seconds),
                share(prov.ideal_seconds),
                provenance_bar(prov),
            );
        }
        let mut wrote_tail_heading = false;
        for (p, prov) in &with_prov {
            let stages = prov.tail_stages();
            if stages.is_empty() {
                continue;
            }
            if !wrote_tail_heading {
                let _ = writeln!(out, "\n### Ops above p99 \u{2014} top-blamed stages\n");
                wrote_tail_heading = true;
            }
            let tail_blame: f64 = stages.iter().map(|(_, secs)| secs).sum();
            let listed = stages
                .iter()
                .take(3)
                .map(|(name, secs)| {
                    let frac = secs / tail_blame;
                    format!(
                        "`{name}` {} {}",
                        remainder_bar(&[('#', frac), (' ', 1.0 - frac)]),
                        fmt::percent1(frac)
                    )
                })
                .collect::<Vec<_>>()
                .join(" \u{b7} ");
            let _ = writeln!(
                out,
                "- **{}** ({}): {} ops slower than {} \u{2014} {}",
                p.scenario.name,
                p.system,
                prov.tail_ops,
                fmt::latency(prov.tail_threshold),
                listed,
            );
        }
        let _ = writeln!(
            out,
            "\n_Per-op critical-path attribution: every op's measured latency decomposes \
             exactly (bitwise) into open-loop queueing + fault stall + per-stage contention \
             blame + ideal service; an epoch charges the most-saturated resource on the op's \
             path whenever its achieved rate trails its demand. Shares are of summed \
             latency; the tail rows cover ops above the point's open-loop p99._"
        );
    }

    if let Some(summary) = &result.metrics {
        let _ = writeln!(out, "\n## Cross-rep statistics\n");
        let _ = writeln!(
            out,
            "| system | points | headline mean | min | p50 | p95 | max | rep CV mean | top bottleneck |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
        let val = |s: &Stats, pick: fn(&Stats) -> f64| fmt::value(pick(s), &summary.unit);
        for s in &summary.systems {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
                s.system,
                s.points,
                val(&s.headline, Stats::mean),
                val(&s.headline, Stats::min),
                val(&s.headline, Stats::p50),
                val(&s.headline, Stats::p95),
                val(&s.headline, Stats::max),
                fmt::percent1(s.rep_cv.mean()),
                s.top_bottleneck.as_deref().unwrap_or("—"),
            );
        }
        let _ = writeln!(out, "\n## Verdict\n");
        match &summary.winner {
            Some(w) if summary.systems.len() > 1 => {
                let direction = if summary.higher_is_better {
                    "highest"
                } else {
                    "lowest"
                };
                let _ = writeln!(
                    out,
                    "- **Winner:** {w} — {} mean headline ({}), {:.2}x over the runner-up.",
                    direction, summary.unit, summary.factor
                );
            }
            Some(w) => {
                let _ = writeln!(out, "- Single system: {w} (nothing to compare against).");
            }
            None => {
                let _ = writeln!(out, "- No points — nothing to rank.");
            }
        }
        if summary.crossovers.is_empty() {
            let _ = writeln!(out, "- Crossovers: none along the sweep.");
        } else {
            for c in &summary.crossovers {
                let _ = writeln!(out, "- Crossover: {c}");
            }
        }
    }
    out
}

/// The JSON form of a report (`hcs report --format json`): the same
/// content as the markdown table, as data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReportJson {
    /// Deck name.
    pub name: String,
    /// Deck title.
    pub title: String,
    /// One entry per deck point, in sweep order.
    pub points: Vec<ReportPointJson>,
    /// The deck-level roll-up, when the run collected metrics.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub summary: Option<DeckMetricsSummary>,
}

/// One point of a [`ReportJson`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReportPointJson {
    /// Expanded point name.
    pub point: String,
    /// System display name.
    pub system: String,
    /// Client nodes.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// The family's one-line summary.
    pub headline: String,
    /// Full per-point metrics, when collected.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<PointMetrics>,
}

/// Converts a deck result into its JSON report form.
pub fn to_report_json(result: &DeckResult) -> ReportJson {
    ReportJson {
        name: result.name.clone(),
        title: result.title.clone(),
        points: result
            .points
            .iter()
            .map(|p| ReportPointJson {
                point: p.scenario.name.clone(),
                system: p.system.clone(),
                nodes: p.nodes,
                ppn: p.ppn,
                headline: p.outcome.headline(),
                metrics: p.metrics.clone(),
            })
            .collect(),
        summary: result.metrics.clone(),
    }
}

/// Renders a chaos-campaign report as markdown: the invariant
/// pass/fail table, minimized counterexamples (if any), the worst-case
/// slowdown Pareto frontier and the per-stage fragility ranking.
pub fn render_chaos_markdown(report: &ChaosReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Chaos campaign `{}`", report.campaign);
    let _ = writeln!(
        out,
        "\n{} point{} × {} timelines = {} runs ({} engine runs incl. prefix probes) · seed {}\n",
        report.points,
        if report.points == 1 { "" } else { "s" },
        report.population,
        report.timelines,
        report.engine_runs,
        report.seed,
    );

    let _ = writeln!(out, "## Invariants\n");
    let _ = writeln!(out, "| invariant | checked | passed | verdict |");
    let _ = writeln!(out, "|---|---|---|---|");
    for stat in &report.invariants {
        let verdict = if stat.passed == stat.checked {
            "ok"
        } else {
            "**VIOLATED**"
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            stat.invariant.label(),
            stat.checked,
            stat.passed,
            verdict,
        );
    }

    if !report.violations.is_empty() {
        let _ = writeln!(out, "\n## Counterexamples\n");
        for v in &report.violations {
            let _ = writeln!(
                out,
                "- `{}` timeline {}: {} — {} ({} event{} after minimization)",
                v.point,
                v.timeline,
                v.invariant.label(),
                v.detail,
                v.minimized.len(),
                if v.minimized.len() == 1 { "" } else { "s" },
            );
        }
    }

    let _ = writeln!(out, "\n## Worst-case slowdown per fault budget\n");
    if report.pareto.is_empty() {
        let _ = writeln!(out, "(no faulted timeline slowed its point down)");
    } else {
        let _ = writeln!(
            out,
            "| budget spent | faults | slowdown | point | timeline |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|");
        for p in &report.pareto {
            let _ = writeln!(
                out,
                "| {} | {} | {:.2}x | {} | {} |",
                fmt::seconds2(p.cost_seconds),
                p.faults,
                p.slowdown,
                p.point,
                p.timeline,
            );
        }
    }

    let _ = writeln!(out, "\n## Stage fragility\n");
    let _ = writeln!(out, "| stage | timelines | mean slowdown | max slowdown |");
    let _ = writeln!(out, "|---|---|---|---|");
    for row in &report.fragility {
        let _ = writeln!(
            out,
            "| {} | {} | {:.2}x | {:.2}x |",
            row.stage.label(),
            row.timelines,
            row.mean_slowdown,
            row.max_slowdown,
        );
    }
    let _ = writeln!(
        out,
        "\nworst slowdown anywhere: {:.2}x",
        report.max_slowdown
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::metrics::Stats;
    use hcs_dftrace::IoDecomposition;

    fn toy_metrics(compute: f64, overlap: f64, stall: f64) -> PointMetrics {
        PointMetrics {
            decomposition: IoDecomposition {
                total_runtime: compute + stall,
                io_total: overlap + stall,
                compute_total: compute,
                overlapping_io: overlap,
                non_overlapping_io: stall,
            },
            read_seconds: overlap + stall,
            write_seconds: 0.0,
            perceived_throughput: 100.0,
            system_throughput: 120.0,
            throughput_unit: "samples/s".into(),
            headline_value: 100.0,
            headline_unit: "samples/s".into(),
            higher_is_better: true,
            rep_values: Stats::from_values(vec![100.0]),
            rep_cv: 0.0,
            bottlenecks: vec![],
            solver_epochs: 0,
            flow_groups: 0,
            wall_clock_seconds: 0.0,
            resilience: None,
            latency: Vec::new(),
            provenance: None,
        }
    }

    #[test]
    fn bar_partitions_exactly() {
        let bar = decomposition_bar(&toy_metrics(9.0, 2.0, 1.0));
        assert_eq!(bar.len(), BAR_WIDTH);
        // 8/12 compute-only, 2.4→2 overlap, 1.2→2 stall by remainders.
        assert_eq!(
            bar.matches('c').count() + bar.matches('o').count() + bar.matches('s').count(),
            BAR_WIDTH
        );
        assert!(bar.starts_with("cccc"), "{bar}");
    }

    #[test]
    fn zero_runtime_bar_is_placeholder() {
        assert_eq!(
            decomposition_bar(&toy_metrics(0.0, 0.0, 0.0)),
            "-".repeat(BAR_WIDTH)
        );
    }

    #[test]
    fn fmt_helpers_agree_with_headline_precision() {
        assert_eq!(
            fmt::gbps_pm(12_340_000_000.0, 560_000_000.0),
            "12.34 ± 0.56 GB/s"
        );
        assert_eq!(fmt::seconds(12.34), "12.3 s");
        assert_eq!(fmt::rate(1234.4), "1234");
        assert_eq!(fmt::percent(0.97), "97%");
        assert_eq!(fmt::value(2_500_000_000.0, "B/s"), "2.50 GB/s");
        assert_eq!(fmt::value(42.0, "s"), "42.0 s");
        assert_eq!(fmt::value(1000.6, "ops/s"), "1001 ops/s");
    }
}
