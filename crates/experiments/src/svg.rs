//! Self-contained SVG rendering of figures — line charts with log-2 or
//! linear x axes, matching the paper's figure style (node/process
//! counts on x, bandwidth or time on y, one polyline per system).
//!
//! No plotting dependency: the charts are assembled from SVG primitives
//! so `results/` carries viewable artifacts next to the CSV/JSON.

use std::fmt::Write as _;

use crate::series::Figure;

/// Chart geometry.
const W: f64 = 720.0;
const H: f64 = 440.0;
const ML: f64 = 70.0; // left margin
const MR: f64 = 160.0; // right margin (legend)
const MT: f64 = 50.0;
const MB: f64 = 60.0;

/// A small qualitative palette (colorblind-safe Okabe–Ito subset).
const COLORS: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

fn is_pow2ish(xs: &[f64]) -> bool {
    xs.len() >= 3 && xs.windows(2).all(|w| w[0] > 0.0 && w[1] / w[0] >= 1.5)
}

/// Renders a figure as an SVG line chart. The x axis goes log-2 when
/// the x values look like a doubling sweep (node counts), linear
/// otherwise.
pub fn to_svg(fig: &Figure) -> String {
    let xs: Vec<f64> = {
        let mut v: Vec<f64> = fig
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        v
    };
    let y_max = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.y + p.y_std))
        .fold(0.0_f64, f64::max)
        .max(1e-12);
    let logx = is_pow2ish(&xs);
    let (x_lo, x_hi) = match (xs.first(), xs.last()) {
        (Some(&a), Some(&b)) if b > a => (a, b),
        (Some(&a), _) => (a - 0.5, a + 0.5),
        _ => (0.0, 1.0),
    };
    let xmap = |x: f64| -> f64 {
        let t = if logx {
            (x.max(1e-12) / x_lo.max(1e-12)).log2() / (x_hi / x_lo.max(1e-12)).log2().max(1e-12)
        } else {
            (x - x_lo) / (x_hi - x_lo)
        };
        ML + t * (W - ML - MR)
    };
    let ymap = |y: f64| -> f64 { H - MB - (y / (y_max * 1.05)) * (H - MT - MB) };

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(svg, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
    // Title.
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" font-size="14" font-weight="bold">{}</text>"#,
        ML,
        xml_escape(&fig.title)
    );
    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
        H - MB
    );
    let _ = write!(
        svg,
        r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        H - MB,
        W - MR,
        H - MB
    );
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        (ML + W - MR) / 2.0,
        H - 16.0,
        xml_escape(&fig.x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="18" y="{}" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
        (MT + H - MB) / 2.0,
        (MT + H - MB) / 2.0,
        xml_escape(&fig.y_label)
    );
    // X ticks at the data points.
    for &x in &xs {
        let px = xmap(x);
        let _ = write!(
            svg,
            r#"<line x1="{px:.1}" y1="{}" x2="{px:.1}" y2="{}" stroke="black"/><text x="{px:.1}" y="{}" text-anchor="middle">{x:.0}</text>"#,
            H - MB,
            H - MB + 5.0,
            H - MB + 20.0
        );
    }
    // Y ticks: 5 divisions.
    for i in 0..=5 {
        let y = y_max * 1.05 * i as f64 / 5.0;
        let py = ymap(y);
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{py:.1}" x2="{ML}" y2="{py:.1}" stroke="black"/><text x="{}" y="{py:.1}" text-anchor="end" dominant-baseline="middle">{}</text>"#,
            ML - 5.0,
            ML - 9.0,
            format_tick(y)
        );
        if i > 0 {
            let _ = write!(
                svg,
                r##"<line x1="{ML}" y1="{py:.1}" x2="{}" y2="{py:.1}" stroke="#dddddd"/>"##,
                W - MR
            );
        }
    }
    // Series.
    for (i, s) in fig.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let mut pts: Vec<(f64, f64)> = s.points.iter().map(|p| (xmap(p.x), ymap(p.y))).collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let path: String = pts
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            svg,
            r#"<polyline points="{path}" fill="none" stroke="{color}" stroke-width="2"/>"#
        );
        for (x, y) in &pts {
            let _ = write!(
                svg,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="{color}"/>"#
            );
        }
        // Error bars.
        for p in &s.points {
            if p.y_std > 0.0 {
                let px = xmap(p.x);
                let y1 = ymap(p.y + p.y_std);
                let y2 = ymap((p.y - p.y_std).max(0.0));
                let _ = write!(
                    svg,
                    r#"<line x1="{px:.1}" y1="{y1:.1}" x2="{px:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="1"/>"#
                );
            }
        }
        // Legend entry.
        let ly = MT + 18.0 * i as f64;
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{ly:.1}" x2="{}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}" dominant-baseline="middle">{}</text>"#,
            W - MR + 10.0,
            W - MR + 34.0,
            W - MR + 40.0,
            ly,
            xml_escape(&s.label)
        );
    }
    svg.push_str("</svg>");
    svg
}

fn format_tick(y: f64) -> String {
    if y == 0.0 {
        "0".into()
    } else if y >= 100.0 {
        format!("{y:.0}")
    } else if y >= 1.0 {
        format!("{y:.1}")
    } else {
        format!("{y:.3}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Writes `<id>.svg` for a figure under `dir`.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_svg(fig: &Figure, dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{}.svg", fig.id)), to_svg(fig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Figure, Point, Series};

    fn fig() -> Figure {
        Figure::new("f2", "Scalability <test>", "nodes", "GB/s")
            .with_series(Series {
                label: "VAST".into(),
                points: vec![
                    Point {
                        x: 1.0,
                        y: 1.0,
                        y_std: 0.1,
                    },
                    Point {
                        x: 2.0,
                        y: 2.0,
                        y_std: 0.2,
                    },
                    Point {
                        x: 4.0,
                        y: 4.0,
                        y_std: 0.0,
                    },
                    Point {
                        x: 8.0,
                        y: 4.1,
                        y_std: 0.0,
                    },
                ],
            })
            .with_series(Series::from_xy("GPFS", [(1.0, 3.0), (8.0, 24.0)]))
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = to_svg(&fig());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("VAST"));
        assert!(svg.contains("GPFS"));
        // Title is XML-escaped.
        assert!(svg.contains("Scalability &lt;test&gt;"));
        assert!(!svg.contains("<test>"));
        // Error bars present for the noisy points.
        assert!(svg.matches("<circle").count() >= 6);
    }

    #[test]
    fn doubling_sweeps_use_log_axis() {
        // Log x: equal pixel spacing between doublings.
        let svg = to_svg(&fig());
        assert!(is_pow2ish(&[1.0, 2.0, 4.0, 8.0]));
        assert!(!is_pow2ish(&[0.0, 1.0, 2.0, 3.0]));
        assert!(!svg.is_empty());
    }

    #[test]
    fn empty_figure_renders() {
        let f = Figure::new("empty", "t", "x", "y");
        let svg = to_svg(&f);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn single_point_series_renders() {
        let f = Figure::new("one", "t", "x", "y").with_series(Series::from_xy("a", [(4.0, 2.0)]));
        let svg = to_svg(&f);
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn write_svg_creates_file() {
        let dir = std::env::temp_dir().join("hcs-svg-test");
        write_svg(&fig(), &dir).unwrap();
        let content = std::fs::read_to_string(dir.join("f2.svg")).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
