//! ASCII rendering of figures for terminal reports.

use crate::series::Figure;

/// Renders a figure as an aligned ASCII table: one row per x, one
/// column per series.
pub fn to_table(fig: &Figure) -> String {
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN x"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mut out = String::new();
    out.push_str(&format!("# {} — {}\n", fig.id, fig.title));
    let mut header = format!("{:>12}", fig.x_label);
    for s in &fig.series {
        header.push_str(&format!(" | {:>24}", s.label));
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for &x in &xs {
        let mut row = format!("{x:>12.0}");
        for s in &fig.series {
            match s.y_at(x) {
                Some(y) => row.push_str(&format!(" | {y:>24.3}")),
                None => row.push_str(&format!(" | {:>24}", "-")),
            }
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Renders a crude horizontal bar chart of each series' values
/// (useful for the Fig 4 stacked-time panels).
pub fn to_bars(fig: &Figure, width: usize) -> String {
    let max = fig
        .series
        .iter()
        .map(|s| s.y_max())
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-30);
    let mut out = format!("# {} — {} ({})\n", fig.id, fig.title, fig.y_label);
    for s in &fig.series {
        out.push_str(&format!("{}\n", s.label));
        for p in &s.points {
            let n = ((p.y / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "  {:>8} {:<width$} {:.4}\n",
                p.x,
                "#".repeat(n.min(width)),
                p.y,
                width = width
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Figure, Series};

    fn fig() -> Figure {
        Figure::new("figX", "demo", "nodes", "GB/s")
            .with_series(Series::from_xy("VAST", [(1.0, 1.0), (2.0, 2.0)]))
            .with_series(Series::from_xy("GPFS", [(1.0, 14.5)]))
    }

    #[test]
    fn table_contains_all_labels_and_rows() {
        let t = to_table(&fig());
        assert!(t.contains("VAST"));
        assert!(t.contains("GPFS"));
        assert!(t.contains("14.5"));
        assert!(t.lines().count() >= 5);
        // Missing point renders as '-'.
        assert!(t.contains('-'));
    }

    #[test]
    fn bars_scale_to_width() {
        let b = to_bars(&fig(), 20);
        assert!(b.contains("####################")); // the max bar
        assert!(b.contains("VAST"));
    }
}
