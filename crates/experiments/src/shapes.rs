//! Qualitative shape checks.
//!
//! The reproduction target is the *shape* of each figure — who wins, by
//! roughly what factor, where saturation and crossovers fall — not the
//! absolute GB/s of somebody else's machine room. These helpers state
//! those shapes as checkable predicates; the integration tests and
//! EXPERIMENTS.md are built on them.

use crate::series::Series;

/// `true` if the series never decreases by more than `tol` (relative).
pub fn is_nondecreasing(s: &Series, tol: f64) -> bool {
    s.points.windows(2).all(|w| w[1].y >= w[0].y * (1.0 - tol))
}

/// `true` if each doubling of x multiplies y by at least `factor`
/// (near-linear scaling when `factor` ≈ 2).
pub fn scales_with_factor(s: &Series, factor: f64) -> bool {
    s.points.windows(2).all(|w| {
        let x_ratio = w[1].x / w[0].x;
        let expected = factor.powf(x_ratio.log2());
        w[1].y >= w[0].y * expected
    })
}

/// `true` if the series is flat (within `tol`, relative) from the first
/// point with `x >= from_x` onward.
pub fn saturates_from(s: &Series, from_x: f64, tol: f64) -> bool {
    let tail: Vec<f64> = s
        .points
        .iter()
        .filter(|p| p.x >= from_x - 1e-9)
        .map(|p| p.y)
        .collect();
    if tail.len() < 2 {
        return true;
    }
    let lo = tail.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    hi <= lo * (1.0 + tol)
}

/// The ratio `a/b` at a shared x, if both series have the point.
pub fn ratio_at(a: &Series, b: &Series, x: f64) -> Option<f64> {
    Some(a.y_at(x)? / b.y_at(x)?)
}

/// `true` if `a` is above `b` at every shared x.
pub fn dominates(a: &Series, b: &Series) -> bool {
    a.points
        .iter()
        .filter_map(|p| b.y_at(p.x).map(|by| p.y >= by))
        .all(|ok| ok)
}

/// First shared x at which `a` falls below `b` (a crossover), if any.
pub fn crossover_x(a: &Series, b: &Series) -> Option<f64> {
    a.points
        .iter()
        .find(|p| b.y_at(p.x).is_some_and(|by| p.y < by))
        .map(|p| p.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn s(xy: &[(f64, f64)]) -> Series {
        Series::from_xy("s", xy.iter().copied())
    }

    #[test]
    fn nondecreasing_with_tolerance() {
        assert!(is_nondecreasing(
            &s(&[(1.0, 1.0), (2.0, 2.0), (4.0, 1.99)]),
            0.02
        ));
        assert!(!is_nondecreasing(&s(&[(1.0, 2.0), (2.0, 1.0)]), 0.02));
    }

    #[test]
    fn linear_scaling_detected() {
        let lin = s(&[(1.0, 1.0), (2.0, 2.0), (4.0, 4.0), (8.0, 8.0)]);
        assert!(scales_with_factor(&lin, 1.95));
        let flat = s(&[(1.0, 1.0), (2.0, 1.0)]);
        assert!(!scales_with_factor(&flat, 1.5));
    }

    #[test]
    fn saturation_detection() {
        let sat = s(&[
            (1.0, 1.0),
            (2.0, 2.0),
            (4.0, 2.6),
            (8.0, 2.62),
            (16.0, 2.61),
        ]);
        assert!(saturates_from(&sat, 4.0, 0.05));
        assert!(!saturates_from(&sat, 1.0, 0.05));
    }

    #[test]
    fn ratios_and_domination() {
        let a = s(&[(1.0, 8.0), (2.0, 8.0)]);
        let b = s(&[(1.0, 1.0), (2.0, 4.0)]);
        assert_eq!(ratio_at(&a, &b, 1.0), Some(8.0));
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert_eq!(crossover_x(&b, &a), Some(1.0));
        assert_eq!(crossover_x(&a, &b), None);
    }

    #[test]
    fn crossover_locates_first_loss() {
        let fast_small = s(&[(1.0, 10.0), (2.0, 12.0), (4.0, 12.0)]);
        let linear = s(&[(1.0, 5.0), (2.0, 10.0), (4.0, 20.0)]);
        assert_eq!(crossover_x(&fast_small, &linear), Some(4.0));
    }
}
