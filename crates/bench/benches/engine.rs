//! Criterion micro-benchmarks of the simulation engine: max-min rate
//! allocation at increasing flow counts, full IOR runs, and a DLIO
//! pipeline run. These guard the simulator's own performance — a
//! 128-node, 5,632-rank IOR phase must stay trivially cheap for the
//! figure sweeps to be practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hcs_dlio::{resnet50, run_dlio};
use hcs_gpfs::GpfsConfig;
use hcs_ior::{run_ior, IorConfig, WorkloadClass};
use hcs_simkit::{FlowNet, FlowSpec, ResourceSpec};
use hcs_vast::{vast_on_lassen, vast_on_wombat};

fn bench_flownet(c: &mut Criterion) {
    let mut g = c.benchmark_group("flownet");
    for &flows in &[16u32, 128, 1024] {
        g.bench_with_input(BenchmarkId::new("allocate", flows), &flows, |b, &n| {
            b.iter(|| {
                let mut net = FlowNet::new();
                let shared = net.add_resource(ResourceSpec::new("pool", 1e10));
                for i in 0..n {
                    let mount = net.add_resource(ResourceSpec::new(format!("m{i}"), 2e9));
                    net.add_flow(FlowSpec::new(vec![mount, shared], 1e9));
                }
                black_box(net.aggregate_rate())
            })
        });
        g.bench_with_input(
            BenchmarkId::new("run_to_completion", flows),
            &flows,
            |b, &n| {
                b.iter(|| {
                    let mut net = FlowNet::new();
                    let shared = net.add_resource(ResourceSpec::new("pool", 1e10));
                    for i in 0..n {
                        let mount = net.add_resource(ResourceSpec::new(format!("m{i}"), 2e9));
                        net.add_flow(FlowSpec::new(vec![mount, shared], 1e8 + i as f64 * 1e6));
                    }
                    black_box(net.run_to_completion(|_, _| {}))
                })
            },
        );
    }
    g.finish();
}

fn bench_ior(c: &mut Criterion) {
    let mut g = c.benchmark_group("ior");
    let vast = vast_on_lassen();
    let gpfs = GpfsConfig::on_lassen();
    for &nodes in &[1u32, 32, 128] {
        g.bench_with_input(
            BenchmarkId::new("vast_scalability", nodes),
            &nodes,
            |b, &n| {
                let mut cfg = IorConfig::paper_scalability(WorkloadClass::Scientific, n, 44);
                cfg.reps = 1;
                b.iter(|| black_box(run_ior(&vast, &cfg)))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("gpfs_scalability", nodes),
            &nodes,
            |b, &n| {
                let mut cfg = IorConfig::paper_scalability(WorkloadClass::MachineLearning, n, 44);
                cfg.reps = 1;
                b.iter(|| black_box(run_ior(&gpfs, &cfg)))
            },
        );
    }
    g.finish();
}

fn bench_dlio(c: &mut Criterion) {
    let mut g = c.benchmark_group("dlio");
    g.sample_size(10);
    let vast = vast_on_wombat();
    let cfg = resnet50().smoke();
    g.bench_function("resnet50_smoke_4nodes", |b| {
        b.iter(|| black_box(run_dlio(&vast, &cfg, 4)))
    });
    g.finish();
}

criterion_group!(benches, bench_flownet, bench_ior, bench_dlio);
criterion_main!(benches);
