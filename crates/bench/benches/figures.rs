//! `cargo bench` target that regenerates every table and figure of the
//! paper and reports how long each took. Uses the reduced (smoke)
//! geometry by default so `cargo bench --workspace` stays fast; set
//! `HCS_BENCH_SCALE=paper` for the full geometry.

use std::time::Instant;

use hcs_experiments::figures;
use hcs_experiments::output::write_figures;
use hcs_experiments::Scale;

fn main() {
    let scale = match std::env::var("HCS_BENCH_SCALE").as_deref() {
        Ok("paper") => Scale::Paper,
        _ => Scale::Smoke,
    };
    println!("regenerating all paper artifacts at {scale:?} scale\n");

    let t0 = Instant::now();
    print!("{}", figures::table1::render());
    println!("[table1 in {:?}]\n", t0.elapsed());

    type FigGen = fn(Scale) -> Vec<hcs_experiments::Figure>;
    let mut all = Vec::new();
    let steps: [(&str, FigGen); 5] = [
        ("fig2", figures::fig2::generate),
        ("fig3", figures::fig3::generate),
        ("fig4", figures::fig4::generate),
        ("fig5", figures::fig5::generate),
        ("fig6", figures::fig6::generate),
    ];
    for (name, gen) in steps {
        let t = Instant::now();
        let figs = gen(scale);
        println!("[{name}: {} panels in {:?}]", figs.len(), t.elapsed());
        all.extend(figs);
    }

    let t = Instant::now();
    let report = figures::takeaways::measure(scale);
    println!("[takeaways in {:?}]\n", t.elapsed());
    print!("{}", figures::takeaways::render(&report));

    let t = Instant::now();
    let abl = figures::ablations::generate(scale);
    println!("[ablations: {} figures in {:?}]", abl.len(), t.elapsed());
    all.extend(abl);

    let dir = std::env::var_os("HCS_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"));
    match write_figures(&all, &dir) {
        Ok(n) => println!("\n[wrote {n} figures to {}]", dir.display()),
        Err(e) => eprintln!("\n[warning: could not write results: {e}]"),
    }
    println!("total: {:?}", t0.elapsed());
}
