//! # hcs-bench
//!
//! Benchmark and figure-regeneration harness. Each paper artifact has a
//! binary (`table1`, `fig2` … `fig6`, `takeaways`, `ablations`,
//! `all_figures`); running it prints the artifact's data as ASCII
//! tables and writes CSV/JSON under `results/`. Every binary accepts
//! `--smoke` to run the reduced geometry.
//!
//! `cargo bench -p hcs-bench` runs two targets: `engine` (criterion
//! micro-benchmarks of the simulation engine itself) and `figures`
//! (regenerates every figure at a reduced scale and reports timing).

#![warn(missing_docs)]

use std::path::PathBuf;

use hcs_experiments::output::write_figures;
use hcs_experiments::render::to_table;
use hcs_experiments::series::Figure;
use hcs_experiments::Scale;

/// Parses the common CLI convention: `--scale <paper|smoke>` (or the
/// `--smoke` shorthand) selects the geometry; the default is the paper
/// geometry.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        if let Some(s) = args.get(i + 1).and_then(|v| Scale::parse(v)) {
            return s;
        }
    }
    if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Paper
    }
}

/// The output directory for figure data (`results/` at the workspace
/// root, overridable with `HCS_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("HCS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Prints each figure as an ASCII table and persists CSV/JSON.
pub fn emit(figs: &[Figure]) {
    for f in figs {
        println!("{}", to_table(f));
    }
    let dir = results_dir();
    match write_figures(figs, &dir) {
        Ok(n) => println!("[wrote {n} figures to {}]", dir.display()),
        Err(e) => eprintln!("[warning: could not write results: {e}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_paper() {
        // Cargo test passes no --smoke flag.
        assert_eq!(scale_from_args(), Scale::Paper);
    }

    #[test]
    fn results_dir_env_override() {
        // Can't mutate env safely in parallel tests; just check default.
        assert_eq!(results_dir(), PathBuf::from("results"));
    }
}
