//! Re-derives the §VII takeaways and prints paper-vs-measured.
fn main() {
    let scale = hcs_bench::scale_from_args();
    let report = hcs_experiments::figures::takeaways::measure(scale);
    print!("{}", hcs_experiments::figures::takeaways::render(&report));
}
