//! Self-profiling harness: runs every builtin deck at the selected
//! scale through the metered executor and writes `BENCH_deck.json` —
//! one record per point with its wall-clock cost, flow-solver epoch
//! count and flow-group count, plus per-deck totals and throughput
//! (points/sec, solver epochs/sec). The artifact answers "where does
//! simulation time go" for the deck catalog the same way `hcs report`
//! answers it for a workload, and the throughput fields make the
//! equivalence-class planner's speedup a tracked trajectory across
//! commits (a `--scale datacenter` run pushes 10^6-client points
//! through the same harness).
//!
//! Usage: `hcs-bench [--scale <paper|smoke|datacenter>] [output-path]`
//! (default smoke scale, `BENCH_deck.json` in the current directory —
//! CI runs it from the repo root).

use serde::Serialize;
use std::time::Instant;

use hcs_core::scenario::Scale;
use hcs_experiments::{
    figures, run_chaos_campaign, run_deck_with_metrics, run_deck_with_provenance,
};

#[derive(Serialize)]
struct PointRecord {
    deck: String,
    point: String,
    /// Registry key of the backend ("objstore", "daos", ...), the
    /// grouping key for `backends`.
    backend: String,
    system: String,
    nodes: u32,
    ppn: u32,
    headline: String,
    wall_seconds: f64,
    solver_epochs: u64,
    flow_groups: u64,
}

/// Per-backend simulation throughput across every deck in the run —
/// answers "which storage model is expensive to simulate" the way
/// `decks` answers it per sweep.
#[derive(Serialize)]
struct BackendRecord {
    system: String,
    points: usize,
    wall_seconds: f64,
    points_per_sec: f64,
}

#[derive(Serialize)]
struct DeckRecord {
    deck: String,
    points: usize,
    wall_seconds: f64,
    solver_epochs: u64,
    points_per_sec: f64,
    epochs_per_sec: f64,
}

#[derive(Serialize)]
struct BenchReport {
    scale: String,
    decks: Vec<DeckRecord>,
    backends: Vec<BackendRecord>,
    points: Vec<PointRecord>,
    total_wall_seconds: f64,
    total_solver_epochs: u64,
    points_per_sec: f64,
    epochs_per_sec: f64,
    chaos_timelines: usize,
    chaos_wall_seconds: f64,
    chaos_timelines_per_sec: f64,
    open_loop_ops: u64,
    open_loop_wall_seconds: f64,
    open_loop_ops_per_sec: f64,
    provenance_wall_seconds: f64,
    provenance_ops_per_sec: f64,
    provenance_overhead: f64,
}

/// Throughput over a wall-clock window, 0.0 for an empty window (a
/// sub-microsecond deck would otherwise print a meaningless spike).
fn per_sec(count: f64, wall: f64) -> f64 {
    if wall > 0.0 {
        count / wall
    } else {
        0.0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Smoke;
    let mut out_path = "BENCH_deck.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = Scale::parse(v).unwrap_or_else(|| panic!("--scale: unknown scale '{v}'"));
            }
            other => out_path = other.to_string(),
        }
    }
    let mut points = Vec::new();
    let mut decks = Vec::new();
    for deck in figures::all_decks(scale) {
        let start = Instant::now();
        let result = run_deck_with_metrics(&deck);
        let wall = start.elapsed().as_secs_f64();
        let mut epochs = 0;
        for p in &result.points {
            let m = p
                .metrics
                .as_ref()
                .expect("metered executor populates every point");
            epochs += m.solver_epochs;
            points.push(PointRecord {
                deck: deck.name.clone(),
                point: p.scenario.name.clone(),
                backend: p.scenario.system.clone(),
                system: p.system.clone(),
                nodes: p.nodes,
                ppn: p.ppn,
                headline: p.outcome.headline(),
                wall_seconds: m.wall_clock_seconds,
                solver_epochs: m.solver_epochs,
                flow_groups: m.flow_groups,
            });
        }
        eprintln!(
            "{:<22} {:>3} points  {:>7.3}s  {:>8} solver epochs  {:>9.1} points/sec",
            deck.name,
            result.points.len(),
            wall,
            epochs,
            per_sec(result.points.len() as f64, wall),
        );
        decks.push(DeckRecord {
            deck: deck.name.clone(),
            points: result.points.len(),
            wall_seconds: wall,
            solver_epochs: epochs,
            points_per_sec: per_sec(result.points.len() as f64, wall),
            epochs_per_sec: per_sec(epochs as f64, wall),
        });
    }
    // Cross-protocol mini-deck: every registry backend (including the
    // object gateway and DAOS, which no builtin figure sweeps yet) at
    // two transfer sizes, so `backends` below covers the whole registry
    // and a new backend's simulation cost is tracked from the commit
    // that lands it.
    let crossproto_deck = {
        use hcs_core::scenario::{IorConfig, WorkloadClass};
        use hcs_core::{Deck, Scenario, Workload};
        let base = Scenario::new(
            "vast-lassen",
            Workload::Ior(IorConfig::smoke(WorkloadClass::Scientific, 2, 8)),
        );
        let mut deck = Deck::single("bench-crossproto", base);
        deck.axes.systems = hcs_experiments::registry::names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        deck.axes.transfer_sizes = vec![4096.0, 1_048_576.0];
        deck
    };
    let start = Instant::now();
    let crossproto = run_deck_with_metrics(&crossproto_deck);
    let crossproto_wall = start.elapsed().as_secs_f64();
    let mut crossproto_epochs = 0;
    for p in &crossproto.points {
        let m = p.metrics.as_ref().expect("metered");
        crossproto_epochs += m.solver_epochs;
        points.push(PointRecord {
            deck: crossproto_deck.name.clone(),
            point: p.scenario.name.clone(),
            backend: p.scenario.system.clone(),
            system: p.system.clone(),
            nodes: p.nodes,
            ppn: p.ppn,
            headline: p.outcome.headline(),
            wall_seconds: m.wall_clock_seconds,
            solver_epochs: m.solver_epochs,
            flow_groups: m.flow_groups,
        });
    }
    eprintln!(
        "{:<22} {:>3} points  {:>7.3}s  {:>8} solver epochs  {:>9.1} points/sec",
        crossproto_deck.name,
        crossproto.points.len(),
        crossproto_wall,
        crossproto_epochs,
        per_sec(crossproto.points.len() as f64, crossproto_wall),
    );
    decks.push(DeckRecord {
        deck: crossproto_deck.name.clone(),
        points: crossproto.points.len(),
        wall_seconds: crossproto_wall,
        solver_epochs: crossproto_epochs,
        points_per_sec: per_sec(crossproto.points.len() as f64, crossproto_wall),
        epochs_per_sec: per_sec(crossproto_epochs as f64, crossproto_wall),
    });

    // Per-backend totals across every deck, in first-seen order.
    let mut backends: Vec<BackendRecord> = Vec::new();
    for p in &points {
        match backends.iter_mut().find(|b| b.system == p.backend) {
            Some(b) => {
                b.points += 1;
                b.wall_seconds += p.wall_seconds;
            }
            None => backends.push(BackendRecord {
                system: p.backend.clone(),
                points: 1,
                wall_seconds: p.wall_seconds,
                points_per_sec: 0.0,
            }),
        }
    }
    for b in &mut backends {
        b.points_per_sec = per_sec(b.points as f64, b.wall_seconds);
    }

    let total_wall: f64 = decks.iter().map(|d| d.wall_seconds).sum();
    let total_epochs: u64 = decks.iter().map(|d| d.solver_epochs).sum();
    let total_points: usize = decks.iter().map(|d| d.points).sum();

    // Campaign throughput: a seeded chaos population over the first
    // builtin deck, so fuzzing cost is a tracked trajectory alongside
    // point throughput.
    let chaos_deck = figures::all_decks(scale)
        .into_iter()
        .next()
        .expect("catalog has at least one deck");
    let mut campaign = hcs_core::ChaosCampaign::new("bench-chaos", chaos_deck);
    campaign.seed = 7;
    campaign.population = 16;
    let start = Instant::now();
    let chaos = run_chaos_campaign(&campaign).expect("builtin deck fuzzes cleanly");
    let chaos_wall = start.elapsed().as_secs_f64();
    assert!(
        chaos.violations.is_empty(),
        "bench chaos campaign found invariant violations: {:?}",
        chaos.violations
    );
    eprintln!(
        "{:<22} {:>3} timelines {:>6.3}s  {:>9.1} timelines/sec",
        "chaos campaign",
        chaos.timelines,
        chaos_wall,
        per_sec(chaos.timelines as f64, chaos_wall),
    );

    // Open-loop throughput: a fixed offered-load sweep through the
    // per-operation arrival driver, so the cost of metering individual
    // operations (instead of whole phases) is tracked alongside.
    let open_deck = {
        use hcs_core::scenario::{IorConfig, WorkloadClass};
        use hcs_core::{Arrival, Deck, Discipline, Scenario, Workload};
        let base = Scenario::new(
            "vast-lassen",
            Workload::Ior(IorConfig::smoke(WorkloadClass::Scientific, 1, 4)),
        )
        .with_arrival(Arrival::Open {
            rate: 1.0,
            discipline: Discipline::Poisson,
            duration: 0.25,
            seed: 0x0417,
        });
        let mut deck = Deck::single("bench-open-loop", base);
        deck.axes.offered_load = vec![200.0, 800.0, 3200.0];
        deck
    };
    let start = Instant::now();
    let open_result = run_deck_with_metrics(&open_deck);
    let open_wall = start.elapsed().as_secs_f64();
    let open_ops: u64 = open_result
        .points
        .iter()
        .flat_map(|p| &p.metrics.as_ref().expect("metered").latency)
        .map(|row| row.histogram.count())
        .sum();
    eprintln!(
        "{:<22} {:>3} points  {:>7.3}s  {:>8} ops       {:>9.1} ops/sec",
        "open-loop sweep",
        open_result.points.len(),
        open_wall,
        open_ops,
        per_sec(open_ops as f64, open_wall),
    );

    // The same sweep with the latency-provenance probe attached: the
    // probe observes every rate epoch per op, so its cost relative to
    // the plain metered run is the tracked observer overhead
    // (provenance_overhead = observed wall / plain wall).
    let start = Instant::now();
    let prov_result = run_deck_with_provenance(&open_deck);
    let prov_wall = start.elapsed().as_secs_f64();
    assert!(
        prov_result
            .points
            .iter()
            .all(|p| p.metrics.as_ref().is_some_and(|m| m.provenance.is_some())),
        "provenance run must decompose every point"
    );
    eprintln!(
        "{:<22} {:>3} points  {:>7.3}s  {:>8} ops       {:>9.1} ops/sec  ({:.2}x plain)",
        "  + provenance",
        prov_result.points.len(),
        prov_wall,
        open_ops,
        per_sec(open_ops as f64, prov_wall),
        if open_wall > 0.0 {
            prov_wall / open_wall
        } else {
            0.0
        },
    );

    let report = BenchReport {
        scale: scale.label().to_string(),
        total_wall_seconds: total_wall,
        total_solver_epochs: total_epochs,
        points_per_sec: per_sec(total_points as f64, total_wall),
        epochs_per_sec: per_sec(total_epochs as f64, total_wall),
        chaos_timelines: chaos.timelines,
        chaos_wall_seconds: chaos_wall,
        chaos_timelines_per_sec: per_sec(chaos.timelines as f64, chaos_wall),
        open_loop_ops: open_ops,
        open_loop_wall_seconds: open_wall,
        open_loop_ops_per_sec: per_sec(open_ops as f64, open_wall),
        provenance_wall_seconds: prov_wall,
        provenance_ops_per_sec: per_sec(open_ops as f64, prov_wall),
        provenance_overhead: if open_wall > 0.0 {
            prov_wall / open_wall
        } else {
            0.0
        },
        decks,
        backends,
        points,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("[wrote {out_path}]");
}
