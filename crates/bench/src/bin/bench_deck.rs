//! Self-profiling harness: runs every builtin deck at smoke scale
//! through the metered executor and writes `BENCH_deck.json` — one
//! record per point with its wall-clock cost, flow-solver epoch count
//! and flow-group count, plus per-deck totals. The artifact answers
//! "where does simulation time go" for the deck catalog the same way
//! `hcs report` answers it for a workload.
//!
//! Usage: `hcs-bench [output-path]` (default `BENCH_deck.json` in the
//! current directory — CI runs it from the repo root).

use serde::Serialize;
use std::time::Instant;

use hcs_core::scenario::Scale;
use hcs_experiments::{figures, run_deck_with_metrics};

#[derive(Serialize)]
struct PointRecord {
    deck: String,
    point: String,
    system: String,
    nodes: u32,
    ppn: u32,
    headline: String,
    wall_seconds: f64,
    solver_epochs: u64,
    flow_groups: u64,
}

#[derive(Serialize)]
struct DeckRecord {
    deck: String,
    points: usize,
    wall_seconds: f64,
    solver_epochs: u64,
}

#[derive(Serialize)]
struct BenchReport {
    scale: String,
    decks: Vec<DeckRecord>,
    points: Vec<PointRecord>,
    total_wall_seconds: f64,
    total_solver_epochs: u64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_deck.json".to_string());
    let mut points = Vec::new();
    let mut decks = Vec::new();
    for deck in figures::all_decks(Scale::Smoke) {
        let start = Instant::now();
        let result = run_deck_with_metrics(&deck);
        let wall = start.elapsed().as_secs_f64();
        let mut epochs = 0;
        for p in &result.points {
            let m = p
                .metrics
                .as_ref()
                .expect("metered executor populates every point");
            epochs += m.solver_epochs;
            points.push(PointRecord {
                deck: deck.name.clone(),
                point: p.scenario.name.clone(),
                system: p.system.clone(),
                nodes: p.nodes,
                ppn: p.ppn,
                headline: p.outcome.headline(),
                wall_seconds: m.wall_clock_seconds,
                solver_epochs: m.solver_epochs,
                flow_groups: m.flow_groups,
            });
        }
        eprintln!(
            "{:<22} {:>3} points  {:>7.3}s  {:>8} solver epochs",
            deck.name,
            result.points.len(),
            wall,
            epochs
        );
        decks.push(DeckRecord {
            deck: deck.name.clone(),
            points: result.points.len(),
            wall_seconds: wall,
            solver_epochs: epochs,
        });
    }
    let report = BenchReport {
        scale: "smoke".to_string(),
        total_wall_seconds: decks.iter().map(|d| d.wall_seconds).sum(),
        total_solver_epochs: decks.iter().map(|d| d.solver_epochs).sum(),
        decks,
        points,
    };
    let json = serde_json::to_string_pretty(&report).expect("bench report serializes");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("[wrote {out_path}]");
}
