//! Runs the ablation sweeps (gateway width, nconnect, similarity
//! reduction, GPFS cache, DLIO thread count).
fn main() {
    let scale = hcs_bench::scale_from_args();
    hcs_bench::emit(&hcs_experiments::figures::ablations::generate(scale));
}
