//! Regenerates Table I.
fn main() {
    print!("{}", hcs_experiments::figures::table1::render());
}
