//! Regenerates Fig 3 (single-node fsync tests on all four machines).
fn main() {
    let scale = hcs_bench::scale_from_args();
    hcs_bench::emit(&hcs_experiments::figures::fig3::generate(scale));
}
