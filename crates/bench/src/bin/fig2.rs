//! Regenerates Fig 2 (scalability on Lassen and Wombat, three workloads).
fn main() {
    let scale = hcs_bench::scale_from_args();
    hcs_bench::emit(&hcs_experiments::figures::fig2::generate(scale));
}
