//! Regenerates Fig 4 (DLIO I/O-time decomposition).
fn main() {
    let scale = hcs_bench::scale_from_args();
    hcs_bench::emit(&hcs_experiments::figures::fig4::generate(scale));
}
