//! Regenerates Fig 6 (Cosmoflow application and system throughput).
fn main() {
    let scale = hcs_bench::scale_from_args();
    hcs_bench::emit(&hcs_experiments::figures::fig6::generate(scale));
}
