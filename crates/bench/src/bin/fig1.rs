//! Regenerates Fig 1 (architecture panels) from the deployment configs.
fn main() {
    print!("{}", hcs_experiments::figures::fig1::render());
}
