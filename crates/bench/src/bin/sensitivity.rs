//! Calibration sensitivity study: the §VII claims under ±25 %
//! perturbations of every load-bearing constant.
fn main() {
    let scale = hcs_bench::scale_from_args();
    let cases = hcs_experiments::figures::sensitivity::analyze(scale);
    print!("{}", hcs_experiments::figures::sensitivity::render(&cases));
}
