//! MDTest-equivalent metadata-rate comparison across every deployment
//! (an extension beyond the paper; see hcs-mdtest).

use hcs_core::StorageSystem;
use hcs_gpfs::GpfsConfig;
use hcs_lustre::LustreConfig;
use hcs_mdtest::{run_mdtest, MdtestConfig, MetaOp};
use hcs_nvme::LocalNvmeConfig;
use hcs_vast::{vast_on_lassen, vast_on_wombat};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nodes, ppn) = if smoke { (2, 8) } else { (8, 32) };
    let cfg = MdtestConfig::new(nodes, ppn);

    let systems: Vec<Box<dyn StorageSystem>> = vec![
        Box::new(vast_on_lassen()),
        Box::new(vast_on_wombat()),
        Box::new(GpfsConfig::on_lassen()),
        Box::new(LustreConfig::on_ruby()),
        Box::new(LocalNvmeConfig::on_wombat()),
    ];

    println!(
        "# MDTest-equivalent: {} nodes x {} tasks, {} files/proc, {} reps\n",
        cfg.nodes, cfg.tasks_per_node, cfg.files_per_proc, cfg.reps
    );
    println!(
        "{:<52} {:>12} {:>12} {:>12}",
        "system", "create/s", "stat/s", "unlink/s"
    );
    for sys in &systems {
        let r = run_mdtest(sys.as_ref(), &cfg);
        println!(
            "{:<52} {:>12.0} {:>12.0} {:>12.0}",
            r.system,
            r.rate(MetaOp::Create).mean,
            r.rate(MetaOp::Stat).mean,
            r.rate(MetaOp::Unlink).mean
        );
    }
}
