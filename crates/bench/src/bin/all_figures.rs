//! Regenerates every table and figure of the paper in one run.
fn main() {
    let scale = hcs_bench::scale_from_args();
    print!("{}", hcs_experiments::figures::table1::render());
    println!();
    println!("{}", hcs_experiments::figures::fig1::render());
    hcs_bench::emit(&hcs_experiments::figures::all_figures(scale));
    let report = hcs_experiments::figures::takeaways::measure(scale);
    print!("{}", hcs_experiments::figures::takeaways::render(&report));
}
