//! Regenerates Fig 5 (ResNet-50 application and system throughput).
fn main() {
    let scale = hcs_bench::scale_from_args();
    hcs_bench::emit(&hcs_experiments::figures::fig5::generate(scale));
}
