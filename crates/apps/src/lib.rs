//! # hcs-apps
//!
//! Carrier crate for the workspace's runnable examples (`examples/` at
//! the repository root) and cross-crate integration tests (`tests/` at
//! the repository root). It re-exports nothing; see the individual
//! examples:
//!
//! * `quickstart` — build two storage systems, run IOR, compare.
//! * `ior_sweep` — scalability sweep with CLI-selectable machine and workload.
//! * `dlio_training` — ResNet-50/Cosmoflow pipeline simulation with I/O-time analysis.
//! * `trace_analysis` — chrome-trace export and re-analysis.
//! * `deployment_advisor` — the §VII takeaways turned into a what-should-I-use tool.
