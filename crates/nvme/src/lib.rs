//! # hcs-nvme
//!
//! Node-local NVMe storage as found on Wombat (paper §IV.B): "three
//! Samsung 970 PRO SSDs on each compute node, connected via PCIe
//! Gen3x4", mounted per node.
//!
//! Two behaviours matter for the paper's comparisons:
//!
//! * **Perfect scaling, zero sharing** — every node owns its drives, so
//!   aggregate bandwidth is strictly linear in nodes (the scalability
//!   baseline VAST beats only "in smaller scales", §V.B). NVMe SSDs
//!   "cannot access data from a remote node directly" (§V), which the
//!   benchmark works around by copying data between nodes; the reads
//!   themselves are local.
//! * **fsync collapse** — consumer drives have no power-loss-protected
//!   write cache, so a synchronized write pays a multi-millisecond NAND
//!   flush. This is the mechanism behind "VAST performs almost 5x better
//!   for a single node on Wombat than the NVMe" (§V.A).
//!
//! Buffered writes ride the OS page cache ("Operating System cache
//! write-back is allowed on this test to replicate a realistic user
//! scenario", §V), modeled as a write-back tier in front of the media.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};

use hcs_core::{DeploymentGraph, PhaseSpec, Stage, StageKind, StorageSystem};
use hcs_devices::{DeviceArray, DeviceProfile, IoOp};
use hcs_netsim::TransportSpec;

/// A node-local NVMe configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LocalNvmeConfig {
    /// Label.
    pub label: String,
    /// Drives per node.
    pub drives_per_node: u32,
    /// Drive profile.
    pub drive: DeviceProfile,
    /// PCIe lane bandwidth available per drive, bytes/s (Gen3 x4 ≈
    /// 3.94 GB/s).
    pub pcie_per_drive: f64,
    /// Page-cache write-back boost factor for buffered sequential
    /// writes (dirty pages stream out asynchronously while the
    /// application keeps writing).
    pub writeback_boost: f64,
    /// Local I/O stack description.
    pub transport: TransportSpec,
    /// Run-to-run noise sigma (dedicated local drives are quiet).
    pub noise: f64,
}

impl LocalNvmeConfig {
    /// Wombat's node-local storage: 3× Samsung 970 PRO over PCIe Gen3x4.
    pub fn on_wombat() -> Self {
        LocalNvmeConfig {
            label: "node-local NVMe@Wombat (3x Samsung 970 PRO)".into(),
            drives_per_node: 3,
            drive: DeviceProfile::nvme_970_pro(),
            pcie_per_drive: 3.94e9,
            writeback_boost: 1.15,
            transport: TransportSpec::local(),
            noise: 0.02,
        }
    }

    /// The per-node drive array.
    pub fn node_array(&self) -> DeviceArray {
        DeviceArray::stripe(self.drive.clone(), self.drives_per_node)
    }

    /// Per-node media bandwidth for a phase, bytes/s.
    pub fn node_media_bw(&self, phase: &PhaseSpec) -> f64 {
        let media = self.node_array().effective_bandwidth(
            phase.op,
            phase.pattern,
            phase.transfer_size,
            phase.fsync,
        );
        let media = if phase.op == IoOp::Write && !phase.fsync {
            media * self.writeback_boost
        } else {
            media
        };
        media.min(self.pcie_per_drive * self.drives_per_node as f64)
    }

    /// Per-op latency for a phase.
    pub fn op_latency(&self, phase: &PhaseSpec) -> f64 {
        self.transport.per_op_latency + self.drive.op_latency(phase.op, phase.fsync)
    }
}

impl StorageSystem for LocalNvmeConfig {
    fn name(&self) -> &str {
        "NVMe"
    }

    fn description(&self) -> String {
        self.label.clone()
    }

    fn plan(&self, _nodes: u32, _ppn: u32, phase: &PhaseSpec) -> DeploymentGraph {
        DeploymentGraph::new(
            f64::INFINITY,
            self.op_latency(phase),
            self.transport.metadata_latency,
        )
        .stage(Stage::per_node(
            "nvme:node",
            StageKind::Media,
            self.node_media_bw(phase),
        ))
    }

    fn noise_sigma(&self) -> f64 {
        self.noise
    }

    fn metadata_profile(&self) -> hcs_core::MetadataProfile {
        hcs_core::MetadataProfile {
            // Local ext4/xfs metadata: syscall-speed, journal-bound.
            op_latency: self.transport.metadata_latency,
            ops_pool: 4e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_core::runner::run_phase;
    use hcs_simkit::units::{to_gib_per_s, MIB};

    #[test]
    fn scaling_is_perfectly_linear() {
        let n = LocalNvmeConfig::on_wombat();
        let phase = PhaseSpec::seq_read(MIB, 256.0 * MIB);
        let b1 = run_phase(&n, 1, 48, &phase).agg_bandwidth;
        let b8 = run_phase(&n, 8, 48, &phase).agg_bandwidth;
        assert!((b8 / b1 - 8.0).abs() < 0.01, "ratio = {}", b8 / b1);
    }

    #[test]
    fn seq_read_near_vendor_sheet() {
        let n = LocalNvmeConfig::on_wombat();
        let out = run_phase(&n, 1, 48, &PhaseSpec::seq_read(MIB, 256.0 * MIB));
        let gbs = out.agg_bandwidth / 1e9;
        // 3 × 3.5 GB/s, minus per-op latency effects.
        assert!((8.0..11.0).contains(&gbs), "seq read = {gbs} GB/s");
    }

    #[test]
    fn fsync_write_collapses_to_about_1_gbs() {
        // The denominator of the §V.A "VAST 5×" result.
        let n = LocalNvmeConfig::on_wombat();
        let phase = PhaseSpec::seq_write(MIB, 128.0 * MIB).with_fsync(true);
        let out = run_phase(&n, 1, 32, &phase);
        let gbs = out.agg_bandwidth / 1e9;
        assert!((0.6..1.8).contains(&gbs), "fsync write = {gbs} GB/s");
    }

    #[test]
    fn buffered_write_far_above_fsync_write() {
        let n = LocalNvmeConfig::on_wombat();
        let buffered = run_phase(&n, 1, 32, &PhaseSpec::seq_write(MIB, 128.0 * MIB));
        let synced = run_phase(
            &n,
            1,
            32,
            &PhaseSpec::seq_write(MIB, 128.0 * MIB).with_fsync(true),
        );
        assert!(
            buffered.agg_bandwidth > 4.0 * synced.agg_bandwidth,
            "{} vs {}",
            to_gib_per_s(buffered.agg_bandwidth),
            to_gib_per_s(synced.agg_bandwidth)
        );
    }

    #[test]
    fn random_read_is_flash_friendly() {
        let n = LocalNvmeConfig::on_wombat();
        let seq = run_phase(&n, 1, 48, &PhaseSpec::seq_read(MIB, 256.0 * MIB)).agg_bandwidth;
        let rand = run_phase(&n, 1, 48, &PhaseSpec::random_read(MIB, 256.0 * MIB)).agg_bandwidth;
        assert!(rand > 0.7 * seq, "{rand} vs {seq}");
    }

    #[test]
    fn serde_round_trip() {
        let n = LocalNvmeConfig::on_wombat();
        let back: LocalNvmeConfig =
            serde_json::from_str(&serde_json::to_string(&n).unwrap()).unwrap();
        assert_eq!(back, n);
    }
}
