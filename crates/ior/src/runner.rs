//! IOR execution against a storage system.

use serde::{Deserialize, Serialize};

use hcs_core::metrics::ResilienceMetrics;
use hcs_core::outcome::RepeatedOutcome;
use hcs_core::runner::{
    run_phase_open_loop, run_phase_repeated, run_phase_repeated_faulted,
    run_phase_repeated_faulted_traced, run_phase_repeated_traced, FaultPhaseError, OpenLoopOutcome,
};
use hcs_core::scenario::{Arrival, FaultSpec};
use hcs_core::telemetry::Recorder;
use hcs_core::StorageSystem;
use hcs_simkit::SimRng;

use crate::config::IorConfig;

/// What an IOR run prints: per-repetition aggregate bandwidths and
/// their summary, for the one access mode the workload class measures.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IorReport {
    /// The storage system's display name.
    pub system: String,
    /// The configuration that produced this report.
    pub config: IorConfig,
    /// Measured bandwidths (one entry per repetition) and summary.
    pub outcome: RepeatedOutcome,
}

impl IorReport {
    /// Mean aggregate bandwidth, bytes/s.
    pub fn mean_bandwidth(&self) -> f64 {
        self.outcome.summary.mean
    }

    /// Mean per-node bandwidth, bytes/s.
    pub fn per_node_bandwidth(&self) -> f64 {
        self.mean_bandwidth() / self.config.nodes as f64
    }
}

/// Runs an IOR configuration against a storage system.
///
/// Mirrors IOR's measurement discipline: the measured phase is the one
/// selected by the workload class; bandwidth is total data over the
/// slowest rank; the run repeats `reps` times under the system's
/// run-to-run noise, seeded from `config.seed` alone (so repeated
/// invocations are bit-identical).
///
/// Every system and scale sees the *same* underlying jitter draws
/// (common random numbers): cross-system comparisons — e.g. the
/// consistency figure's CV ranking — become paired, so a deployment
/// with larger `noise_sigma` always measures a larger coefficient of
/// variation instead of depending on the luck of independent streams.
pub fn run_ior(system: &dyn StorageSystem, config: &IorConfig) -> IorReport {
    config.validate();
    let phase = config.phase();
    let mut rng = SimRng::new(config.seed).split("ior-reps");
    let outcome = run_phase_repeated(
        system,
        config.nodes,
        config.tasks_per_node,
        &phase,
        config.reps,
        &mut rng,
    );
    IorReport {
        system: system.description(),
        config: config.clone(),
        outcome,
    }
}

/// [`run_ior`] with telemetry: the measured phase's flows and resource
/// utilization land in `recorder` (labeled by system, op and scale).
/// The report is bit-identical to [`run_ior`]'s — same rng stream,
/// same noise-free base run.
pub fn run_ior_traced(
    system: &dyn StorageSystem,
    config: &IorConfig,
    recorder: &mut Recorder,
) -> IorReport {
    config.validate();
    let phase = config.phase();
    let mut rng = SimRng::new(config.seed).split("ior-reps");
    let outcome = run_phase_repeated_traced(
        system,
        config.nodes,
        config.tasks_per_node,
        &phase,
        config.reps,
        &mut rng,
        recorder,
    );
    IorReport {
        system: system.description(),
        config: config.clone(),
        outcome,
    }
}

/// [`run_ior`] under a fault schedule: the measured phase runs with the
/// scenario's windowed faults resolved into timed capacity events, and
/// the report is paired with [`ResilienceMetrics`] against the
/// fault-free twin. The noise stream is consumed exactly as in
/// [`run_ior`] (common random numbers), applied to the faulted base.
pub fn run_ior_faulted(
    system: &dyn StorageSystem,
    config: &IorConfig,
    faults: &[FaultSpec],
) -> Result<(IorReport, ResilienceMetrics), FaultPhaseError> {
    config.validate();
    let phase = config.phase();
    let mut rng = SimRng::new(config.seed).split("ior-reps");
    let (outcome, resilience) = run_phase_repeated_faulted(
        system,
        config.nodes,
        config.tasks_per_node,
        &phase,
        faults,
        config.reps,
        &mut rng,
    )?;
    Ok((
        IorReport {
            system: system.description(),
            config: config.clone(),
            outcome,
        },
        resilience,
    ))
}

/// [`run_ior_faulted`] with telemetry: the faulted base run (and its
/// stall window) lands in `recorder`; the fault-free twin is not
/// traced.
pub fn run_ior_faulted_traced(
    system: &dyn StorageSystem,
    config: &IorConfig,
    faults: &[FaultSpec],
    recorder: &mut Recorder,
) -> Result<(IorReport, ResilienceMetrics), FaultPhaseError> {
    config.validate();
    let phase = config.phase();
    let label = format!(
        "{} {:?} {}x{} (faulted)",
        system.name(),
        phase.op,
        config.nodes,
        config.tasks_per_node
    );
    let mut rng = SimRng::new(config.seed).split("ior-reps");
    let (outcome, resilience) = run_phase_repeated_faulted_traced(
        &label,
        system,
        config.nodes,
        config.tasks_per_node,
        &phase,
        faults,
        config.reps,
        &mut rng,
        recorder,
    )?;
    Ok((
        IorReport {
            system: system.description(),
            config: config.clone(),
            outcome,
        },
        resilience,
    ))
}

/// Runs the configuration's measured phase open loop: operations of
/// the config's transfer size arrive at the spec's seeded rate instead
/// of every rank re-issuing on completion (see
/// [`run_phase_open_loop`]). The report's single "repetition" is the
/// achieved throughput over the drained window — repetitions and
/// run-to-run noise do not apply to an open-loop latency measurement,
/// whose cross-run story is the histogram itself. Faults compose: the
/// schedule resolves against the same planned graph as in
/// [`run_ior_faulted`].
pub fn run_ior_open_loop(
    system: &dyn StorageSystem,
    config: &IorConfig,
    arrival: &Arrival,
    faults: &[FaultSpec],
) -> Result<(IorReport, OpenLoopOutcome), FaultPhaseError> {
    run_ior_open_loop_impl(system, config, arrival, faults, None, false)
}

/// [`run_ior_open_loop`] with the latency-provenance probe attached:
/// the outcome's [`OpenLoopOutcome::provenance`] carries per-resource
/// blame attribution for every completed op. The probe is a pure
/// listener, so every other field is bit-identical to
/// [`run_ior_open_loop`]'s.
pub fn run_ior_open_loop_observed(
    system: &dyn StorageSystem,
    config: &IorConfig,
    arrival: &Arrival,
    faults: &[FaultSpec],
    recorder: Option<&mut Recorder>,
) -> Result<(IorReport, OpenLoopOutcome), FaultPhaseError> {
    run_ior_open_loop_impl(system, config, arrival, faults, recorder, true)
}

/// [`run_ior_open_loop`] with telemetry: the run's flows and resource
/// utilization land in `recorder` (labeled by system, op and scale).
pub fn run_ior_open_loop_traced(
    system: &dyn StorageSystem,
    config: &IorConfig,
    arrival: &Arrival,
    faults: &[FaultSpec],
    recorder: &mut Recorder,
) -> Result<(IorReport, OpenLoopOutcome), FaultPhaseError> {
    run_ior_open_loop_impl(system, config, arrival, faults, Some(recorder), false)
}

fn run_ior_open_loop_impl(
    system: &dyn StorageSystem,
    config: &IorConfig,
    arrival: &Arrival,
    faults: &[FaultSpec],
    recorder: Option<&mut Recorder>,
    provenance: bool,
) -> Result<(IorReport, OpenLoopOutcome), FaultPhaseError> {
    config.validate();
    let phase = config.phase();
    let label = format!(
        "{} {:?} {}x{} (open loop)",
        system.name(),
        phase.op,
        config.nodes,
        config.tasks_per_node
    );
    let telemetry = recorder.map(|r| (r, label.as_str()));
    let open = run_phase_open_loop(
        system,
        config.nodes,
        config.tasks_per_node,
        &phase,
        arrival,
        faults,
        telemetry,
        provenance,
    )?;
    let outcome = RepeatedOutcome::from_bandwidths(
        config.nodes,
        config.tasks_per_node,
        vec![open.agg_bandwidth],
    );
    Ok((
        IorReport {
            system: system.description(),
            config: config.clone(),
            outcome,
        },
        open,
    ))
}

/// A full IOR job: write the dataset, then read it back — what IOR
/// actually does when both `-w` and `-r` are given. The read phase
/// keeps the workload class's access pattern; the write phase is always
/// sequential (IOR lays data out in order regardless of how it will be
/// read back).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IorFullReport {
    /// The write-phase report.
    pub write: IorReport,
    /// The read-phase report.
    pub read: IorReport,
}

/// Runs both phases of an IOR job.
pub fn run_ior_full(system: &dyn StorageSystem, config: &IorConfig) -> IorFullReport {
    use crate::config::WorkloadClass;
    let mut wcfg = config.clone();
    wcfg.workload = WorkloadClass::Scientific; // the laydown is sequential writes
    let mut rcfg = config.clone();
    if rcfg.workload == WorkloadClass::Scientific {
        // A pure-write class reads back sequentially.
        rcfg.workload = WorkloadClass::DataAnalytics;
    }
    IorFullReport {
        write: run_ior(system, &wcfg),
        read: run_ior(system, &rcfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadClass;
    use hcs_gpfs::GpfsConfig;
    use hcs_simkit::units::GIB;
    use hcs_vast::vast_on_lassen;

    #[test]
    fn report_is_deterministic() {
        let sys = vast_on_lassen();
        let cfg = IorConfig::smoke(WorkloadClass::Scientific, 2, 8);
        let a = run_ior(&sys, &cfg);
        let b = run_ior(&sys, &cfg);
        assert_eq!(a.outcome.bandwidths, b.outcome.bandwidths);
    }

    #[test]
    fn reps_counted() {
        let sys = vast_on_lassen();
        let cfg = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4);
        let rep = run_ior(&sys, &cfg);
        assert_eq!(rep.outcome.bandwidths.len(), cfg.reps as usize);
        assert!(rep.outcome.summary.std_dev > 0.0, "noise should show up");
    }

    #[test]
    fn gpfs_beats_tcp_vast_on_sequential_reads() {
        // The Fig 2a ordering, at reduced scale.
        let vast = vast_on_lassen();
        let gpfs = GpfsConfig::on_lassen();
        let cfg = IorConfig::smoke(WorkloadClass::DataAnalytics, 4, 44);
        let v = run_ior(&vast, &cfg).mean_bandwidth();
        let g = run_ior(&gpfs, &cfg).mean_bandwidth();
        assert!(g > 3.0 * v, "GPFS {g} should dwarf TCP VAST {v}");
    }

    #[test]
    fn vast_consistent_across_patterns_gpfs_not() {
        let vast = vast_on_lassen();
        let gpfs = GpfsConfig::on_lassen();
        // The pattern gap needs the paper's cache-busting volume
        // (§V: ~120 GB per node); the smoke geometry fits in cache.
        let mut da = IorConfig::paper_scalability(WorkloadClass::DataAnalytics, 4, 44);
        da.reps = 2;
        let mut ml = IorConfig::paper_scalability(WorkloadClass::MachineLearning, 4, 44);
        ml.reps = 2;
        let v_ratio = run_ior(&vast, &ml).mean_bandwidth() / run_ior(&vast, &da).mean_bandwidth();
        let g_ratio = run_ior(&gpfs, &ml).mean_bandwidth() / run_ior(&gpfs, &da).mean_bandwidth();
        assert!(v_ratio > 0.6, "VAST random/seq = {v_ratio}");
        assert!(g_ratio < 0.25, "GPFS random/seq = {g_ratio}");
    }

    #[test]
    fn per_node_bandwidth_divides() {
        let sys = vast_on_lassen();
        let cfg = IorConfig::smoke(WorkloadClass::Scientific, 4, 8);
        let rep = run_ior(&sys, &cfg);
        assert!((rep.per_node_bandwidth() * 4.0 - rep.mean_bandwidth()).abs() < 1.0);
        assert!(rep.per_node_bandwidth() < 2.0 * GIB);
    }

    #[test]
    fn serde_round_trip() {
        let sys = vast_on_lassen();
        let cfg = IorConfig::smoke(WorkloadClass::Scientific, 1, 2);
        let rep = run_ior(&sys, &cfg);
        let back: IorReport = serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn open_loop_report_carries_latency_and_single_rep() {
        use hcs_core::scenario::Discipline;
        let sys = vast_on_lassen();
        let cfg = IorConfig::smoke(WorkloadClass::DataAnalytics, 2, 4);
        let arrival = Arrival::Open {
            rate: 100.0,
            discipline: Discipline::Poisson,
            duration: 0.5,
            seed: 5,
        };
        let (report, open) = run_ior_open_loop(&sys, &cfg, &arrival, &[]).unwrap();
        assert_eq!(report.outcome.bandwidths.len(), 1);
        assert_eq!(report.outcome.bandwidths[0], open.agg_bandwidth);
        assert!(open.histogram.count() > 0);
        assert!(open.histogram.p50().unwrap() > 0.0);
        // Deterministic: re-running reproduces the histogram bit for bit.
        let (_, again) = run_ior_open_loop(&sys, &cfg, &arrival, &[]).unwrap();
        assert_eq!(open.histogram, again.histogram);
        assert_eq!(open.end.to_bits(), again.end.to_bits());
    }

    #[test]
    fn full_job_runs_both_phases() {
        let sys = GpfsConfig::on_lassen();
        let cfg = IorConfig::smoke(WorkloadClass::MachineLearning, 2, 8);
        let full = run_ior_full(&sys, &cfg);
        // Writes are the sequential laydown; reads keep the random class.
        assert_eq!(full.write.config.workload, WorkloadClass::Scientific);
        assert_eq!(full.read.config.workload, WorkloadClass::MachineLearning);
        assert!(full.write.mean_bandwidth() > 0.0);
        assert!(full.read.mean_bandwidth() > 0.0);
    }

    #[test]
    fn full_job_on_write_class_reads_sequentially() {
        let sys = GpfsConfig::on_lassen();
        let cfg = IorConfig::smoke(WorkloadClass::Scientific, 1, 4);
        let full = run_ior_full(&sys, &cfg);
        assert_eq!(full.read.config.workload, WorkloadClass::DataAnalytics);
    }
}
