//! # hcs-ior
//!
//! An IOR-equivalent synthetic benchmark (paper §IV.C.1). IOR
//! ("Interleaved-Or-Random") drives a file system with a parameterized
//! request stream; the paper uses IOR-4.1.0 with the POSIX API,
//! file-per-process (N-N) layout, 1 MiB block and transfer sizes and
//! 3,000 segments (≈120 GB per node at 44 ppn), simulating:
//!
//! * **scientific simulations** — sequential writes,
//! * **data analytics** — sequential reads,
//! * **ML algorithms** — random reads.
//!
//! Cache-defeating measures mirror the paper: task reordering shifts
//! each rank onto data written by a different node ("a different client
//! read the requests than the one who generated the writes"), and the
//! per-node volume is chosen "to outgrow the block size of GPFS's and
//! Lustre's cache".
//!
//! [`IorConfig`] is the parameter set, [`run_ior`] executes it against
//! any [`hcs_core::StorageSystem`], and [`IorReport`] carries the
//! repeated-measurement summaries IOR would print.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod config;
pub mod runner;

pub use apps::all_apps;
pub use config::{IorConfig, WorkloadClass};
pub use runner::{
    run_ior, run_ior_faulted, run_ior_faulted_traced, run_ior_full, run_ior_open_loop,
    run_ior_open_loop_observed, run_ior_open_loop_traced, run_ior_traced, IorFullReport, IorReport,
};
