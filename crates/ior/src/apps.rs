//! Application-derived IOR configurations.
//!
//! The paper's background section (§III.B) names the real applications
//! its three workload classes stand in for. Each preset here encodes
//! that application's published I/O geometry as an IOR configuration,
//! so the suite can be driven with application-shaped workloads rather
//! than only the paper's uniform 1 MiB × 3,000 geometry.
//!
//! | App | Class | Geometry |
//! |---|---|---|
//! | CM1 | scientific | "more than 750 files each of 16 MB in size" |
//! | HACC-I/O | scientific | "emulates checkpoint/restart on simulation data" |
//! | BD-CATS | analytics | "operates on a shared HDF5 file using MPI-IO" (N-1!) |
//! | KMeans | analytics | "reads points from files with divisions based on algorithmic tasks" |
//! | Cosmic Tagger | ML | HDF5 via h5py, "stripes the file in memory" |

use hcs_simkit::units::{KIB, MIB};

use crate::config::{IorConfig, WorkloadClass};

/// CM1, the atmospheric-simulation model (§III.B): bulk-synchronous
/// output of ~750 files of 16 MB. Modeled as each rank streaming 16 MB
/// files in 1 MiB writes; at 48 ranks a dump step writes ~16 files per
/// rank.
pub fn cm1(nodes: u32, tasks_per_node: u32) -> IorConfig {
    IorConfig {
        block_size: 16.0 * MIB,
        transfer_size: MIB,
        segments: 16, // 16 × 16 MB files per rank ≈ 750 files at 48 ranks
        reorder_tasks: false,
        ..IorConfig::paper_scalability(WorkloadClass::Scientific, nodes, tasks_per_node)
    }
}

/// HACC-I/O, the hardware/hybrid accelerated cosmology I/O kernel
/// (§III.B): checkpoint/restart on particle data — large, aligned,
/// per-process sequential writes with synchronization (a checkpoint is
/// only useful once it is durable).
pub fn hacc_io(nodes: u32, tasks_per_node: u32) -> IorConfig {
    IorConfig {
        block_size: 8.0 * MIB,
        transfer_size: 8.0 * MIB,
        segments: 128, // ~1 GiB of particle state per rank
        fsync: true,
        reorder_tasks: false,
        ..IorConfig::paper_scalability(WorkloadClass::Scientific, nodes, tasks_per_node)
    }
}

/// BD-CATS, trillion-particle clustering (§III.B): all ranks scan one
/// **shared HDF5 file** through MPI-IO — the paper's one named N-1
/// workload, and the reason its methodology section discusses shared-
/// file locking overheads.
pub fn bd_cats(nodes: u32, tasks_per_node: u32) -> IorConfig {
    IorConfig {
        block_size: 2.0 * MIB,
        transfer_size: 2.0 * MIB,
        segments: 512,
        file_per_proc: false, // the shared HDF5 file
        ..IorConfig::paper_scalability(WorkloadClass::DataAnalytics, nodes, tasks_per_node)
    }
}

/// KMeans-style clustering (§III.B): iterative full scans of a
/// partitioned point set, one partition file per task.
pub fn kmeans(nodes: u32, tasks_per_node: u32) -> IorConfig {
    IorConfig {
        block_size: 4.0 * MIB,
        transfer_size: 4.0 * MIB,
        segments: 256,
        ..IorConfig::paper_scalability(WorkloadClass::DataAnalytics, nodes, tasks_per_node)
    }
}

/// Cosmic Tagger (§III.B): sparse UNet training consuming HDF5 sample
/// slices via h5py — small, effectively random reads.
pub fn cosmic_tagger(nodes: u32, tasks_per_node: u32) -> IorConfig {
    IorConfig {
        block_size: 256.0 * KIB,
        transfer_size: 256.0 * KIB,
        segments: 2048,
        ..IorConfig::paper_scalability(WorkloadClass::MachineLearning, nodes, tasks_per_node)
    }
}

/// Every application preset with its display name, at the given scale.
pub fn all_apps(nodes: u32, tasks_per_node: u32) -> Vec<(&'static str, IorConfig)> {
    vec![
        ("CM1", cm1(nodes, tasks_per_node)),
        ("HACC-I/O", hacc_io(nodes, tasks_per_node)),
        ("BD-CATS", bd_cats(nodes, tasks_per_node)),
        ("KMeans", kmeans(nodes, tasks_per_node)),
        ("Cosmic Tagger", cosmic_tagger(nodes, tasks_per_node)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_ior;
    use hcs_devices::{AccessPattern, IoOp};
    use hcs_gpfs::GpfsConfig;
    use hcs_vast::vast_on_lassen;

    #[test]
    fn presets_validate_and_map_to_classes() {
        for (name, cfg) in all_apps(2, 8) {
            cfg.validate();
            let phase = cfg.phase();
            match name {
                "CM1" | "HACC-I/O" => assert_eq!(phase.op, IoOp::Write, "{name}"),
                "BD-CATS" | "KMeans" => {
                    assert_eq!(
                        (phase.op, phase.pattern),
                        (IoOp::Read, AccessPattern::Sequential)
                    )
                }
                "Cosmic Tagger" => {
                    assert_eq!(
                        (phase.op, phase.pattern),
                        (IoOp::Read, AccessPattern::Random)
                    )
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn cm1_writes_750ish_files_worth() {
        // 16 segments × 16 MiB × 48 ranks ≈ 768 file-equivalents.
        let cfg = cm1(1, 48);
        let files = cfg.segments * 48;
        assert!((700..900).contains(&files));
        assert_eq!(cfg.block_size, 16.0 * MIB);
    }

    #[test]
    fn bd_cats_is_shared_file() {
        let cfg = bd_cats(4, 16);
        assert!(!cfg.file_per_proc);
        assert!(!cfg.phase().file_per_proc);
    }

    #[test]
    fn hacc_checkpoint_is_synced() {
        assert!(hacc_io(1, 8).fsync);
    }

    #[test]
    fn apps_run_end_to_end() {
        let gpfs = GpfsConfig::on_lassen();
        let vast = vast_on_lassen();
        for (name, mut cfg) in all_apps(2, 8) {
            cfg.reps = 2;
            let g = run_ior(&gpfs, &cfg).mean_bandwidth();
            let v = run_ior(&vast, &cfg).mean_bandwidth();
            assert!(g > 0.0 && v > 0.0, "{name}");
        }
    }

    #[test]
    fn hacc_on_vast_wins_at_low_concurrency_only() {
        // Synchronized checkpoints love SCM at low process counts (the
        // per-op HDD flush dominates GPFS); GPFS overtakes once enough
        // ranks amortize it — the Fig 3a crossover in app form.
        let mut one = hacc_io(1, 1);
        one.reps = 2;
        let g1 = run_ior(&GpfsConfig::on_lassen(), &one).mean_bandwidth();
        let v1 = run_ior(&vast_on_lassen(), &one).mean_bandwidth();
        assert!(v1 > g1, "1 rank: VAST {v1} vs GPFS {g1}");

        let mut many = hacc_io(1, 16);
        many.reps = 2;
        let g16 = run_ior(&GpfsConfig::on_lassen(), &many).mean_bandwidth();
        let v16 = run_ior(&vast_on_lassen(), &many).mean_bandwidth();
        assert!(g16 > v16, "16 ranks: GPFS {g16} vs VAST {v16}");
    }
}
