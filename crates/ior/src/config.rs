//! IOR parameter sets — re-exported from the core scenario IR.
//!
//! The configuration types moved to [`hcs_core::scenario::ior`] so that
//! a `hcs_core::Scenario` can embed an IOR workload without a
//! dependency cycle; this crate keeps its historical paths
//! (`hcs_ior::config::IorConfig`, `hcs_ior::IorConfig`) and owns the
//! execution engine ([`crate::run_ior`]).

pub use hcs_core::scenario::ior::{IorConfig, WorkloadClass};
