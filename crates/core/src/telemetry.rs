//! Simulation-wide telemetry: one trace/metrics layer under every run.
//!
//! A [`Recorder`] turns the raw [`hcs_simkit::FlowLog`] a probe gathers
//! from each phase's `FlowNet` into the suite's common observability
//! currency: `hcs-dftrace` [`TraceEvent`]s (Chrome-trace dumpable) plus
//! per-resource utilization timelines and a [`MetricsSummary`]
//! (busy fractions, time-weighted bottleneck attribution). Every
//! entry point grows a traced variant — `run_phase_traced`,
//! [`crate::JobScript::run_traced`], `run_ior_traced`,
//! `run_dlio_traced` — all feeding one recorder, so an entire campaign
//! lands in a single trace with a consistent clock.
//!
//! ## Event model
//!
//! Successive runs absorbed into one recorder are laid out end-to-end
//! on a single monotone clock ([`Recorder::clock`]). Each absorbed
//! phase contributes:
//!
//! * one [`EventCategory::Phase`] span on the reserved [`PHASE_PID`]
//!   track — the phase's full wall time (including metadata cost);
//! * one [`EventCategory::Flow`] event per flow group, `pid` = the
//!   flow's tag (the runner tags flows with the client-node index),
//!   `bytes` = the group's total bytes;
//! * one [`EventCategory::Resource`] event per resource per *rate
//!   epoch* on the reserved [`RESOURCE_PID`] track (`tid` = resource
//!   index) — the allocation step function over time, `bytes` = bytes
//!   moved through the resource during the epoch.
//!
//! ## Zero-perturbation guarantee
//!
//! The recorder only ever *listens*: the flow engine's recorder hook is
//! write-only, and the traced runner variants consult nothing the
//! recorder produced. `tests/telemetry_parity.rs` pins this by running
//! every backend × workload cell with and without a recorder and
//! asserting bit-exact [`PhaseOutcome`](crate::PhaseOutcome) equality.

use hcs_dftrace::chrome;
use hcs_dftrace::{EventCategory, TraceEvent, Tracer};
use hcs_simkit::{FlowLog, ResourceId};
use serde::{Deserialize, Serialize};

use crate::graph::StageKind;

/// Reserved `pid` for per-resource utilization events (real node pids
/// are small client-node indices).
pub const RESOURCE_PID: u32 = 1_000_000;

/// Reserved `pid` for phase span events.
pub const PHASE_PID: u32 = 1_000_001;

/// Reserved `pid` for per-op latency-blame annotation spans (emitted
/// only by provenance-enabled open-loop runs).
pub const PROVENANCE_PID: u32 = 1_000_002;

/// Utilization ratio at which a resource counts as saturated for
/// bottleneck attribution — matches the phase runner's threshold.
pub const SATURATION_RATIO: f64 = 0.99;

/// One resource's utilization timeline from one absorbed run.
///
/// `samples` is a step function on the recorder's global clock: each
/// `(t, allocated, capacity)` triple holds until the next sample, the
/// last one until `end`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTimeline {
    /// Resource name, as provisioned.
    pub name: String,
    /// Deployment stage the resource belongs to, when known.
    pub kind: Option<StageKind>,
    /// `(t, allocated bytes/s, capacity bytes/s)` steps, ascending `t`.
    pub samples: Vec<(f64, f64, f64)>,
    /// End of the observation window (global clock).
    pub end: f64,
}

impl UtilizationTimeline {
    /// Time-weighted busy seconds (allocation > 0). Zero-span
    /// timelines (no samples, or `end` at/before the first sample)
    /// report 0.0 — never NaN, and never phantom time from segments
    /// that would close before they open.
    pub fn busy_seconds(&self) -> f64 {
        if self.span() <= 0.0 {
            return 0.0;
        }
        self.segments()
            .filter(|(_, dt, alloc, _)| *alloc > 0.0 && *dt > 0.0)
            .map(|(_, dt, _, _)| dt)
            .sum()
    }

    /// Observation-window length, seconds.
    pub fn span(&self) -> f64 {
        match self.samples.first() {
            Some((t0, _, _)) => (self.end - t0).max(0.0),
            None => 0.0,
        }
    }

    /// Time-weighted mean utilization ratio (allocated / capacity) over
    /// the window; segments with zero capacity count as ratio 0.
    pub fn mean_utilization(&self) -> f64 {
        let span = self.span();
        if span <= 0.0 {
            return 0.0;
        }
        let weighted: f64 = self
            .segments()
            .filter(|(_, dt, _, cap)| *dt > 0.0 && *cap > 0.0)
            .map(|(_, dt, alloc, cap)| dt * (alloc / cap))
            .sum();
        weighted / span
    }

    /// Iterates `(t, dt, allocated, capacity)` segments of the step
    /// function, the last segment closed by [`Self::end`].
    fn segments(&self) -> impl Iterator<Item = (f64, f64, f64, f64)> + '_ {
        let end = self.end;
        self.samples.iter().enumerate().map(move |(i, &(t, a, c))| {
            let next = self.samples.get(i + 1).map_or(end, |s| s.0);
            (t, (next - t).max(0.0), a, c)
        })
    }
}

/// Per-resource roll-up in a [`MetricsSummary`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceMetrics {
    /// Resource name.
    pub name: String,
    /// Deployment stage, when known.
    pub kind: Option<StageKind>,
    /// Seconds the resource carried any traffic.
    pub busy_seconds: f64,
    /// Busy seconds over the trace span.
    pub busy_fraction: f64,
    /// Time-weighted mean allocated/capacity ratio over the resource's
    /// own observation windows.
    pub mean_utilization: f64,
}

/// Time-weighted bottleneck attribution: how long each resource was
/// *the* binding constraint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BottleneckShare {
    /// Deployment stage of the bottleneck resource, when known.
    pub kind: Option<StageKind>,
    /// Resource name.
    pub name: String,
    /// Seconds this resource was the (most-saturated) bottleneck.
    pub seconds: f64,
    /// `seconds` over the total trace span.
    pub share: f64,
}

/// Roll-up of everything a [`Recorder`] saw.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Total recorded span, seconds (the recorder clock's final value).
    pub span: f64,
    /// Per-resource metrics, one entry per distinct `(name, kind)` in
    /// first-seen order.
    pub resources: Vec<ResourceMetrics>,
    /// Bottleneck attribution, descending by seconds.
    pub bottlenecks: Vec<BottleneckShare>,
}

/// Collects trace events and utilization timelines across runs.
///
/// Create one, pass it to any number of `*_traced` entry points, then
/// dump with [`Recorder::to_chrome_json`] / summarize with
/// [`Recorder::metrics_summary`].
#[derive(Debug, Default)]
pub struct Recorder {
    tracer: Tracer,
    timelines: Vec<UtilizationTimeline>,
    clock: f64,
    bottleneck_seconds: Vec<BottleneckShare>,
    solver_epochs: u64,
    flow_groups: u64,
}

impl Recorder {
    /// An empty recorder with its clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The global clock: where the next absorbed run will start.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// All trace events recorded so far.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// All utilization timelines recorded so far (one per resource per
    /// absorbed run, in absorption order).
    pub fn timelines(&self) -> &[UtilizationTimeline] {
        &self.timelines
    }

    /// Flow-solver rate epochs across all absorbed phases (one
    /// allocation sample is emitted per epoch, so this counts solver
    /// invocations the engine actually performed).
    pub fn solver_epochs(&self) -> u64 {
        self.solver_epochs
    }

    /// Flow groups across all absorbed phases.
    pub fn flow_groups(&self) -> u64 {
        self.flow_groups
    }

    /// Absorbs one run's flow log: shifts it onto the global clock,
    /// emits phase/flow/resource events, extends the timelines,
    /// attributes bottleneck time, and advances the clock by
    /// `duration` (the run's wall time, which may exceed the log's last
    /// event — e.g. metadata cost charged outside the flow network).
    ///
    /// `stage_kinds` maps provisioned resources to deployment stages
    /// (pass `&[]` when unknown — e.g. a bare `FlowNet` in a test).
    pub fn absorb_phase(
        &mut self,
        label: &str,
        log: &FlowLog,
        stage_kinds: &[(ResourceId, StageKind)],
        duration: f64,
    ) {
        assert!(duration >= 0.0, "phase duration must be non-negative");
        let t0 = self.clock;
        let end = t0 + duration;
        // Sim-engine counters: plain integer adds, visible to metrics
        // consumers without re-walking the log.
        self.solver_epochs += log.samples.len() as u64;
        // Sum `groups`, not record count: an aggregated class flow
        // stands for `groups` expanded flow groups, so the tally is
        // invariant under equivalence-class aggregation.
        self.flow_groups += log.flows.iter().map(|f| f.groups as u64).sum::<u64>();

        // Durations are computed in the phase's local frame and only
        // start times are shifted by the clock: `t0 + x` and `y - x`
        // never mix, so an event's duration is bitwise identical no
        // matter what clock the phase landed on. That makes stacking a
        // point's private recorder (`absorb_recorder`) reproduce the
        // shared-recorder trace exactly.
        self.tracer.record(TraceEvent {
            name: label.to_string(),
            cat: EventCategory::Phase,
            pid: PHASE_PID,
            tid: 0,
            ts: t0,
            dur: duration,
            bytes: None,
        });

        for f in &log.flows {
            self.tracer.record(TraceEvent {
                name: format!("{label}/flow"),
                cat: EventCategory::Flow,
                pid: f.tag as u32,
                tid: 0,
                ts: t0 + f.start,
                dur: (f.end.unwrap_or(duration) - f.start).max(0.0),
                bytes: Some(f.bytes * f.multiplicity as f64),
            });
        }

        let kind_of = |idx: usize| -> Option<StageKind> {
            stage_kinds
                .iter()
                .find(|(id, _)| id.index() == idx)
                .map(|(_, k)| *k)
        };

        // Per-resource timelines + one Resource event per rate epoch.
        // Segment lengths come from the local sample times (see above).
        for (idx, (name, _)) in log.resources.iter().enumerate() {
            for (i, s) in log.samples.iter().enumerate() {
                let seg = log.samples.get(i + 1).map_or(duration, |n| n.t) - s.t;
                if seg <= 0.0 {
                    continue;
                }
                self.tracer.record(TraceEvent {
                    name: name.clone(),
                    cat: EventCategory::Resource,
                    pid: RESOURCE_PID,
                    tid: idx as u32,
                    ts: t0 + s.t,
                    dur: seg,
                    bytes: Some(s.allocated[idx] * seg),
                });
            }
            self.timelines.push(UtilizationTimeline {
                name: name.clone(),
                kind: kind_of(idx),
                samples: log
                    .samples
                    .iter()
                    .map(|s| (t0 + s.t, s.allocated[idx], s.capacity[idx]))
                    .collect(),
                end,
            });
        }

        // Time-weighted bottleneck attribution, one winner per epoch:
        // highest utilization ratio at or above saturation, ties broken
        // toward the earliest resource in provisioning order (the same
        // rule the phase runner applies to its initial snapshot).
        for (i, s) in log.samples.iter().enumerate() {
            let seg_end = log.samples.get(i + 1).map_or(duration, |n| n.t);
            let dt = seg_end - s.t;
            if dt <= 0.0 {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (idx, (&alloc, &cap)) in s.allocated.iter().zip(&s.capacity).enumerate() {
                if cap <= 0.0 {
                    continue;
                }
                let ratio = alloc / cap;
                if ratio >= SATURATION_RATIO && best.is_none_or(|(_, r)| ratio > r) {
                    best = Some((idx, ratio));
                }
            }
            if let Some((idx, _)) = best {
                let name = &log.resources[idx].0;
                let kind = kind_of(idx);
                match self
                    .bottleneck_seconds
                    .iter_mut()
                    .find(|b| b.name == *name && b.kind == kind)
                {
                    Some(b) => b.seconds += dt,
                    None => self.bottleneck_seconds.push(BottleneckShare {
                        kind,
                        name: name.clone(),
                        seconds: dt,
                        share: 0.0,
                    }),
                }
            }
        }

        self.clock = end;
    }

    /// Records a pure-compute span (a job's compute step) and advances
    /// the clock.
    pub fn record_compute(&mut self, label: &str, seconds: f64) {
        assert!(seconds >= 0.0, "compute time must be non-negative");
        // Shift-invariant like `absorb_phase`: the duration is the
        // local span, only the start is on the clock.
        self.tracer.record(TraceEvent {
            name: label.to_string(),
            cat: EventCategory::Compute,
            pid: PHASE_PID,
            tid: 0,
            ts: self.clock,
            dur: seconds,
            bytes: None,
        });
        self.clock += seconds;
    }

    /// Merges an application-level tracer (e.g. the DLIO pipeline's)
    /// into this recorder, shifting its events onto the global clock.
    /// Does not advance the clock — pair with [`Self::absorb_phase`]
    /// for the run the events came from.
    pub fn merge_events(&mut self, other: &Tracer) {
        let t0 = self.clock;
        for e in other.events() {
            let mut e = e.clone();
            e.ts += t0;
            self.tracer.record(e);
        }
    }

    /// Absorbs another recorder wholesale: its events, timelines and
    /// bottleneck seconds are shifted onto this recorder's clock, its
    /// counters are added, and the clock advances by its full span.
    ///
    /// This is how the metered deck executor keeps one coherent trace:
    /// each point runs into a fresh recorder (so metrics stay
    /// per-point) and is then stacked onto the shared deck recorder —
    /// the resulting trace is bit-identical to running every point
    /// into the shared recorder directly, because each phase would
    /// have started at the same global instant either way.
    pub fn absorb_recorder(&mut self, other: &Recorder) {
        let t0 = self.clock;
        self.merge_events(&other.tracer);
        for tl in &other.timelines {
            self.timelines.push(UtilizationTimeline {
                name: tl.name.clone(),
                kind: tl.kind,
                samples: tl.samples.iter().map(|&(t, a, c)| (t0 + t, a, c)).collect(),
                end: t0 + tl.end,
            });
        }
        for b in &other.bottleneck_seconds {
            match self
                .bottleneck_seconds
                .iter_mut()
                .find(|x| x.name == b.name && x.kind == b.kind)
            {
                Some(x) => x.seconds += b.seconds,
                None => self.bottleneck_seconds.push(b.clone()),
            }
        }
        self.solver_epochs += other.solver_epochs;
        self.flow_groups += other.flow_groups;
        self.clock = t0 + other.clock;
    }

    /// Serializes everything recorded so far to Chrome-trace JSON.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_json(&self.tracer)
    }

    /// Rolls the recorded timelines up into per-resource metrics and
    /// time-weighted bottleneck attribution.
    pub fn metrics_summary(&self) -> MetricsSummary {
        let span = self.clock;
        // Accumulate (busy seconds, Σ window, window-weighted Σ ratio)
        // per distinct resource, in first-seen order.
        let mut acc: Vec<(String, Option<StageKind>, f64, f64, f64)> = Vec::new();
        for tl in &self.timelines {
            let (busy, window, mean) = (tl.busy_seconds(), tl.span(), tl.mean_utilization());
            match acc
                .iter_mut()
                .find(|(name, kind, ..)| *name == tl.name && *kind == tl.kind)
            {
                Some((_, _, b, w, wr)) => {
                    *b += busy;
                    *w += window;
                    *wr += mean * window;
                }
                None => acc.push((tl.name.clone(), tl.kind, busy, window, mean * window)),
            }
        }
        let resources = acc
            .into_iter()
            .map(|(name, kind, busy, window, weighted)| ResourceMetrics {
                name,
                kind,
                busy_seconds: busy,
                busy_fraction: if span > 0.0 { busy / span } else { 0.0 },
                mean_utilization: if window > 0.0 { weighted / window } else { 0.0 },
            })
            .collect();

        let mut bottlenecks = self.bottleneck_seconds.clone();
        for b in &mut bottlenecks {
            b.share = if span > 0.0 { b.seconds / span } else { 0.0 };
        }
        bottlenecks.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));

        MetricsSummary {
            span,
            resources,
            bottlenecks,
        }
    }
}

/// Builds per-op blame annotation spans from a provenance log, in the
/// run's local clock frame: one span per nonzero blame component on
/// the reserved [`PROVENANCE_PID`] track (`tid` = blamed resource
/// index; stall spans sit one lane past the last resource). Merge into
/// a [`Recorder`] with [`Recorder::merge_events`] *before* the phase's
/// `absorb_phase` so both land on the same global clock offset.
pub fn blame_spans(label: &str, log: &hcs_simkit::ProvenanceLog) -> Tracer {
    let mut tracer = Tracer::new();
    let stall_lane = log.resources.len() as u32;
    for op in &log.ops {
        for &(r, seconds) in &op.blame {
            if seconds <= 0.0 {
                continue;
            }
            let resource = log
                .resources
                .get(r as usize)
                .map(|(name, _)| name.as_str())
                .unwrap_or("?");
            tracer.record(TraceEvent {
                name: format!("{label}/blame {resource}"),
                cat: EventCategory::Other("blame".to_string()),
                pid: PROVENANCE_PID,
                tid: r,
                ts: op.admitted_at,
                dur: seconds,
                bytes: None,
            });
        }
        if op.stall > 0.0 {
            tracer.record(TraceEvent {
                name: format!("{label}/stall"),
                cat: EventCategory::Other("stall".to_string()),
                pid: PROVENANCE_PID,
                tid: stall_lane,
                ts: op.admitted_at,
                dur: op.stall,
                bytes: None,
            });
        }
    }
    tracer
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_simkit::{FlowLogHandle, FlowNet, FlowSpec, ResourceSpec};

    fn one_flow_log() -> (FlowLog, f64) {
        let mut net = FlowNet::new();
        let log = FlowLogHandle::attach(&mut net);
        let r = net.add_resource(ResourceSpec::new("link", 100.0));
        net.add_flow(FlowSpec::new(vec![r], 1000.0).with_tag(0));
        let end = net.run_to_completion(|_, _| {});
        (log.snapshot(), end)
    }

    #[test]
    fn absorb_emits_phase_flow_and_resource_events() {
        let (log, dur) = one_flow_log();
        let mut rec = Recorder::new();
        rec.absorb_phase("write", &log, &[], dur);
        assert_eq!(rec.clock(), dur);
        let t = rec.tracer();
        assert_eq!(t.by_category(&EventCategory::Phase).count(), 1);
        assert_eq!(t.by_category(&EventCategory::Flow).count(), 1);
        assert_eq!(t.by_category(&EventCategory::Resource).count(), 1);
        let res = t.by_category(&EventCategory::Resource).next().unwrap();
        assert_eq!(res.pid, RESOURCE_PID);
        // 100 B/s for 10 s: the epoch moved all 1000 bytes.
        assert!((res.bytes.unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn successive_phases_stack_on_the_clock() {
        let (log, dur) = one_flow_log();
        let mut rec = Recorder::new();
        rec.absorb_phase("a", &log, &[], dur);
        rec.record_compute("compute", 5.0);
        rec.absorb_phase("b", &log, &[], dur);
        assert!((rec.clock() - (2.0 * dur + 5.0)).abs() < 1e-9);
        let phases: Vec<f64> = rec
            .tracer()
            .by_category(&EventCategory::Phase)
            .map(|e| e.ts)
            .collect();
        assert_eq!(phases, vec![0.0, dur + 5.0]);
        assert_eq!(rec.timelines().len(), 2);
        assert_eq!(rec.timelines()[1].samples[0].0, dur + 5.0);
    }

    #[test]
    fn metrics_attribute_the_saturated_link() {
        let (log, dur) = one_flow_log();
        let mut rec = Recorder::new();
        rec.absorb_phase("a", &log, &[], dur);
        rec.record_compute("compute", 10.0);
        let m = rec.metrics_summary();
        assert!((m.span - 20.0).abs() < 1e-9);
        assert_eq!(m.resources.len(), 1);
        let r = &m.resources[0];
        assert!((r.busy_seconds - 10.0).abs() < 1e-9);
        assert!((r.busy_fraction - 0.5).abs() < 1e-9);
        assert!((r.mean_utilization - 1.0).abs() < 1e-9);
        assert_eq!(m.bottlenecks.len(), 1);
        assert_eq!(m.bottlenecks[0].name, "link");
        assert!((m.bottlenecks[0].seconds - 10.0).abs() < 1e-9);
        assert!((m.bottlenecks[0].share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn chrome_json_round_trips_through_dftrace() {
        let (log, dur) = one_flow_log();
        let mut rec = Recorder::new();
        rec.absorb_phase("a", &log, &[], dur);
        let json = rec.to_chrome_json();
        let back = chrome::from_json(&json).unwrap();
        assert_eq!(back.len(), rec.tracer().len());
        assert_eq!(
            back.by_category(&EventCategory::Resource).count(),
            rec.tracer().by_category(&EventCategory::Resource).count()
        );
    }

    #[test]
    fn zero_span_timelines_report_zero_not_nan() {
        // No samples at all.
        let empty = UtilizationTimeline {
            name: "idle".into(),
            kind: None,
            samples: vec![],
            end: 0.0,
        };
        // Samples, but the window closes at (and before) its opening
        // instant — the degenerate shapes a zero-duration phase
        // produces.
        let collapsed = UtilizationTimeline {
            name: "collapsed".into(),
            kind: None,
            samples: vec![(5.0, 50.0, 100.0)],
            end: 5.0,
        };
        let inverted = UtilizationTimeline {
            name: "inverted".into(),
            kind: None,
            samples: vec![(5.0, 50.0, 100.0)],
            end: 4.0,
        };
        for tl in [&empty, &collapsed, &inverted] {
            assert_eq!(tl.span(), 0.0, "{}", tl.name);
            assert_eq!(tl.busy_seconds(), 0.0, "{}", tl.name);
            assert_eq!(tl.mean_utilization(), 0.0, "{}", tl.name);
            assert!(!tl.mean_utilization().is_nan(), "{}", tl.name);
        }
    }

    #[test]
    fn recorder_counts_epochs_and_flow_groups() {
        let (log, dur) = one_flow_log();
        let mut rec = Recorder::new();
        assert_eq!((rec.solver_epochs(), rec.flow_groups()), (0, 0));
        rec.absorb_phase("a", &log, &[], dur);
        assert_eq!(rec.solver_epochs(), log.samples.len() as u64);
        assert_eq!(rec.flow_groups(), 1);
        rec.absorb_phase("b", &log, &[], dur);
        assert_eq!(rec.solver_epochs(), 2 * log.samples.len() as u64);
        assert_eq!(rec.flow_groups(), 2);
    }

    #[test]
    fn absorb_recorder_matches_direct_absorption() {
        let (log, dur) = one_flow_log();
        // Direct: both phases into one recorder.
        let mut direct = Recorder::new();
        direct.absorb_phase("a", &log, &[], dur);
        direct.absorb_phase("b", &log, &[], dur);
        // Stacked: each phase into its own recorder, then absorbed.
        let mut stacked = Recorder::new();
        for label in ["a", "b"] {
            let mut point = Recorder::new();
            point.absorb_phase(label, &log, &[], dur);
            stacked.absorb_recorder(&point);
        }
        assert_eq!(stacked.to_chrome_json(), direct.to_chrome_json());
        assert_eq!(stacked.metrics_summary(), direct.metrics_summary());
        assert_eq!(stacked.clock(), direct.clock());
        assert_eq!(stacked.solver_epochs(), direct.solver_epochs());
        assert_eq!(stacked.flow_groups(), direct.flow_groups());
    }

    #[test]
    fn merge_events_shifts_onto_clock() {
        let mut rec = Recorder::new();
        rec.record_compute("warmup", 3.0);
        let mut app = Tracer::new();
        app.complete("read_sample", EventCategory::Read, 0, 0, 1.0, 2.0);
        rec.merge_events(&app);
        let e = rec
            .tracer()
            .by_category(&EventCategory::Read)
            .next()
            .unwrap();
        assert!((e.ts - 4.0).abs() < 1e-9);
    }
}
