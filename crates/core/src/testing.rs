//! Test doubles for the `StorageSystem` trait.
//!
//! [`UniformSystem`] is a minimal storage system — one shared pool, one
//! mount resource per node — used by unit tests, doctests and
//! benchmarks of the runner itself. Real systems live in the
//! `hcs-vast`/`hcs-gpfs`/`hcs-lustre`/`hcs-nvme` crates.

use crate::graph::{DeploymentGraph, Stage, StageKind};
use crate::phase::PhaseSpec;
use crate::system::StorageSystem;

/// A storage system with a single shared pool of fixed capacity and an
/// optional per-node mount limit and per-stream ceiling.
#[derive(Clone, Debug)]
pub struct UniformSystem {
    name: String,
    pool_bw: f64,
    node_bw: f64,
    stream_bw: f64,
    per_op_latency: f64,
}

impl UniformSystem {
    /// A pool of `pool_bw` bytes/s with unconstrained nodes and streams.
    pub fn new(name: impl Into<String>, pool_bw: f64) -> Self {
        UniformSystem {
            name: name.into(),
            pool_bw,
            node_bw: f64::INFINITY,
            stream_bw: f64::INFINITY,
            per_op_latency: 0.0,
        }
    }

    /// Limits each node's mount connection.
    pub fn with_node_bw(mut self, bw: f64) -> Self {
        self.node_bw = bw;
        self
    }

    /// Limits each stream (rank).
    pub fn with_stream_bw(mut self, bw: f64) -> Self {
        self.stream_bw = bw;
        self
    }

    /// Adds fixed per-operation latency.
    pub fn with_per_op_latency(mut self, lat: f64) -> Self {
        self.per_op_latency = lat;
        self
    }
}

impl StorageSystem for UniformSystem {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan(&self, _nodes: u32, _ppn: u32, _phase: &PhaseSpec) -> DeploymentGraph {
        let mut graph =
            DeploymentGraph::new(self.stream_bw, self.per_op_latency, 0.0).stage(Stage::shared(
                format!("{}:pool", self.name),
                StageKind::ServerPool,
                self.pool_bw,
            ));
        if self.node_bw.is_finite() {
            graph = graph.stage(Stage::per_node(
                format!("{}:mount", self.name),
                StageKind::ClientMount,
                self.node_bw,
            ));
        }
        graph
    }

    fn noise_sigma(&self) -> f64 {
        0.02
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_phase;
    use hcs_simkit::units::{GIB, MIB};

    #[test]
    fn node_bw_limits_per_node() {
        let sys = UniformSystem::new("toy", 100.0 * GIB).with_node_bw(2.0 * GIB);
        let out = run_phase(&sys, 2, 8, &PhaseSpec::seq_read(MIB, GIB));
        assert!(out.agg_bandwidth <= 4.0 * GIB * 1.001);
        assert!(out.agg_bandwidth > 3.9 * GIB);
    }

    #[test]
    fn per_op_latency_reduces_stream_bw() {
        let fast = UniformSystem::new("a", GIB).with_stream_bw(GIB);
        let slow = UniformSystem::new("b", GIB)
            .with_stream_bw(GIB)
            .with_per_op_latency(1e-3);
        let phase = PhaseSpec::seq_read(MIB, 100.0 * MIB);
        let f = run_phase(&fast, 1, 1, &phase).agg_bandwidth;
        let s = run_phase(&slow, 1, 1, &phase).agg_bandwidth;
        assert!(
            s < f * 0.6,
            "latency should halve 1 MiB streams: {s} vs {f}"
        );
    }
}
