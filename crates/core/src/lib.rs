//! # hcs-core
//!
//! Core public API of the `hcs` (Highly Configurable Storage) suite — a
//! from-scratch, simulation-based reproduction of *"Understanding Highly
//! Configurable Storage for Diverse Workloads"* (IEEE CLUSTER 2024).
//!
//! The suite separates three concerns:
//!
//! 1. **What the application does** — a [`PhaseSpec`]: direction,
//!    access pattern, transfer size, bytes per rank, synchronization.
//! 2. **What the storage system is** — an implementation of
//!    [`StorageSystem`] (see the `hcs-vast`, `hcs-gpfs`, `hcs-lustre`
//!    and `hcs-nvme` crates) that *plans* a [`DeploymentGraph`]: the
//!    typed stages an I/O path crosses — mount connections, gateway
//!    funnels, server pools, fabric links, media arrays. One shared
//!    planner ([`graph`]) compiles every graph into
//!    [`hcs_simkit::FlowNet`] resources.
//! 3. **How they meet** — the [`runner`], which places one flow group
//!    per client node into the provisioned network, lets the flow engine
//!    divide bandwidth max-min fairly, and reports IOR-style aggregate
//!    bandwidth (total bytes over the slowest rank's completion).
//!
//! ```
//! use hcs_core::{PhaseSpec, runner::run_phase};
//! use hcs_core::testing::UniformSystem;
//! use hcs_simkit::units::{GIB, MIB};
//!
//! // A toy storage system with a 10 GiB/s shared pool.
//! let system = UniformSystem::new("toy", 10.0 * GIB);
//! let phase = PhaseSpec::seq_write(MIB, GIB).with_fsync(false);
//! let outcome = run_phase(&system, 4, 8, &phase);
//! assert!(outcome.agg_bandwidth <= 10.0 * GIB * 1.000001);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod chaos;
pub mod graph;
pub mod metrics;
pub mod outcome;
pub mod phase;
pub mod runner;
pub mod scenario;
pub mod system;
pub mod telemetry;
pub mod testing;

pub use campaign::{young_interval, JobOutcome, JobScript, JobStep};
pub use chaos::{ChaosCampaign, ChaosFaultKind, ChaosInvariant, ChaosReport, FaultBudget};
pub use graph::{Capacity, DeploymentGraph, Reconfigured, Stage, StageKind, StageScope};
pub use hcs_devices::{AccessPattern, IoOp};
pub use metrics::{
    DeckMetricsSummary, KneeVerdict, LatencyHistogram, OpLatency, PointMetrics, ProvenanceMetrics,
    ResilienceMetrics, StageBlame, Stats, StatsSummary, SystemMetrics,
};
pub use outcome::{Bottleneck, PhaseOutcome};
pub use phase::PhaseSpec;
pub use scenario::{
    Arrival, Deck, Discipline, FaultKind, FaultSpec, GraphEdit, Scale, Scenario, SweepAxes,
    Workload,
};
pub use system::{MetadataProfile, Provisioned, StorageSystem};
pub use telemetry::{MetricsSummary, Recorder, UtilizationTimeline};
