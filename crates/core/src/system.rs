//! The `StorageSystem` trait and provisioning contract.

use hcs_simkit::{FlowNet, ResourceId};

use crate::graph::{DeploymentGraph, PlanOptions, StageKind};
use crate::phase::PhaseSpec;

/// One equivalence class of client nodes: every member traverses the
/// same capacities (same shard assignment, same per-node stage
/// capacities, same fault exposure), so the planner may compile the
/// whole class into one weighted flow over aggregate resources.
#[derive(Clone, Debug)]
pub struct NodeClass {
    /// Member node indices, ascending.
    pub members: Vec<u32>,
    /// The resource path every member traverses (per-node stages appear
    /// as class aggregate resources).
    pub path: Vec<ResourceId>,
}

/// One aggregate resource standing for a per-node stage across a whole
/// node class — the mapping fault resolution needs to decide whether a
/// name filter covers the class.
#[derive(Clone, Debug)]
pub struct AggregateStage {
    /// The registered aggregate resource.
    pub id: ResourceId,
    /// The stage's base name (member `i` would have been named
    /// `"{stage_name}{i}"` in an expanded plan).
    pub stage_name: String,
    /// Member node indices, ascending (same as the owning class).
    pub members: Vec<u32>,
}

/// Metadata-path performance of a storage system, consumed by
/// metadata benchmarks (MDTest-style create/stat/unlink storms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetadataProfile {
    /// Round-trip latency of one metadata operation from one client,
    /// seconds (an NFS LOOKUP/CREATE over the mount's transport, a
    /// Lustre MDS RPC...).
    pub op_latency: f64,
    /// Aggregate server-side metadata operation rate, ops/s.
    pub ops_pool: f64,
}

/// What a storage system hands back after provisioning a [`FlowNet`]
/// for a run.
#[derive(Clone, Debug)]
pub struct Provisioned {
    /// For each client node `i`, the resource path its flows traverse
    /// (mount connection, gateway, server pool, fabric, media...). The
    /// first entry is conventionally the node's own mount/NIC resource.
    pub node_paths: Vec<Vec<ResourceId>>,
    /// Peak bandwidth of a single client stream (one thread issuing
    /// blocking I/O), bytes/s. `f64::INFINITY` when unconstrained.
    pub per_stream_bw: f64,
    /// Fixed latency per operation beyond bandwidth (protocol + media),
    /// seconds.
    pub per_op_latency: f64,
    /// Fixed latency per file open (metadata round trips), seconds.
    pub metadata_latency: f64,
    /// Which deployment stage each provisioned resource belongs to,
    /// `(resource, kind)` in provisioning order. Lets the runner
    /// attribute a saturated resource to a stage category without
    /// parsing names, and stays correct when several systems share one
    /// [`FlowNet`] (resource ids are absolute, not zero-based).
    pub stage_kinds: Vec<(ResourceId, StageKind)>,
    /// Node equivalence classes, populated **only** by class-aggregated
    /// plans ([`DeploymentGraph::provision_classed`] with aggregation
    /// on); empty for expanded plans, whose per-node paths live in
    /// [`Self::node_paths`]. Exactly one of the two representations is
    /// populated.
    pub classes: Vec<NodeClass>,
    /// Aggregate per-node-stage resources of a class-aggregated plan
    /// (empty for expanded plans), in provisioning order.
    pub aggregates: Vec<AggregateStage>,
}

impl Provisioned {
    /// Number of client nodes this plan covers, whichever
    /// representation is populated.
    pub fn client_nodes(&self) -> usize {
        if self.classes.is_empty() {
            self.node_paths.len()
        } else {
            self.classes.iter().map(|c| c.members.len()).sum()
        }
    }
    /// The effective per-stream bandwidth for back-to-back operations of
    /// `transfer_size` bytes, folding [`Self::per_op_latency`] into
    /// [`Self::per_stream_bw`].
    ///
    /// # Panics
    /// Panics if the per-stream bandwidth is not positive: a
    /// zero-capacity stream would make every rank crossing it stall
    /// forever, which used to surface as a silent 0.0 rate cap and a
    /// hung `run_to_completion`. [`DeploymentGraph::validate`] rejects
    /// such graphs at planning time; this is the backstop for
    /// hand-built `Provisioned` values.
    pub fn effective_stream_bw(&self, transfer_size: f64) -> f64 {
        assert!(transfer_size > 0.0, "transfer size must be positive");
        assert!(
            !self.per_stream_bw.is_nan() && self.per_stream_bw > 0.0,
            "per-stream bandwidth is {}; a zero-capacity stream would stall \
             every flow (use f64::INFINITY for 'unconstrained')",
            self.per_stream_bw
        );
        if self.per_op_latency <= 0.0 {
            return self.per_stream_bw;
        }
        if !self.per_stream_bw.is_finite() {
            return transfer_size / self.per_op_latency;
        }
        transfer_size / (transfer_size / self.per_stream_bw + self.per_op_latency)
    }
}

/// A storage system deployment, bound to a specific machine.
///
/// Implementations translate a [`PhaseSpec`] into a
/// [`DeploymentGraph`]: which stages a request crosses, and how much
/// capacity each has *for that phase's op/pattern/transfer/fsync
/// combination*. Capacities are phase-dependent because media and cache
/// behaviour are pattern-dependent (an HDD array is 15× slower for
/// random 1 MiB reads; fsync collapses consumer NVMe writes). The
/// shared planner ([`DeploymentGraph::provision`]) turns the graph into
/// flow-network resources — backends declare deployments, they do not
/// build networks.
/// Systems are plain calibration data, so they are required to be
/// thread-safe — experiment sweeps run configurations in parallel.
pub trait StorageSystem: Send + Sync {
    /// Short name ("VAST", "GPFS", ...). Used in figure legends.
    fn name(&self) -> &str;

    /// One-line deployment description for reports.
    fn description(&self) -> String {
        self.name().to_string()
    }

    /// Describes the deployment for a run with `nodes` client nodes of
    /// `ppn` ranks each as a declarative stage graph. Capacities may
    /// depend on the phase (cache blending, working-set effects), so
    /// the phase is an input to planning, not only to compilation.
    fn plan(&self, nodes: u32, ppn: u32, phase: &PhaseSpec) -> DeploymentGraph;

    /// Builds the resources for a run, returning the per-node paths and
    /// stream parameters. Provided: compiles [`Self::plan`] through the
    /// shared planner. Consumers (the runner, trace replay, the DLIO
    /// pipeline) call this; backends implement [`Self::plan`].
    fn provision(&self, net: &mut FlowNet, nodes: u32, ppn: u32, phase: &PhaseSpec) -> Provisioned {
        self.plan(nodes, ppn, phase).provision(net, nodes, phase)
    }

    /// [`Self::provision`] with planning options: equivalence-class
    /// aggregation mode plus the fault specs whose name filters must
    /// split classes. The phase runner calls this; [`Self::provision`]
    /// stays fully expanded for consumers that index
    /// [`Provisioned::node_paths`] per node (trace replay, the DLIO
    /// pipeline).
    fn provision_classed(
        &self,
        net: &mut FlowNet,
        nodes: u32,
        ppn: u32,
        phase: &PhaseSpec,
        opts: &PlanOptions<'_>,
    ) -> Provisioned {
        self.plan(nodes, ppn, phase)
            .provision_classed(net, nodes, phase, opts)
    }

    /// Run-to-run variability (multiplicative sigma) observed on this
    /// deployment — shared parallel file systems wobble more than
    /// dedicated appliances (§IV.C: "all file systems, including VAST,
    /// are shared").
    fn noise_sigma(&self) -> f64 {
        0.03
    }

    /// Metadata-path performance (for MDTest-style benchmarks). The
    /// default is a fast, uncontended path; real systems override it
    /// from their transport latency and operation-rate pool.
    fn metadata_profile(&self) -> MetadataProfile {
        MetadataProfile {
            op_latency: 100e-6,
            ops_pool: 1e6,
        }
    }
}

/// Boxed systems forward the trait, so registries can hand out
/// `Box<dyn StorageSystem>` values and consumers (graph mutators like
/// [`crate::graph::Reconfigured`], the scenario executor) can wrap them
/// without knowing the concrete backend.
impl StorageSystem for Box<dyn StorageSystem> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn description(&self) -> String {
        (**self).description()
    }

    fn plan(&self, nodes: u32, ppn: u32, phase: &PhaseSpec) -> DeploymentGraph {
        (**self).plan(nodes, ppn, phase)
    }

    fn provision(&self, net: &mut FlowNet, nodes: u32, ppn: u32, phase: &PhaseSpec) -> Provisioned {
        (**self).provision(net, nodes, ppn, phase)
    }

    fn provision_classed(
        &self,
        net: &mut FlowNet,
        nodes: u32,
        ppn: u32,
        phase: &PhaseSpec,
        opts: &PlanOptions<'_>,
    ) -> Provisioned {
        (**self).provision_classed(net, nodes, ppn, phase, opts)
    }

    fn noise_sigma(&self) -> f64 {
        (**self).noise_sigma()
    }

    fn metadata_profile(&self) -> MetadataProfile {
        (**self).metadata_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_stream_bw_folds_latency() {
        let p = Provisioned {
            node_paths: vec![],
            per_stream_bw: 1e9,
            per_op_latency: 1e-3,
            metadata_latency: 0.0,
            stage_kinds: vec![],
            classes: vec![],
            aggregates: vec![],
        };
        // 1 MB ops: 1e6 / (1e-3 + 1e-3) = 500 MB/s.
        let eff = p.effective_stream_bw(1e6);
        assert!((eff - 5e8).abs() < 1.0);
    }

    #[test]
    fn infinite_stream_is_latency_bound() {
        let p = Provisioned {
            node_paths: vec![],
            per_stream_bw: f64::INFINITY,
            per_op_latency: 1e-3,
            metadata_latency: 0.0,
            stage_kinds: vec![],
            classes: vec![],
            aggregates: vec![],
        };
        assert!((p.effective_stream_bw(1e6) - 1e9).abs() < 1.0);
    }

    #[test]
    fn zero_latency_passthrough() {
        let p = Provisioned {
            node_paths: vec![],
            per_stream_bw: 2e9,
            per_op_latency: 0.0,
            metadata_latency: 0.0,
            stage_kinds: vec![],
            classes: vec![],
            aggregates: vec![],
        };
        assert_eq!(p.effective_stream_bw(4096.0), 2e9);
    }

    #[test]
    #[should_panic(expected = "per-stream bandwidth is 0")]
    fn zero_stream_bw_is_rejected_not_stalled() {
        let p = Provisioned {
            node_paths: vec![],
            per_stream_bw: 0.0,
            per_op_latency: 1e-3,
            metadata_latency: 0.0,
            stage_kinds: vec![],
            classes: vec![],
            aggregates: vec![],
        };
        p.effective_stream_bw(1e6);
    }
}
