//! The flow-level phase runner.
//!
//! [`run_phase`] is the meeting point of a workload and a storage
//! system: the system provisions a [`FlowNet`], the runner places one
//! flow group per client node (multiplicity = ranks per node, rate cap =
//! the effective per-stream bandwidth at this phase's transfer size),
//! and the flow engine's max-min fair sharing determines who bottlenecks
//! where. Bandwidth is accounted the way IOR reports it: total bytes
//! over the completion time of the slowest rank.

use std::fmt;

use hcs_simkit::{
    CapacityEvent, FaultRunReport, FaultTimeline, FlowLogHandle, FlowNet, FlowSpec,
    ProvenanceHandle, ResourceId, SimRng,
};

use crate::graph::{resource_of_stage, PlanOptions, StageKind};
use crate::metrics::{LatencyHistogram, ProvenanceMetrics, ResilienceMetrics};
use crate::outcome::{Bottleneck, PhaseOutcome, RepeatedOutcome};
use crate::phase::PhaseSpec;
use crate::scenario::{Arrival, FaultKind, FaultSpec};
use crate::system::StorageSystem;
use crate::telemetry::Recorder;

/// Typed failure of a fault-injected phase run.
///
/// The CLI turns these into one-line exit-2 diagnostics; library
/// callers can match on them.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPhaseError {
    /// A [`FaultSpec`] failed its own validation ([`FaultSpec::check`]).
    InvalidSpec(String),
    /// No provisioned resource matched the spec's stage kind / name.
    UnmatchedStage {
        /// The stage kind the spec targeted.
        stage: StageKind,
        /// The optional stage-name filter.
        name: Option<String>,
    },
    /// The schedule left the network unrecoverably stalled: every
    /// remaining flow at rate zero with no event left to lift it.
    Stalled {
        /// Simulated time of the stall.
        at: f64,
        /// Names of the starved (zero-capacity) resources.
        starved: Vec<String>,
    },
}

impl fmt::Display for FaultPhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPhaseError::InvalidSpec(msg) => write!(f, "{msg}"),
            FaultPhaseError::UnmatchedStage { stage, name } => write!(
                f,
                "fault targets no planned stage: kind {}{}",
                stage.label(),
                match name {
                    Some(n) => format!(", name '{n}'"),
                    None => String::new(),
                }
            ),
            FaultPhaseError::Stalled { at, starved } => write!(
                f,
                "fault schedule leaves flows unrecoverably stalled at t={at}s \
                 (starved: {}); schedule a recovery event",
                starved.join(", ")
            ),
        }
    }
}

impl std::error::Error for FaultPhaseError {}

/// Resolves [`FaultSpec`]s against a provisioned network into concrete
/// timed capacity events.
///
/// Every resource whose stage kind (and, when given, stage name)
/// matches is faulted: sharded and per-node stages fan out to all their
/// member resources. Jitter slices draw from a per-resource substream
/// of the spec's own seed, independent of the workload noise stream.
pub fn resolve_faults(
    faults: &[FaultSpec],
    net: &FlowNet,
    stage_kinds: &[(ResourceId, StageKind)],
) -> Result<FaultTimeline, FaultPhaseError> {
    let mut events = Vec::new();
    for spec in faults {
        spec.check().map_err(FaultPhaseError::InvalidSpec)?;
        let targets: Vec<ResourceId> = stage_kinds
            .iter()
            .filter(|(id, kind)| {
                *kind == spec.stage
                    && spec
                        .name
                        .as_deref()
                        .map(|n| resource_of_stage(n, net.resource_name(*id)))
                        .unwrap_or(true)
            })
            .map(|(id, _)| *id)
            .collect();
        if targets.is_empty() {
            return Err(FaultPhaseError::UnmatchedStage {
                stage: spec.stage,
                name: spec.name.clone(),
            });
        }
        for id in targets {
            match &spec.fault {
                FaultKind::Outage => {
                    events.push(CapacityEvent::new(spec.start, id, 0.0));
                    events.push(CapacityEvent::new(spec.end, id, 1.0));
                }
                FaultKind::Degrade { factor } => {
                    events.push(CapacityEvent::new(spec.start, id, *factor));
                    events.push(CapacityEvent::new(spec.end, id, 1.0));
                }
                FaultKind::Jitter {
                    seed,
                    amplitude,
                    steps,
                } => {
                    let mut rng = SimRng::new(*seed).split(net.resource_name(id));
                    let dt = (spec.end - spec.start) / *steps as f64;
                    for i in 0..*steps {
                        events.push(CapacityEvent::new(
                            spec.start + i as f64 * dt,
                            id,
                            rng.jitter_factor(*amplitude),
                        ));
                    }
                    events.push(CapacityEvent::new(spec.end, id, 1.0));
                }
            }
        }
    }
    Ok(FaultTimeline::new(events))
}

/// [`resolve_faults`] against a possibly class-aggregated plan.
///
/// Plain resources are matched by stage kind and name exactly as in
/// [`resolve_faults`] (an expanded plan degenerates to that function
/// verbatim). An aggregate resource matches by its *members*: the
/// spec's name filter is evaluated against the expanded member names
/// (`"{stage}{node}"`), and because the planner split classes on every
/// fault-name filter, a filter covers either every member or none — a
/// partial hit is a planner bug and panics. A matched aggregate
/// produces one capacity event per window edge (the engine counts each
/// of its `instances` members in `events_applied`, so fault accounting
/// survives aggregation unchanged).
pub fn resolve_faults_planned(
    faults: &[FaultSpec],
    net: &FlowNet,
    prov: &crate::system::Provisioned,
) -> Result<FaultTimeline, FaultPhaseError> {
    if prov.aggregates.is_empty() {
        return resolve_faults(faults, net, &prov.stage_kinds);
    }
    let aggregate_of: std::collections::HashMap<usize, &crate::system::AggregateStage> =
        prov.aggregates.iter().map(|a| (a.id.index(), a)).collect();
    let mut events = Vec::new();
    for spec in faults {
        spec.check().map_err(FaultPhaseError::InvalidSpec)?;
        let targets: Vec<ResourceId> = prov
            .stage_kinds
            .iter()
            .filter(|(id, kind)| {
                *kind == spec.stage
                    && match (spec.name.as_deref(), aggregate_of.get(&id.index())) {
                        (None, _) => true,
                        (Some(n), None) => resource_of_stage(n, net.resource_name(*id)),
                        (Some(n), Some(agg)) => {
                            let hit = agg
                                .members
                                .iter()
                                .filter(|m| resource_of_stage(n, &format!("{}{m}", agg.stage_name)))
                                .count();
                            assert!(
                                hit == 0 || hit == agg.members.len(),
                                "fault name filter '{n}' hits {hit}/{} members of \
                                 aggregate '{}' — the planner failed to split this class",
                                agg.members.len(),
                                net.resource_name(*id),
                            );
                            hit > 0
                        }
                    }
            })
            .map(|(id, _)| *id)
            .collect();
        if targets.is_empty() {
            return Err(FaultPhaseError::UnmatchedStage {
                stage: spec.stage,
                name: spec.name.clone(),
            });
        }
        for id in targets {
            match &spec.fault {
                FaultKind::Outage => {
                    events.push(CapacityEvent::new(spec.start, id, 0.0));
                    events.push(CapacityEvent::new(spec.end, id, 1.0));
                }
                FaultKind::Degrade { factor } => {
                    events.push(CapacityEvent::new(spec.start, id, *factor));
                    events.push(CapacityEvent::new(spec.end, id, 1.0));
                }
                FaultKind::Jitter {
                    seed,
                    amplitude,
                    steps,
                } => {
                    let mut rng = SimRng::new(*seed).split(net.resource_name(id));
                    let dt = (spec.end - spec.start) / *steps as f64;
                    for i in 0..*steps {
                        events.push(CapacityEvent::new(
                            spec.start + i as f64 * dt,
                            id,
                            rng.jitter_factor(*amplitude),
                        ));
                    }
                    events.push(CapacityEvent::new(spec.end, id, 1.0));
                }
            }
        }
    }
    Ok(FaultTimeline::new(events))
}

/// Runs one phase at the given scale, noise-free.
///
/// # Panics
/// Panics if the phase is invalid, the system provisions a path for the
/// wrong number of nodes, or flows stall on a zero-capacity resource.
pub fn run_phase(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
) -> PhaseOutcome {
    match run_phase_impl(system, nodes, ppn, phase, None, &[], false) {
        Ok((outcome, _, _)) => outcome,
        Err(e) => unreachable!("fault-free run cannot fail fault resolution: {e}"),
    }
}

/// Engine-state evidence captured by [`run_phase_chaos`] for the chaos
/// campaign's metamorphic invariants (see [`crate::chaos`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosEvidence {
    /// Per-resource capacities at drive-loop entry — the provisioned
    /// values fault factors scale — indexed by registration order.
    pub entry_capacities: Vec<f64>,
    /// The same capacities after the run completed. When every
    /// scheduled recovery event fired, these must equal the entry
    /// snapshot bit for bit.
    pub terminal_capacities: Vec<f64>,
    /// Concrete capacity events the specs resolved into (including
    /// events that end up scheduled past the completion time).
    pub resolved_events: usize,
}

/// A completed run through the chaos executor: outcome, the engine's
/// fault report, and the capacity evidence invariants inspect.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPhaseRun {
    /// The phase outcome (same shape as [`run_phase`]'s).
    pub outcome: PhaseOutcome,
    /// The engine's stall/event accounting for the run.
    pub report: FaultRunReport,
    /// Entry/terminal capacity snapshots and the resolved event count.
    pub evidence: ChaosEvidence,
}

/// Runs one phase through the fault-injection drive loop even when the
/// schedule is empty — the chaos-campaign executor's entry point.
///
/// The forced path is what makes the empty-timeline metamorphic
/// invariant meaningful: an empty schedule must reproduce
/// [`run_phase`]'s result bit for bit *through the fault engine*, not
/// by skipping it. Provisioning is identical to [`run_phase`]'s for
/// the same specs, so faulted and fault-free twins share one plan.
pub fn run_phase_chaos(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    faults: &[FaultSpec],
) -> Result<ChaosPhaseRun, FaultPhaseError> {
    let (outcome, report, evidence) =
        run_phase_impl(system, nodes, ppn, phase, None, faults, true)?;
    Ok(ChaosPhaseRun {
        outcome,
        report: report.expect("chaos run always drives the fault loop"),
        evidence: evidence.expect("chaos run captures capacity evidence"),
    })
}

/// Runs one phase under a fault schedule: the specs are resolved
/// against the provisioned network (see [`resolve_faults`]) and the
/// resulting capacity events are interleaved with the drive loop. A
/// full-outage window stalls flows without panicking — they resume at
/// the scheduled recovery. Returns the outcome plus the engine's
/// [`FaultRunReport`] (stall seconds, events applied, last event time).
pub fn run_phase_with_faults(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    faults: &[FaultSpec],
) -> Result<(PhaseOutcome, FaultRunReport), FaultPhaseError> {
    assert!(
        !faults.is_empty(),
        "empty fault schedule: use run_phase for fault-free runs"
    );
    run_phase_impl(system, nodes, ppn, phase, None, faults, false)
        .map(|(o, r, _)| (o, r.expect("faulted run carries a report")))
}

/// [`run_phase_with_faults`] with telemetry: capacity-change events and
/// the stall window land in `recorder`'s utilization timelines and
/// Chrome trace.
pub fn run_phase_with_faults_traced(
    label: &str,
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    faults: &[FaultSpec],
    recorder: &mut Recorder,
) -> Result<(PhaseOutcome, FaultRunReport), FaultPhaseError> {
    assert!(
        !faults.is_empty(),
        "empty fault schedule: use run_phase_traced for fault-free runs"
    );
    run_phase_impl(
        system,
        nodes,
        ppn,
        phase,
        Some((recorder, label)),
        faults,
        false,
    )
    .map(|(o, r, _)| (o, r.expect("faulted run carries a report")))
}

/// Runs one phase while feeding flow/resource telemetry into
/// `recorder` (see [`crate::telemetry`]). The outcome is bit-identical
/// to [`run_phase`]'s — the recorder is a pure listener.
pub fn run_phase_traced(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    recorder: &mut Recorder,
) -> PhaseOutcome {
    let label = format!("{} {:?} {}x{}", system.name(), phase.op, nodes, ppn);
    run_phase_traced_labeled(&label, system, nodes, ppn, phase, recorder)
}

/// [`run_phase_traced`] with a caller-chosen phase label (job step
/// names, sweep cell ids...).
pub fn run_phase_traced_labeled(
    label: &str,
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    recorder: &mut Recorder,
) -> PhaseOutcome {
    match run_phase_impl(
        system,
        nodes,
        ppn,
        phase,
        Some((recorder, label)),
        &[],
        false,
    ) {
        Ok((outcome, _, _)) => outcome,
        Err(e) => unreachable!("fault-free run cannot fail fault resolution: {e}"),
    }
}

/// The shared phase executor. `chaos` forces the fault drive loop (and
/// capacity-evidence capture) even for an empty schedule; with `chaos`
/// false and no faults the pre-fault-injection loop runs untouched.
fn run_phase_impl(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    telemetry: Option<(&mut Recorder, &str)>,
    faults: &[FaultSpec],
    chaos: bool,
) -> Result<(PhaseOutcome, Option<FaultRunReport>, Option<ChaosEvidence>), FaultPhaseError> {
    phase.validate();
    assert!(nodes >= 1, "need at least one node");
    assert!(ppn >= 1, "need at least one rank per node");

    let mut net = FlowNet::new();
    // Attached before provisioning so the probe sees every resource
    // registration; it is a pure listener, so the provisioned network
    // and everything downstream are bit-identical either way.
    let probe = telemetry.is_some().then(|| FlowLogHandle::attach(&mut net));
    let prov = system.provision_classed(&mut net, nodes, ppn, phase, &PlanOptions::auto(faults));
    assert_eq!(
        prov.client_nodes(),
        nodes as usize,
        "{}: provision covered {} client nodes out of {}",
        system.name(),
        prov.client_nodes(),
        nodes
    );

    // Per-stream ceiling with per-op latency folded in. Each rank is a
    // blocking requester, so its peak rate is one-operation-at-a-time.
    // Shared-file (N-1) runs additionally pay lock/consistency traffic
    // per operation — the "contention, file locking and metadata
    // overhead" that §IV.C.1 gives for preferring N-N. Lock hold times
    // grow with the number of ranks contending for ranges of one file.
    let lock_latency = shared_file_lock_latency(phase, nodes, ppn);
    let stream_cap = {
        let base = prov.effective_stream_bw(phase.transfer_size);
        if lock_latency > 0.0 && base.is_finite() && base > 0.0 {
            phase.transfer_size / (phase.transfer_size / base + lock_latency)
        } else if lock_latency > 0.0 {
            phase.transfer_size / lock_latency
        } else {
            base
        }
    };
    // Metadata cost: charged once per file per rank (N-N: one file each).
    let meta_cost = if phase.file_per_proc {
        prov.metadata_latency
    } else {
        // Shared file: opens amortize across the job; charge one rank.
        prov.metadata_latency / (nodes as f64 * ppn as f64)
    };

    if prov.classes.is_empty() {
        for (i, path) in prov.node_paths.iter().enumerate() {
            let mut spec = FlowSpec::new(path.clone(), phase.bytes_per_rank)
                .with_multiplicity(ppn)
                .with_tag(i as u64);
            if stream_cap.is_finite() && stream_cap > 0.0 {
                spec = spec.with_rate_cap(stream_cap);
            }
            net.add_flow(spec);
        }
    } else {
        // One weighted flow per equivalence class: multiplicity covers
        // every rank the class stands for, `represents` keeps the
        // flows-started tally per-node-equivalent, and the tag is the
        // class index (completion fans out to the members below). The
        // per-member rate cap is unchanged — `rate_cap` is a per-member
        // ceiling in the engine.
        for (i, class) in prov.classes.iter().enumerate() {
            let mut spec = FlowSpec::new(class.path.clone(), phase.bytes_per_rank)
                .with_multiplicity(class.members.len() as u32 * ppn)
                .with_represents(class.members.len() as u32)
                .with_tag(i as u64);
            if stream_cap.is_finite() && stream_cap > 0.0 {
                spec = spec.with_rate_cap(stream_cap);
            }
            net.add_flow(spec);
        }
    }

    // Steady-state snapshot with every rank active: which resource
    // binds? (Rate caps are per-flow constraints, not resources; if no
    // resource saturates, the streams themselves are the limit.)
    // Ties on the utilization ratio break toward the earliest resource
    // in provisioning order — client side first — so attribution is a
    // function of the deployment graph, not of iterator internals.
    let utilization = net.resource_utilization();
    let kind_of: std::collections::HashMap<usize, crate::graph::StageKind> = prov
        .stage_kinds
        .iter()
        .map(|(id, kind)| (id.index(), *kind))
        .collect();
    let mut best: Option<(usize, f64)> = None;
    for (i, (_, alloc, cap)) in utilization.iter().enumerate() {
        if *cap <= 0.0 {
            continue;
        }
        let ratio = alloc / cap;
        if ratio >= 0.99 && best.is_none_or(|(_, r)| ratio > r) {
            best = Some((i, ratio));
        }
    }
    let bottleneck = best.map(|(i, _)| Bottleneck {
        kind: *kind_of
            .get(&i)
            .unwrap_or_else(|| panic!("resource {} missing from stage_kinds", utilization[i].0)),
        name: utilization[i].0.clone(),
    });

    let mut per_node_end = vec![0.0_f64; nodes as usize];
    // In an aggregated plan a flow's tag is its class index and its
    // completion is every member's completion; expanded plans tag by
    // node directly.
    let classes = &prov.classes;
    let note_end = |per_node_end: &mut Vec<f64>, tag: u64, at: f64| {
        if classes.is_empty() {
            per_node_end[tag as usize] = at;
        } else {
            for &m in &classes[tag as usize].members {
                per_node_end[m as usize] = at;
            }
        }
    };
    let (fault_report, evidence) = if faults.is_empty() && !chaos {
        // The fault-free drive loop is untouched: bit-identical to
        // every pre-fault-injection release, as the differential tests
        // pin.
        net.run_to_completion(|_, c| {
            note_end(&mut per_node_end, c.tag, c.at);
        });
        (None, None)
    } else {
        let timeline = resolve_faults_planned(faults, &net, &prov)?;
        let entry = chaos.then(|| net.capacity_snapshot());
        let report = net
            .run_with_faults(&timeline, |_, c| {
                note_end(&mut per_node_end, c.tag, c.at);
            })
            .map_err(|e| FaultPhaseError::Stalled {
                at: e.at,
                starved: e.starved,
            })?;
        let evidence = entry.map(|entry_capacities| ChaosEvidence {
            entry_capacities,
            terminal_capacities: net.capacity_snapshot(),
            resolved_events: timeline.len(),
        });
        (Some(report), evidence)
    };

    let duration: f64 = per_node_end.iter().fold(0.0_f64, |a, &b| a.max(b)) + meta_cost;
    if let (Some((recorder, label)), Some(probe)) = (telemetry, probe) {
        recorder.absorb_phase(label, &probe.snapshot(), &prov.stage_kinds, duration);
    }
    let total_bytes = phase.total_bytes(nodes, ppn);
    Ok((
        PhaseOutcome {
            nodes,
            ppn,
            total_bytes,
            duration,
            agg_bandwidth: total_bytes / duration,
            per_node_duration: per_node_end.iter().map(|t| t + meta_cost).collect(),
            utilization,
            bottleneck,
        },
        fault_report,
        evidence,
    ))
}

/// Result of one open-loop phase run: throughput accounting plus the
/// per-operation latency distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenLoopOutcome {
    /// Client node count.
    pub nodes: u32,
    /// Ranks per node (provisioning scale; arrivals are per node).
    pub ppn: u32,
    /// Operations injected over the window (member-weighted under
    /// aggregation).
    pub ops_offered: u64,
    /// Operations completed (equals [`Self::ops_offered`] — the drive
    /// loop drains the backlog after the window closes).
    pub ops_completed: u64,
    /// Bytes transferred across all completed operations.
    pub total_bytes: f64,
    /// Simulated completion time of the last operation, seconds.
    pub end: f64,
    /// Achieved throughput: [`Self::total_bytes`] over [`Self::end`].
    pub agg_bandwidth: f64,
    /// Submit→finish latency of every operation (queueing during
    /// deferred admission and outage stalls included), merged across
    /// all client units with class multiplicity.
    pub histogram: LatencyHistogram,
    /// The engine's stall/event accounting for the run.
    pub report: FaultRunReport,
    /// Per-resource latency-blame attribution, present only when the
    /// run was asked to observe provenance. The probe is a pure
    /// listener, so every other field is bit-identical whether or not
    /// this one is populated.
    pub provenance: Option<ProvenanceMetrics>,
}

/// Runs one phase open loop: operations of `transfer_size` bytes are
/// injected at seeded inter-arrival times instead of every rank
/// re-issuing on completion, and the headline is the per-operation
/// latency distribution.
///
/// Each client node offers `rate / nodes` operations per second over
/// `duration` simulated seconds (gaps per the arrival discipline, one
/// independent substream per node unit). Under class aggregation one
/// member-equivalent schedule is drawn per class and every arrival
/// carries the class multiplicity, so each completion records
/// `members` observations — the merged histogram is the class-weighted
/// population. Provisioning, per-stream caps and the fault machinery
/// are exactly the closed-loop runner's: `faults` resolve against the
/// same planned graph and compose with the arrival schedule in one
/// deterministic drive loop.
///
/// # Panics
/// Panics on a `Closed` arrival (the executor validates specs first),
/// an invalid rate/duration, or a window so short it injects nothing.
///
/// With `provenance` set, a second pure-listener probe records every
/// op's exact latency decomposition (queueing + stall + per-resource
/// blame + ideal) and the outcome carries the aggregated
/// [`ProvenanceMetrics`]; every other field stays bit-identical to an
/// unobserved run.
pub fn run_phase_open_loop(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    arrival: &Arrival,
    faults: &[FaultSpec],
    telemetry: Option<(&mut Recorder, &str)>,
    provenance: bool,
) -> Result<OpenLoopOutcome, FaultPhaseError> {
    let Arrival::Open {
        rate,
        discipline,
        duration,
        seed,
    } = *arrival
    else {
        panic!("run_phase_open_loop needs an Open arrival spec");
    };
    arrival.check().expect("validated arrival spec");
    phase.validate();
    assert!(nodes >= 1, "need at least one node");
    assert!(ppn >= 1, "need at least one rank per node");

    let mut net = FlowNet::new();
    let probe = telemetry.is_some().then(|| FlowLogHandle::attach(&mut net));
    // The provenance probe stacks beside the flow log (both are pure
    // listeners), so --metrics and --provenance observe the same run.
    let blame_probe = provenance.then(|| ProvenanceHandle::attach(&mut net));
    let prov = system.provision_classed(&mut net, nodes, ppn, phase, &PlanOptions::auto(faults));
    assert_eq!(
        prov.client_nodes(),
        nodes as usize,
        "{}: provision covered {} client nodes out of {}",
        system.name(),
        prov.client_nodes(),
        nodes
    );

    // Same per-stream ceiling as the closed-loop runner: an operation
    // is one blocking transfer on one rank's stream.
    let lock_latency = shared_file_lock_latency(phase, nodes, ppn);
    let stream_cap = {
        let base = prov.effective_stream_bw(phase.transfer_size);
        if lock_latency > 0.0 && base.is_finite() && base > 0.0 {
            phase.transfer_size / (phase.transfer_size / base + lock_latency)
        } else if lock_latency > 0.0 {
            phase.transfer_size / lock_latency
        } else {
            base
        }
    };

    // One arrival stream per client unit — a node in an expanded plan,
    // a node-equivalence class in an aggregated one. Each unit offers
    // the per-node rate; a class arrival carries the class multiplicity
    // and records `members` observations per completion, so aggregated
    // and expanded decks describe the same offered load.
    let op_code = match phase.op {
        hcs_devices::IoOp::Write => 0,
        hcs_devices::IoOp::Read => 1,
    };
    let size_code = phase.transfer_size.max(1.0).log2().round() as u32;
    let unit_rate = rate / nodes as f64;
    let units: Vec<(Vec<ResourceId>, u32)> = if prov.classes.is_empty() {
        prov.node_paths.iter().map(|p| (p.clone(), 1)).collect()
    } else {
        prov.classes
            .iter()
            .map(|c| (c.path.clone(), c.members.len() as u32))
            .collect()
    };
    let arrival_rng = SimRng::new(seed);
    let mut arrivals: Vec<(f64, FlowSpec)> = Vec::new();
    let mut weights: Vec<u64> = Vec::with_capacity(units.len());
    let mut ops_offered = 0u64;
    for (unit, (path, members)) in units.iter().enumerate() {
        let mut rng = arrival_rng.split_idx("open-arrivals", unit as u64);
        let times =
            hcs_simkit::arrival_times(discipline.as_simkit(), unit_rate, duration, &mut rng);
        ops_offered += *members as u64 * times.len() as u64;
        weights.push(*members as u64);
        for t in times {
            let mut spec = FlowSpec::new(path.clone(), phase.transfer_size)
                .with_multiplicity(*members)
                .with_represents(*members)
                .with_tag(unit as u64)
                .with_op(op_code, size_code);
            if stream_cap.is_finite() && stream_cap > 0.0 {
                spec = spec.with_rate_cap(stream_cap);
            }
            arrivals.push((t, spec));
        }
    }
    assert!(
        ops_offered > 0,
        "open-loop window injected no operations (rate {rate} ops/s x {duration} s \
         across {nodes} nodes); increase the rate or the duration"
    );

    let timeline = resolve_faults_planned(faults, &net, &prov)?;
    let mut histogram = LatencyHistogram::new();
    let mut ops_completed = 0u64;
    let mut bytes = 0.0;
    let report = net
        .run_open_loop(arrivals, &timeline, |_, c| {
            let weight = weights[c.tag as usize];
            histogram.record_n(c.latency, weight);
            ops_completed += weight;
            bytes += weight as f64 * phase.transfer_size;
        })
        .map_err(|e| FaultPhaseError::Stalled {
            at: e.at,
            starved: e.starved,
        })?;

    let blame_log = blame_probe.map(|p| p.snapshot());
    if let (Some((recorder, label)), Some(probe)) = (telemetry, probe) {
        // Blame annotation spans share the phase's clock frame:
        // merge_events does not advance the clock, absorb_phase does.
        if let Some(log) = &blame_log {
            recorder.merge_events(&crate::telemetry::blame_spans(label, log));
        }
        recorder.absorb_phase(label, &probe.snapshot(), &prov.stage_kinds, report.end);
    }
    let provenance = blame_log
        .map(|log| ProvenanceMetrics::from_log(&log, histogram.p99().unwrap_or(0.0)));
    Ok(OpenLoopOutcome {
        nodes,
        ppn,
        ops_offered,
        ops_completed,
        total_bytes: bytes,
        end: report.end,
        agg_bandwidth: bytes / report.end,
        histogram,
        report,
        provenance,
    })
}

/// Extra per-operation latency paid by N-1 (shared-file) access.
///
/// Writers take extent locks on the shared file; with `r` ranks the
/// expected wait grows ~√r (lock queues lengthen while hold times stay
/// constant). Readers only pay a small alignment/consistency cost.
/// N-N runs pay nothing — which is why the paper benchmarks N-N.
fn shared_file_lock_latency(phase: &PhaseSpec, nodes: u32, ppn: u32) -> f64 {
    if phase.file_per_proc {
        return 0.0;
    }
    let ranks = (nodes as f64) * (ppn as f64);
    match phase.op {
        hcs_devices::IoOp::Write => 60e-6 * ranks.sqrt(),
        hcs_devices::IoOp::Read => 15e-6 * ranks.ln_1p(),
    }
}

/// Runs a phase `reps` times with the system's run-to-run noise applied
/// (shared-machine contention, §IV.C: tests are repeated 10 times).
///
/// Noise is a deterministic, seeded, mean-one multiplicative jitter on
/// each repetition's duration.
pub fn run_phase_repeated(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    reps: u32,
    rng: &mut SimRng,
) -> RepeatedOutcome {
    assert!(reps >= 1, "need at least one repetition");
    let base = run_phase(system, nodes, ppn, phase);
    jittered_outcome(system, &base, reps, rng)
}

/// [`run_phase_repeated`] with telemetry: the noise-free base run is
/// traced (noise is applied analytically afterwards, so repetitions add
/// no flow activity). Bandwidth draws are bit-identical to the untraced
/// variant's — the rng is consumed identically.
pub fn run_phase_repeated_traced(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    reps: u32,
    rng: &mut SimRng,
    recorder: &mut Recorder,
) -> RepeatedOutcome {
    assert!(reps >= 1, "need at least one repetition");
    let base = run_phase_traced(system, nodes, ppn, phase, recorder);
    jittered_outcome(system, &base, reps, rng)
}

/// [`run_phase_repeated`] under a fault schedule, with resilience
/// accounting against a fault-free twin.
///
/// The twin is the identical noise-free run without the schedule —
/// same system, same graph, same seeds — so the slowdown factor is an
/// exact like-for-like comparison. Noise is drawn from `rng` exactly as
/// in the fault-free executor (common random numbers), applied to the
/// faulted base duration.
pub fn run_phase_repeated_faulted(
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    faults: &[FaultSpec],
    reps: u32,
    rng: &mut SimRng,
) -> Result<(RepeatedOutcome, ResilienceMetrics), FaultPhaseError> {
    assert!(reps >= 1, "need at least one repetition");
    let twin = run_phase(system, nodes, ppn, phase);
    let (base, report) = run_phase_with_faults(system, nodes, ppn, phase, faults)?;
    let resilience = resilience_of(&twin, &base, &report);
    Ok((jittered_outcome(system, &base, reps, rng), resilience))
}

/// [`run_phase_repeated_faulted`] with telemetry: the *faulted* base
/// run is traced (the twin is not), so the recorder's utilization
/// timelines and Chrome trace show the outage/stall window.
#[allow(clippy::too_many_arguments)]
pub fn run_phase_repeated_faulted_traced(
    label: &str,
    system: &dyn StorageSystem,
    nodes: u32,
    ppn: u32,
    phase: &PhaseSpec,
    faults: &[FaultSpec],
    reps: u32,
    rng: &mut SimRng,
    recorder: &mut Recorder,
) -> Result<(RepeatedOutcome, ResilienceMetrics), FaultPhaseError> {
    assert!(reps >= 1, "need at least one repetition");
    let twin = run_phase(system, nodes, ppn, phase);
    let (base, report) =
        run_phase_with_faults_traced(label, system, nodes, ppn, phase, faults, recorder)?;
    let resilience = resilience_of(&twin, &base, &report);
    Ok((jittered_outcome(system, &base, reps, rng), resilience))
}

/// Folds a faulted run and its fault-free twin into the serializable
/// resilience record reports render.
fn resilience_of(
    twin: &PhaseOutcome,
    faulted: &PhaseOutcome,
    report: &FaultRunReport,
) -> ResilienceMetrics {
    ResilienceMetrics {
        slowdown_factor: faulted.duration / twin.duration,
        fault_free_seconds: twin.duration,
        faulted_seconds: faulted.duration,
        stall_seconds: report.stall_seconds,
        drain_seconds: report
            .last_event_at
            .map(|t| (report.end - t).max(0.0))
            .unwrap_or(0.0),
        fault_events: report.events_applied,
    }
}

/// Applies the system's run-to-run noise to a noise-free base outcome:
/// one mean-one multiplicative jitter draw per repetition.
fn jittered_outcome(
    system: &dyn StorageSystem,
    base: &PhaseOutcome,
    reps: u32,
    rng: &mut SimRng,
) -> RepeatedOutcome {
    let sigma = system.noise_sigma();
    let bandwidths: Vec<f64> = (0..reps)
        .map(|_| {
            let factor = rng.jitter_factor(sigma);
            base.total_bytes / (base.duration * factor)
        })
        .collect();
    RepeatedOutcome::from_bandwidths(base.nodes, base.ppn, bandwidths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::UniformSystem;
    use hcs_simkit::units::{GIB, MIB};

    #[test]
    fn single_node_hits_stream_cap_or_pool() {
        let sys = UniformSystem::new("toy", 100.0 * GIB).with_stream_bw(1.0 * GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let out = run_phase(&sys, 1, 1, &phase);
        // One rank, capped by the 1 GiB/s stream.
        assert!(out.agg_bandwidth <= 1.0 * GIB * 1.001);
        assert!(out.agg_bandwidth > 0.9 * GIB);
    }

    #[test]
    fn aggregate_saturates_at_pool() {
        let sys = UniformSystem::new("toy", 10.0 * GIB).with_stream_bw(1.0 * GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let small = run_phase(&sys, 4, 1, &phase);
        let big = run_phase(&sys, 64, 1, &phase);
        assert!(small.agg_bandwidth < 4.2 * GIB);
        assert!(
            (big.agg_bandwidth - 10.0 * GIB).abs() < 0.1 * GIB,
            "pool should saturate: {}",
            big.agg_bandwidth / GIB
        );
    }

    #[test]
    fn duration_uses_slowest_rank() {
        let sys = UniformSystem::new("toy", 10.0 * GIB);
        let phase = PhaseSpec::seq_read(MIB, GIB);
        let out = run_phase(&sys, 2, 2, &phase);
        let max = out.per_node_duration.iter().fold(0.0_f64, |a, &b| a.max(b));
        assert!((out.duration - max).abs() < 1e-9);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let sys = UniformSystem::new("toy", 10.0 * GIB);
        let phase = PhaseSpec::seq_read(MIB, GIB);
        let mut r1 = SimRng::new(7);
        let mut r2 = SimRng::new(7);
        let a = run_phase_repeated(&sys, 2, 4, &phase, 10, &mut r1);
        let b = run_phase_repeated(&sys, 2, 4, &phase, 10, &mut r2);
        assert_eq!(a.bandwidths, b.bandwidths);
        assert_eq!(a.summary.count, 10);
    }

    #[test]
    fn noise_is_mean_one_ish() {
        let sys = UniformSystem::new("toy", 10.0 * GIB);
        let phase = PhaseSpec::seq_read(MIB, GIB);
        let mut rng = SimRng::new(42);
        let rep = run_phase_repeated(&sys, 2, 4, &phase, 200, &mut rng);
        let base = run_phase(&sys, 2, 4, &phase).agg_bandwidth;
        assert!((rep.summary.mean / base - 1.0).abs() < 0.03);
    }

    #[test]
    fn shared_file_slower_than_file_per_proc() {
        // §IV.C.1: N-1 introduces contention/locking the paper avoids.
        let sys = UniformSystem::new("toy", 10_000.0 * GIB).with_stream_bw(GIB);
        let nn = PhaseSpec::seq_write(MIB, GIB);
        let mut n1 = nn.clone();
        n1.file_per_proc = false;
        let bw_nn = run_phase(&sys, 4, 16, &nn).agg_bandwidth;
        let bw_n1 = run_phase(&sys, 4, 16, &n1).agg_bandwidth;
        assert!(
            bw_n1 < 0.8 * bw_nn,
            "N-1 write contention: {bw_n1} vs {bw_nn}"
        );

        // And the gap widens with scale.
        let gap_small =
            run_phase(&sys, 1, 4, &n1).agg_bandwidth / run_phase(&sys, 1, 4, &nn).agg_bandwidth;
        let gap_large =
            run_phase(&sys, 16, 16, &n1).agg_bandwidth / run_phase(&sys, 16, 16, &nn).agg_bandwidth;
        assert!(gap_large < gap_small, "{gap_large} vs {gap_small}");
    }

    #[test]
    fn shared_file_reads_pay_little() {
        let sys = UniformSystem::new("toy", 10_000.0 * GIB).with_stream_bw(GIB);
        let nn = PhaseSpec::seq_read(MIB, GIB);
        let mut n1 = nn.clone();
        n1.file_per_proc = false;
        let bw_nn = run_phase(&sys, 4, 16, &nn).agg_bandwidth;
        let bw_n1 = run_phase(&sys, 4, 16, &n1).agg_bandwidth;
        assert!(
            bw_n1 > 0.85 * bw_nn,
            "reads barely contend: {bw_n1} vs {bw_nn}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let sys = UniformSystem::new("toy", GIB);
        run_phase(&sys, 0, 1, &PhaseSpec::seq_read(MIB, GIB));
    }

    #[test]
    fn outage_shifts_completion_by_exactly_the_window() {
        let sys = UniformSystem::new("toy", GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let twin = run_phase(&sys, 2, 4, &phase);
        let faults = [FaultSpec::outage(StageKind::ServerPool, 0.1, 0.35)];
        let (out, report) = run_phase_with_faults(&sys, 2, 4, &phase, &faults).unwrap();
        // Nothing moves during a full pool outage, so completion shifts
        // by the window width and the stall is the whole window.
        assert!((out.duration - (twin.duration + 0.25)).abs() < 1e-9);
        assert!((report.stall_seconds - 0.25).abs() < 1e-9);
        assert_eq!(report.events_applied, 2);
    }

    #[test]
    fn degradation_slows_without_stalling() {
        let sys = UniformSystem::new("toy", GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let twin = run_phase(&sys, 2, 4, &phase);
        let faults = [FaultSpec::degrade(StageKind::ServerPool, 0.1, 0.35, 0.5)];
        let (out, report) = run_phase_with_faults(&sys, 2, 4, &phase, &faults).unwrap();
        assert!(out.duration > twin.duration);
        assert!(out.duration < twin.duration + 0.25);
        assert_eq!(report.stall_seconds, 0.0);
    }

    #[test]
    fn repeated_faulted_reports_resilience_and_paired_noise() {
        let sys = UniformSystem::new("toy", GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let faults = [FaultSpec::outage(StageKind::ServerPool, 0.1, 0.35)];
        let mut r1 = SimRng::new(7);
        let (outcome, res) =
            run_phase_repeated_faulted(&sys, 2, 4, &phase, &faults, 10, &mut r1).unwrap();
        assert!(res.slowdown_factor > 1.0);
        assert!((res.faulted_seconds - (res.fault_free_seconds + 0.25)).abs() < 1e-9);
        assert!((res.stall_seconds - 0.25).abs() < 1e-9);
        assert_eq!(res.fault_events, 2);
        // Common random numbers: the faulted repetitions see the exact
        // noise stream of the fault-free twin, so every rep's ratio to
        // it is the same duration factor.
        let mut r2 = SimRng::new(7);
        let twin = run_phase_repeated(&sys, 2, 4, &phase, 10, &mut r2);
        for (f, t) in outcome.bandwidths.iter().zip(&twin.bandwidths) {
            let ratio = t / f;
            assert!((ratio - res.slowdown_factor).abs() < 1e-9, "{ratio}");
        }
    }

    #[test]
    fn fault_on_unplanned_stage_kind_is_a_typed_error() {
        let sys = UniformSystem::new("toy", GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let faults = [FaultSpec::outage(StageKind::Gateway, 0.1, 0.35)];
        let err = run_phase_with_faults(&sys, 2, 4, &phase, &faults).unwrap_err();
        match &err {
            FaultPhaseError::UnmatchedStage { stage, name } => {
                assert_eq!(*stage, StageKind::Gateway);
                assert!(name.is_none());
            }
            other => panic!("expected UnmatchedStage, got {other}"),
        }
        assert!(err.to_string().contains("no planned stage"));
    }

    #[test]
    fn invalid_fault_window_is_a_typed_error() {
        let sys = UniformSystem::new("toy", GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let faults = [FaultSpec::outage(StageKind::ServerPool, 3.0, 1.0)];
        let err = run_phase_with_faults(&sys, 2, 4, &phase, &faults).unwrap_err();
        assert!(matches!(err, FaultPhaseError::InvalidSpec(_)), "{err}");
    }

    #[test]
    fn per_node_stage_fault_fans_out_to_every_mount() {
        // A mount outage on a per-node stage must pause both nodes'
        // mounts (resource names "toy:mount0", "toy:mount1").
        let sys = UniformSystem::new("toy", 100.0 * GIB).with_node_bw(GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let twin = run_phase(&sys, 2, 4, &phase);
        let faults = [FaultSpec::outage(StageKind::ClientMount, 0.1, 0.3)];
        let (out, report) = run_phase_with_faults(&sys, 2, 4, &phase, &faults).unwrap();
        assert!((out.duration - (twin.duration + 0.2)).abs() < 1e-9);
        // Two mount resources, each with an outage + recovery event.
        assert_eq!(report.events_applied, 4);
    }

    #[test]
    fn open_loop_low_load_latency_is_the_service_time() {
        use crate::scenario::Discipline;
        let sys = UniformSystem::new("toy", 100.0 * GIB).with_stream_bw(GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let arrival = Arrival::Open {
            rate: 40.0,
            discipline: Discipline::Poisson,
            duration: 0.5,
            seed: 1,
        };
        let out = run_phase_open_loop(&sys, 2, 4, &phase, &arrival, &[], None, false).unwrap();
        assert!(out.ops_offered > 0);
        assert_eq!(out.ops_completed, out.ops_offered);
        assert_eq!(out.histogram.count(), out.ops_completed);
        // 1 MiB over a 1 GiB/s stream ≈ 0.98 ms; at 20 ops/s/node the
        // streams barely overlap, so even the tail sits near service
        // time (one bucket width of slack).
        let service = MIB / GIB;
        assert!(
            out.histogram.p50().unwrap() >= service * 0.9,
            "{:?}",
            out.histogram.p50()
        );
        assert!(
            out.histogram.p999().unwrap() < service * 3.0,
            "{:?}",
            out.histogram.p999()
        );
        assert!((out.total_bytes - out.ops_completed as f64 * MIB).abs() < 1.0);
        assert!(out.end > 0.0 && out.agg_bandwidth > 0.0);
    }

    #[test]
    fn open_loop_is_seed_deterministic() {
        use crate::scenario::Discipline;
        let sys = UniformSystem::new("toy", 10.0 * GIB).with_stream_bw(GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let arrival = Arrival::Open {
            rate: 200.0,
            discipline: Discipline::Poisson,
            duration: 0.3,
            seed: 7,
        };
        let a = run_phase_open_loop(&sys, 2, 4, &phase, &arrival, &[], None, false).unwrap();
        let b = run_phase_open_loop(&sys, 2, 4, &phase, &arrival, &[], None, false).unwrap();
        assert_eq!(a.histogram, b.histogram);
        assert_eq!(a.end.to_bits(), b.end.to_bits());
        let other = Arrival::Open {
            rate: 200.0,
            discipline: Discipline::Poisson,
            duration: 0.3,
            seed: 8,
        };
        let c = run_phase_open_loop(&sys, 2, 4, &phase, &other, &[], None, false).unwrap();
        assert_ne!(a.end.to_bits(), c.end.to_bits(), "seed matters");
    }

    #[test]
    fn open_loop_provenance_observes_without_perturbing() {
        use crate::scenario::Discipline;
        let sys = UniformSystem::new("toy", 10.0 * GIB).with_stream_bw(GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let arrival = Arrival::Open {
            rate: 400.0,
            discipline: Discipline::Poisson,
            duration: 0.3,
            seed: 5,
        };
        let plain = run_phase_open_loop(&sys, 2, 4, &phase, &arrival, &[], None, false).unwrap();
        let observed = run_phase_open_loop(&sys, 2, 4, &phase, &arrival, &[], None, true).unwrap();
        // The probe is a pure listener: every simulated value is
        // bit-identical with it attached.
        assert_eq!(plain.histogram, observed.histogram);
        assert_eq!(plain.end.to_bits(), observed.end.to_bits());
        assert_eq!(plain.report, observed.report);
        assert!(plain.provenance.is_none());
        let prov = observed.provenance.expect("provenance collected");
        assert_eq!(prov.ops, observed.ops_completed);
        // Weighted component sums reassemble total latency (per-op the
        // chain is bitwise exact; aggregation reorders additions, so
        // allow accumulated rounding only).
        let reassembled =
            prov.queueing_seconds + prov.stall_seconds + prov.blame_seconds + prov.ideal_seconds;
        assert!(
            (reassembled - prov.latency_seconds).abs() <= 1e-9 * prov.latency_seconds.max(1.0),
            "{reassembled} vs {}",
            prov.latency_seconds
        );
        // The tail threshold is the point's own p99.
        assert_eq!(
            prov.tail_threshold.to_bits(),
            observed.histogram.p99().unwrap().to_bits()
        );
        assert!(prov.tail_ops > 0 || prov.tail_threshold >= 0.0);
    }

    #[test]
    fn open_loop_outage_lifts_the_tail_and_bounds_the_stall() {
        use crate::scenario::Discipline;
        let sys = UniformSystem::new("toy", 100.0 * GIB).with_stream_bw(GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let arrival = Arrival::Open {
            rate: 100.0,
            discipline: Discipline::Poisson,
            duration: 0.5,
            seed: 3,
        };
        let clean = run_phase_open_loop(&sys, 2, 4, &phase, &arrival, &[], None, false).unwrap();
        let faults = [FaultSpec::outage(StageKind::ServerPool, 0.1, 0.3)];
        let faulted = run_phase_open_loop(&sys, 2, 4, &phase, &arrival, &faults, None, false).unwrap();
        // Same offered schedule, so the same population completes.
        assert_eq!(faulted.ops_completed, clean.ops_completed);
        // Ops caught by the 0.2 s outage wait it out: the tail grows by
        // roughly the window, and the all-stopped stall never exceeds it.
        assert!(
            faulted.histogram.p99().unwrap() > clean.histogram.p99().unwrap() + 0.1,
            "{:?} vs {:?}",
            faulted.histogram.p99(),
            clean.histogram.p99()
        );
        assert!(faulted.report.stall_seconds <= 0.2 + 1e-9);
        assert!(faulted.report.stall_seconds > 0.0);
        assert_eq!(faulted.report.events_applied, 2);
    }

    #[test]
    #[should_panic(expected = "needs an Open arrival spec")]
    fn open_loop_rejects_closed_arrival() {
        let sys = UniformSystem::new("toy", GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let _ = run_phase_open_loop(&sys, 1, 1, &phase, &Arrival::Closed, &[], None, false);
    }

    #[test]
    fn jitter_fault_resolves_to_steps_plus_recovery() {
        let sys = UniformSystem::new("toy", GIB);
        let phase = PhaseSpec::seq_write(MIB, GIB);
        let spec = FaultSpec {
            stage: StageKind::ServerPool,
            name: None,
            start: 0.1,
            end: 0.5,
            fault: FaultKind::Jitter {
                seed: 11,
                amplitude: 0.3,
                steps: 4,
            },
        };
        let (out, report) = run_phase_with_faults(&sys, 2, 4, &phase, &[spec]).unwrap();
        let twin = run_phase(&sys, 2, 4, &phase);
        // 4 slices + 1 recovery on the single pool resource.
        assert_eq!(report.events_applied, 5);
        // Mean-one flapping perturbs but does not wreck the run.
        assert!((out.duration / twin.duration - 1.0).abs() < 0.5);
        // And it is deterministic.
        let spec2 = FaultSpec {
            stage: StageKind::ServerPool,
            name: None,
            start: 0.1,
            end: 0.5,
            fault: FaultKind::Jitter {
                seed: 11,
                amplitude: 0.3,
                steps: 4,
            },
        };
        let (out2, _) = run_phase_with_faults(&sys, 2, 4, &phase, &[spec2]).unwrap();
        assert_eq!(out.duration.to_bits(), out2.duration.to_bits());
    }
}
