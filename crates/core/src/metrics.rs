//! Deck-native metrics: deterministic cross-repetition statistics and
//! the per-point observability bundle.
//!
//! The paper's conclusions are statistical claims over repetitions
//! ("who wins, by what factor, how consistently") backed by I/O-time
//! decomposition. This module carries both through the deck executor:
//!
//! * [`Stats`] — a deterministic accumulator over repetition
//!   observations. It stores the raw values, so `merge` is plain
//!   concatenation: `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` hold the same
//!   values in the same order and every derived figure (mean, stddev,
//!   percentiles) is bit-identical — the property that keeps
//!   [`DeckMetricsSummary`] stable across rayon worker counts.
//! * [`PointMetrics`] — one deck point's self-explanation: the
//!   workload's [`IoDecomposition`], perceived vs. system throughput,
//!   time-weighted bottleneck shares (the PR-2
//!   [`MetricsSummary`](crate::telemetry::MetricsSummary) attribution)
//!   and sim-engine counters (flow-solver rate epochs, flow groups,
//!   wall clock).
//! * [`DeckMetricsSummary`] / [`SystemMetrics`] — per-system roll-ups
//!   plus winner/factor/crossover extraction across a deck's sweep.
//!
//! Everything here is pure data + arithmetic: collection happens in the
//! deck executor (`hcs-experiments`), behind the existing recorder
//! hooks, so an un-metered run pays nothing.

use hcs_dftrace::IoDecomposition;
use serde::{Deserialize, Serialize};

use crate::telemetry::BottleneckShare;

/// Deterministic statistics accumulator over repetition observations.
///
/// Values are kept in insertion order; [`Stats::merge`] appends, so the
/// merged value sequence — and therefore every derived statistic — is
/// independent of how the observations were grouped before merging.
/// Repetition counts are small (the paper runs 10 reps), so storing the
/// sample is cheaper than defending a streaming accumulator's
/// determinism.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    values: Vec<f64>,
}

impl Stats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// An accumulator seeded with `values` (kept in the given order).
    pub fn from_values(values: Vec<f64>) -> Self {
        Stats { values }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Merges another accumulator into this one by concatenation —
    /// associative and order-stable at the bit level.
    pub fn merge(&mut self, other: &Stats) {
        self.values.extend_from_slice(&other.values);
    }

    /// The raw observations, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean (0 when empty), summed in insertion order.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation (0 with fewer than 2 values).
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Coefficient of variation (std/|mean|; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Smallest observation (0 when empty — infinities would not
    /// round-trip through JSON).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Linear-interpolation percentile, `p` in `[0, 100]` (0 when
    /// empty). Delegates to the suite's one shared percentile kernel
    /// ([`hcs_simkit::stats::percentile`]), so this layer and the
    /// simkit [`Summary`](hcs_simkit::Summary) are bit-identical by
    /// construction.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        hcs_simkit::stats::percentile(&self.values, p)
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// All derived statistics as one serializable record.
    pub fn summary(&self) -> StatsSummary {
        StatsSummary {
            count: self.count(),
            mean: self.mean(),
            std_dev: self.std_dev(),
            cv: self.cv(),
            min: self.min(),
            max: self.max(),
            p50: self.p50(),
            p95: self.p95(),
        }
    }
}

/// The derived statistics of a [`Stats`] sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (std/|mean|).
    pub cv: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

/// One deck point's observability bundle: decomposition, throughputs,
/// bottleneck attribution, cross-rep spread and sim-engine counters.
///
/// Collected only when metrics are requested (`hcs run --metrics`);
/// serialized with `skip_serializing_if` on the owning
/// `PointResult`, so result artifacts without metrics stay
/// byte-compatible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointMetrics {
    /// I/O-time decomposition of the point's (noise-free base) run —
    /// exact interval arithmetic for DLIO/replay (`hcs-dftrace`
    /// decompose), phase-level accounting for IOR/MDTest/job.
    pub decomposition: IoDecomposition,
    /// Seconds spent in read-side I/O phases.
    pub read_seconds: f64,
    /// Seconds spent in write-side I/O phases (checkpoints, creates,
    /// unlinks count as writes).
    pub write_seconds: f64,
    /// Application-perceived throughput (work over `|C| + |R \ C|`).
    pub perceived_throughput: f64,
    /// Storage-side throughput (work over `|R|`).
    pub system_throughput: f64,
    /// Unit of the two throughputs ("B/s", "samples/s", "ops/s").
    pub throughput_unit: String,
    /// The point's headline observable (mean over reps), in the units
    /// the workload family reports (bytes/s, samples/s, ops/s or
    /// seconds).
    pub headline_value: f64,
    /// Unit of [`Self::headline_value`] ("B/s", "samples/s", "ops/s",
    /// "s") — differs from [`Self::throughput_unit`] for families whose
    /// headline is a wall time.
    pub headline_unit: String,
    /// Whether a larger [`Self::headline_value`] is better (bandwidth
    /// and throughput: yes; job/replay wall time: no).
    pub higher_is_better: bool,
    /// Raw per-repetition headline observations, where the workload
    /// retains them (IOR keeps per-rep bandwidths; single-shot families
    /// hold one value).
    pub rep_values: Stats,
    /// Cross-repetition coefficient of variation of the headline (from
    /// raw reps where available, from the workload's own summary
    /// otherwise).
    pub rep_cv: f64,
    /// Time-weighted bottleneck shares, descending by seconds (the
    /// telemetry layer's attribution for this point's run).
    pub bottlenecks: Vec<BottleneckShare>,
    /// Flow-solver rate epochs the point's run triggered.
    pub solver_epochs: u64,
    /// Flow groups the point's run placed into the network.
    pub flow_groups: u64,
    /// Host wall-clock seconds spent executing the point. The only
    /// non-deterministic field — excluded from reports and from
    /// [`DeckMetricsSummary`] aggregation.
    pub wall_clock_seconds: f64,
    /// Resilience under the scenario's fault schedule, measured against
    /// a fault-free twin run. Present only for fault-injected points;
    /// skipped from serialization otherwise, so fault-free artifacts
    /// stay byte-compatible.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resilience: Option<ResilienceMetrics>,
}

/// How a fault-injected point degraded relative to its fault-free twin.
///
/// All durations are noise-free base-run times in simulated seconds;
/// the twin is the same scenario executed without its fault schedule,
/// so the comparison is exact (common seeds, common graph).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResilienceMetrics {
    /// Faulted duration over fault-free duration (≥ 1 for pure
    /// capacity-loss faults; jitter can land marginally below 1).
    pub slowdown_factor: f64,
    /// Base-run duration of the fault-free twin, seconds.
    pub fault_free_seconds: f64,
    /// Base-run duration under the fault schedule, seconds.
    pub faulted_seconds: f64,
    /// Seconds during which every in-flight flow sat at rate zero
    /// waiting for a scheduled recovery (the stall window the
    /// utilization timeline shows at zero).
    pub stall_seconds: f64,
    /// Time-to-drain: seconds from the last applied fault event (the
    /// recovery instant) to the end of the run.
    pub drain_seconds: f64,
    /// Number of capacity events the schedule applied before the run
    /// completed.
    pub fault_events: usize,
}

/// Per-system cross-rep roll-up inside a [`DeckMetricsSummary`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// System display label (one `by_system` group).
    pub system: String,
    /// Number of deck points in the group.
    pub points: usize,
    /// Per-point headline values, in sweep order.
    pub headline: Stats,
    /// Per-point cross-rep CVs, in sweep order.
    pub rep_cv: Stats,
    /// The resource that accumulated the most bottleneck seconds across
    /// the group's points, as "stage-label resource-name".
    pub top_bottleneck: Option<String>,
}

/// Deck-level verdict: per-system statistics plus winner / factor /
/// crossover extraction over the sweep.
///
/// Built from deterministic per-point fields only (never wall clock),
/// so it is bit-identical across rayon worker counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeckMetricsSummary {
    /// Unit of the headline values being compared.
    pub unit: String,
    /// Whether larger headline values win.
    pub higher_is_better: bool,
    /// One roll-up per `by_system` group, in sweep order.
    pub systems: Vec<SystemMetrics>,
    /// The system with the best mean headline (`None` for an empty
    /// deck).
    pub winner: Option<String>,
    /// Mean-headline advantage of the winner over the runner-up
    /// (always ≥ 1; exactly 1 with a single system).
    pub factor: f64,
    /// Sweep positions where the per-point winner changes, as
    /// "loser -> winner at point-name" descriptions (empty without a
    /// multi-system aligned sweep).
    pub crossovers: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_reference_values() {
        let s = Stats::from_values(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.p50() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_bit_identical_to_the_simkit_kernel() {
        // Both layers must answer percentile queries through the one
        // shared kernel — pinned by comparing raw bit patterns, not
        // approximate values, across unsorted and duplicated samples.
        let fixtures: [&[f64]; 4] = [
            &[3.0, 1.0, 2.0],
            &[9.0, 2.0, 4.0, 4.0, 5.0, 7.0, 5.0, 4.0],
            &[0.1],
            &[1e9, 1e-9, 5.5, 5.5, -3.25, 1e9],
        ];
        for values in fixtures {
            let stats = Stats::from_values(values.to_vec());
            let mut sorted = values.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            for p in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let ours = stats.percentile(p);
                let kernel = hcs_simkit::stats::percentile(values, p);
                let sorted_kernel = hcs_simkit::stats::percentile_sorted(&sorted, p);
                assert_eq!(ours.to_bits(), kernel.to_bits(), "p={p} {values:?}");
                assert_eq!(ours.to_bits(), sorted_kernel.to_bits(), "p={p} {values:?}");
            }
        }
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = Stats::new();
        for v in [
            s.mean(),
            s.std_dev(),
            s.cv(),
            s.min(),
            s.max(),
            s.p50(),
            s.p95(),
        ] {
            assert_eq!(v, 0.0);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn merge_is_concatenation() {
        let mut a = Stats::from_values(vec![1.0, 2.0]);
        let b = Stats::from_values(vec![3.0]);
        let c = Stats::from_values(vec![4.0, 5.0]);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        a.merge(&right_tail);
        assert_eq!(left, a);
        assert_eq!(left.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Stats::from_values(vec![10.0, 20.0, 30.0, 40.0]);
        assert!((s.percentile(50.0) - 25.0).abs() < 1e-12);
        assert!((s.percentile(100.0) - 40.0).abs() < 1e-12);
        assert!((s.percentile(0.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_serde_round_trip() {
        let s = Stats::from_values(vec![1.5, 2.5, 3.5]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Stats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.summary(), s.summary());
    }
}
