//! Deck-native metrics: deterministic cross-repetition statistics and
//! the per-point observability bundle.
//!
//! The paper's conclusions are statistical claims over repetitions
//! ("who wins, by what factor, how consistently") backed by I/O-time
//! decomposition. This module carries both through the deck executor:
//!
//! * [`Stats`] — a deterministic accumulator over repetition
//!   observations. It stores the raw values, so `merge` is plain
//!   concatenation: `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` hold the same
//!   values in the same order and every derived figure (mean, stddev,
//!   percentiles) is bit-identical — the property that keeps
//!   [`DeckMetricsSummary`] stable across rayon worker counts.
//! * [`PointMetrics`] — one deck point's self-explanation: the
//!   workload's [`IoDecomposition`], perceived vs. system throughput,
//!   time-weighted bottleneck shares (the PR-2
//!   [`MetricsSummary`](crate::telemetry::MetricsSummary) attribution)
//!   and sim-engine counters (flow-solver rate epochs, flow groups,
//!   wall clock).
//! * [`DeckMetricsSummary`] / [`SystemMetrics`] — per-system roll-ups
//!   plus winner/factor/crossover extraction across a deck's sweep.
//!
//! Everything here is pure data + arithmetic: collection happens in the
//! deck executor (`hcs-experiments`), behind the existing recorder
//! hooks, so an un-metered run pays nothing.

use hcs_dftrace::IoDecomposition;
use serde::{Deserialize, Serialize};

use crate::telemetry::BottleneckShare;

/// Deterministic statistics accumulator over repetition observations.
///
/// Values are kept in insertion order; [`Stats::merge`] appends, so the
/// merged value sequence — and therefore every derived statistic — is
/// independent of how the observations were grouped before merging.
/// Repetition counts are small (the paper runs 10 reps), so storing the
/// sample is cheaper than defending a streaming accumulator's
/// determinism.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    values: Vec<f64>,
}

impl Stats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// An accumulator seeded with `values` (kept in the given order).
    pub fn from_values(values: Vec<f64>) -> Self {
        Stats { values }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Merges another accumulator into this one by concatenation —
    /// associative and order-stable at the bit level.
    pub fn merge(&mut self, other: &Stats) {
        self.values.extend_from_slice(&other.values);
    }

    /// The raw observations, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean (0 when empty), summed in insertion order.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation (0 with fewer than 2 values).
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Coefficient of variation (std/|mean|; 0 when the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Smallest observation (0 when empty — infinities would not
    /// round-trip through JSON).
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Percentile of the sample, `p` in `[0, 100]` (0 when empty).
    ///
    /// This doc comment is the suite's single statement of its quantile
    /// conventions:
    ///
    /// * **`n == 1`** — the lone sample *is* every quantile: p50, p95
    ///   and p999 all return it directly, with no interpolation
    ///   branching (the nearest — indeed only — rank).
    /// * **`n > 1`** — the fractional rank `p/100 · (n−1)` is linearly
    ///   interpolated between its two nearest order statistics (the
    ///   type-7 / NumPy-default estimator).
    /// * **[`LatencyHistogram`]** answers the same queries bucketwise:
    ///   nearest-rank over cumulative integer bucket counts, reporting
    ///   the matched bucket's upper edge (a conservative tail bound).
    ///
    /// Delegates to the suite's one shared percentile kernel
    /// ([`hcs_simkit::stats::percentile`]), so this layer and the
    /// simkit [`Summary`](hcs_simkit::Summary) are bit-identical by
    /// construction.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        hcs_simkit::stats::percentile(&self.values, p)
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// All derived statistics as one serializable record.
    pub fn summary(&self) -> StatsSummary {
        StatsSummary {
            count: self.count(),
            mean: self.mean(),
            std_dev: self.std_dev(),
            cv: self.cv(),
            min: self.min(),
            max: self.max(),
            p50: self.p50(),
            p95: self.p95(),
        }
    }
}

/// The derived statistics of a [`Stats`] sample.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (std/|mean|).
    pub cv: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

/// Number of sub-buckets per power-of-two decade (HDR-style layout
/// with 5 significant bits: ≤ 1/32 ≈ 3.1 % relative bucket width).
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Log-bucketed fixed-point latency histogram with exact integer
/// counts (HDR-histogram style).
///
/// Latencies are quantized to **1 µs ticks** and bucketed with
/// [`SUB_BITS`] significant bits: ticks below 32 land in exact
/// width-1 buckets; above that, each power-of-two decade is split into
/// 32 sub-buckets, bounding relative bucket width by 1/32. Counts are
/// exact `u64` integers in a sparse sorted map, so [`merge`] is
/// bucketwise integer addition — associative, commutative and
/// bit-identical regardless of how recordings were grouped across
/// rayon workers. Quantile queries use nearest-rank over cumulative
/// counts and report the matched bucket's **upper edge** (see
/// [`Stats::percentile`] for the suite's quantile conventions).
///
/// [`merge`]: LatencyHistogram::merge
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Sparse bucket-index → count map (sorted, so serialization and
    /// iteration order are canonical).
    counts: std::collections::BTreeMap<u32, u64>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn ticks_of(seconds: f64) -> u64 {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "latency must be finite and non-negative: {seconds}"
        );
        (seconds * 1e6).round() as u64
    }

    fn bucket_index(ticks: u64) -> u32 {
        if ticks < SUB_BUCKETS {
            ticks as u32
        } else {
            let msb = 63 - ticks.leading_zeros();
            let decade = msb - SUB_BITS;
            let offset = ((ticks >> decade) - SUB_BUCKETS) as u32;
            (decade + 1) * SUB_BUCKETS as u32 + offset
        }
    }

    fn bucket_upper_ticks(index: u32) -> u64 {
        if u64::from(index) < SUB_BUCKETS {
            u64::from(index)
        } else {
            let decade = index / SUB_BUCKETS as u32 - 1;
            let offset = u64::from(index % SUB_BUCKETS as u32);
            let lower = (SUB_BUCKETS + offset) << decade;
            lower + ((1u64 << decade) - 1)
        }
    }

    /// Records one observation of `seconds`.
    ///
    /// # Panics
    /// Panics if `seconds` is negative or non-finite.
    pub fn record(&mut self, seconds: f64) {
        self.record_n(seconds, 1);
    }

    /// Records `n` identical observations of `seconds` — the
    /// aggregation path's primitive: an equivalence class of `m`
    /// members records its member-equivalent latency with count `m`,
    /// which is bit-identical to `m` separate [`record`] calls.
    ///
    /// [`record`]: LatencyHistogram::record
    pub fn record_n(&mut self, seconds: f64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(Self::ticks_of(seconds));
        *self.counts.entry(idx).or_insert(0) += n;
    }

    /// Merges `other` into `self` by bucketwise integer addition —
    /// associative, commutative and order-stable at the bit level.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (idx, n) in &other.counts {
            *self.counts.entry(*idx).or_insert(0) += n;
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.values().sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Nearest-rank percentile in seconds, `p` in `[0, 100]`: the upper
    /// edge of the bucket holding the `ceil(p/100 · count)`-th smallest
    /// observation (at least the 1st). `None` when the histogram is
    /// empty — an empty histogram has no quantiles, and the former
    /// 0-edge answer read as "an observation at zero latency".
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p / 100.0 * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (idx, n) in &self.counts {
            cumulative += n;
            if cumulative >= rank {
                return Some(Self::bucket_upper_ticks(*idx) as f64 / 1e6);
            }
        }
        unreachable!("rank {rank} not reached with total {total}");
    }

    /// Median (p50), seconds (`None` when empty).
    pub fn p50(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// 95th percentile, seconds (`None` when empty).
    pub fn p95(&self) -> Option<f64> {
        self.percentile(95.0)
    }

    /// 99th percentile, seconds (`None` when empty).
    pub fn p99(&self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// 99.9th percentile, seconds (`None` when empty).
    pub fn p999(&self) -> Option<f64> {
        self.percentile(99.9)
    }
}

/// Per-op-class, size-bucketed latency: one histogram for one
/// `(op class, transfer size)` combination of an open-loop point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpLatency {
    /// Operation class label ("write", "read").
    pub op: String,
    /// Transfer size bucket, bytes per operation.
    pub size_bytes: u64,
    /// Submit→finish latency histogram for this class (queueing
    /// included when admission was deferred).
    pub histogram: LatencyHistogram,
}

/// One stage's (resource's) slice of a point's latency blame.
///
/// Part of [`ProvenanceMetrics`]; all seconds and counts are weighted
/// by each op's expanded-equivalent group count, so aggregated runs
/// report the same totals as expanded ones.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageBlame {
    /// Resource (stage) name as registered in the flow network.
    pub resource: String,
    /// Contention seconds charged to this resource across all ops.
    pub blame_seconds: f64,
    /// Ops whose *dominant* blame component is this resource.
    pub ops_blamed: u64,
    /// Contention seconds charged to this resource by tail ops (ops
    /// whose latency exceeded [`ProvenanceMetrics::tail_threshold`]).
    pub tail_blame_seconds: f64,
    /// Submit→finish latency histogram of the ops dominated by this
    /// resource — the blame-conditioned histogram; merges bucketwise
    /// like every [`LatencyHistogram`].
    pub histogram: LatencyHistogram,
}

/// A point's aggregate latency provenance: where its ops' time went.
///
/// Built from the per-op exact decompositions the simkit provenance
/// probe records (queueing + stall + per-resource blame + ideal, the
/// shares summing bitwise to each op's measured latency) by weighted
/// summation in completion order — deterministic, so provenance
/// metrics are bit-identical across rayon worker counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceMetrics {
    /// Ops decomposed (expanded-equivalent count).
    pub ops: u64,
    /// Total measured submit→finish latency, seconds.
    pub latency_seconds: f64,
    /// Total submit→admission queueing delay, seconds.
    pub queueing_seconds: f64,
    /// Total rate-zero (fault stall) time, seconds.
    pub stall_seconds: f64,
    /// Total contention blame across all stages, seconds.
    pub blame_seconds: f64,
    /// Total ideal service time (ops running at full demand), seconds.
    pub ideal_seconds: f64,
    /// Per-stage blame breakdown, descending by blame seconds (ties
    /// alphabetically).
    pub stages: Vec<StageBlame>,
    /// Latency threshold classifying tail ops, seconds — the point's
    /// open-loop histogram p99.
    pub tail_threshold: f64,
    /// Ops above the threshold at the histogram's microsecond tick
    /// resolution (expanded-equivalent count).
    pub tail_ops: u64,
    /// Tail ops' queueing delay, seconds.
    pub tail_queueing_seconds: f64,
    /// Tail ops' stall time, seconds.
    pub tail_stall_seconds: f64,
    /// Tail ops' ideal service time, seconds.
    pub tail_ideal_seconds: f64,
}

impl ProvenanceMetrics {
    /// Aggregates a probe's per-op decompositions into the point-level
    /// record. `tail_threshold` (seconds) classifies tail ops — the
    /// caller passes the point's open-loop histogram p99. Every op is
    /// weighted by its expanded-equivalent group count; summation runs
    /// in completion order, so the result is deterministic.
    pub fn from_log(log: &hcs_simkit::ProvenanceLog, tail_threshold: f64) -> Self {
        struct Acc {
            blame_seconds: f64,
            ops_blamed: u64,
            tail_blame_seconds: f64,
            histogram: LatencyHistogram,
        }
        let mut out = ProvenanceMetrics {
            ops: 0,
            latency_seconds: 0.0,
            queueing_seconds: 0.0,
            stall_seconds: 0.0,
            blame_seconds: 0.0,
            ideal_seconds: 0.0,
            stages: Vec::new(),
            tail_threshold,
            tail_ops: 0,
            tail_queueing_seconds: 0.0,
            tail_stall_seconds: 0.0,
            tail_ideal_seconds: 0.0,
        };
        let mut stages: std::collections::BTreeMap<u32, Acc> = std::collections::BTreeMap::new();
        for op in &log.ops {
            let wn = op.groups as u64;
            let w = op.groups as f64;
            out.ops += wn;
            out.latency_seconds += w * op.latency;
            out.queueing_seconds += w * op.queueing;
            out.stall_seconds += w * op.stall;
            out.ideal_seconds += w * op.ideal;
            // Classify at the histogram's own tick resolution:
            // recorded latencies are rounded to the nearest
            // microsecond and the threshold is a bucket upper edge,
            // so comparing raw seconds would sweep a whole bucket of
            // ops into the tail whenever their sub-tick remainder
            // peeked past the edge.
            let is_tail =
                LatencyHistogram::ticks_of(op.latency) > LatencyHistogram::ticks_of(tail_threshold);
            if is_tail {
                out.tail_ops += wn;
                out.tail_queueing_seconds += w * op.queueing;
                out.tail_stall_seconds += w * op.stall;
                out.tail_ideal_seconds += w * op.ideal;
            }
            let mut dominant: Option<(u32, f64)> = None;
            for &(r, s) in &op.blame {
                out.blame_seconds += w * s;
                let e = stages.entry(r).or_insert_with(|| Acc {
                    blame_seconds: 0.0,
                    ops_blamed: 0,
                    tail_blame_seconds: 0.0,
                    histogram: LatencyHistogram::new(),
                });
                e.blame_seconds += w * s;
                if is_tail {
                    e.tail_blame_seconds += w * s;
                }
                // Blame entries are in ascending resource order, so a
                // strict `>` deterministically ties to the lowest index.
                if dominant.map_or(true, |(_, best)| s > best) {
                    dominant = Some((r, s));
                }
            }
            if let Some((r, _)) = dominant {
                let e = stages.get_mut(&r).expect("dominant stage accumulated");
                e.ops_blamed += wn;
                e.histogram.record_n(op.latency, wn);
            }
        }
        out.stages = stages
            .into_iter()
            .map(|(r, a)| StageBlame {
                resource: log
                    .resources
                    .get(r as usize)
                    .map(|(name, _)| name.clone())
                    .unwrap_or_else(|| format!("resource-{r}")),
                blame_seconds: a.blame_seconds,
                ops_blamed: a.ops_blamed,
                tail_blame_seconds: a.tail_blame_seconds,
                histogram: a.histogram,
            })
            .collect();
        out.stages.sort_by(|a, b| {
            b.blame_seconds
                .total_cmp(&a.blame_seconds)
                .then_with(|| a.resource.cmp(&b.resource))
        });
        out
    }

    /// Merges another point's provenance into this one: component
    /// seconds add, stages merge by resource name (histograms
    /// bucketwise), and tail tallies add — each op stays classified
    /// against its own point's threshold, of which the merged record
    /// keeps the largest. Deterministic regardless of merge grouping.
    pub fn merge(&mut self, other: &ProvenanceMetrics) {
        self.ops += other.ops;
        self.latency_seconds += other.latency_seconds;
        self.queueing_seconds += other.queueing_seconds;
        self.stall_seconds += other.stall_seconds;
        self.blame_seconds += other.blame_seconds;
        self.ideal_seconds += other.ideal_seconds;
        self.tail_threshold = self.tail_threshold.max(other.tail_threshold);
        self.tail_ops += other.tail_ops;
        self.tail_queueing_seconds += other.tail_queueing_seconds;
        self.tail_stall_seconds += other.tail_stall_seconds;
        self.tail_ideal_seconds += other.tail_ideal_seconds;
        for s in &other.stages {
            match self.stages.iter_mut().find(|m| m.resource == s.resource) {
                Some(m) => {
                    m.blame_seconds += s.blame_seconds;
                    m.ops_blamed += s.ops_blamed;
                    m.tail_blame_seconds += s.tail_blame_seconds;
                    m.histogram.merge(&s.histogram);
                }
                None => self.stages.push(s.clone()),
            }
        }
        self.stages.sort_by(|a, b| {
            b.blame_seconds
                .total_cmp(&a.blame_seconds)
                .then_with(|| a.resource.cmp(&b.resource))
        });
    }

    /// The blame share of each stage among tail ops: `(resource, tail
    /// blame seconds)` for stages that touched the tail, descending.
    pub fn tail_stages(&self) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .stages
            .iter()
            .filter(|s| s.tail_blame_seconds > 0.0)
            .map(|s| (s.resource.as_str(), s.tail_blame_seconds))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out
    }
}

/// One deck point's observability bundle: decomposition, throughputs,
/// bottleneck attribution, cross-rep spread and sim-engine counters.
///
/// Collected only when metrics are requested (`hcs run --metrics`);
/// serialized with `skip_serializing_if` on the owning
/// `PointResult`, so result artifacts without metrics stay
/// byte-compatible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointMetrics {
    /// I/O-time decomposition of the point's (noise-free base) run —
    /// exact interval arithmetic for DLIO/replay (`hcs-dftrace`
    /// decompose), phase-level accounting for IOR/MDTest/job.
    pub decomposition: IoDecomposition,
    /// Seconds spent in read-side I/O phases.
    pub read_seconds: f64,
    /// Seconds spent in write-side I/O phases (checkpoints, creates,
    /// unlinks count as writes).
    pub write_seconds: f64,
    /// Application-perceived throughput (work over `|C| + |R \ C|`).
    pub perceived_throughput: f64,
    /// Storage-side throughput (work over `|R|`).
    pub system_throughput: f64,
    /// Unit of the two throughputs ("B/s", "samples/s", "ops/s").
    pub throughput_unit: String,
    /// The point's headline observable (mean over reps), in the units
    /// the workload family reports (bytes/s, samples/s, ops/s or
    /// seconds).
    pub headline_value: f64,
    /// Unit of [`Self::headline_value`] ("B/s", "samples/s", "ops/s",
    /// "s") — differs from [`Self::throughput_unit`] for families whose
    /// headline is a wall time.
    pub headline_unit: String,
    /// Whether a larger [`Self::headline_value`] is better (bandwidth
    /// and throughput: yes; job/replay wall time: no).
    pub higher_is_better: bool,
    /// Raw per-repetition headline observations, where the workload
    /// retains them (IOR keeps per-rep bandwidths; single-shot families
    /// hold one value).
    pub rep_values: Stats,
    /// Cross-repetition coefficient of variation of the headline (from
    /// raw reps where available, from the workload's own summary
    /// otherwise).
    pub rep_cv: f64,
    /// Time-weighted bottleneck shares, descending by seconds (the
    /// telemetry layer's attribution for this point's run).
    pub bottlenecks: Vec<BottleneckShare>,
    /// Flow-solver rate epochs the point's run triggered.
    pub solver_epochs: u64,
    /// Flow groups the point's run placed into the network.
    pub flow_groups: u64,
    /// Host wall-clock seconds spent executing the point. The only
    /// non-deterministic field — excluded from reports and from
    /// [`DeckMetricsSummary`] aggregation.
    pub wall_clock_seconds: f64,
    /// Resilience under the scenario's fault schedule, measured against
    /// a fault-free twin run. Present only for fault-injected points;
    /// skipped from serialization otherwise, so fault-free artifacts
    /// stay byte-compatible.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resilience: Option<ResilienceMetrics>,
    /// Per-op-class latency histograms. Present only for open-loop
    /// points; skipped from serialization otherwise, so closed-loop
    /// artifacts stay byte-compatible.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub latency: Vec<OpLatency>,
    /// Per-resource latency-blame attribution (opt-in `hcs run
    /// --provenance`). Present only for provenance-enabled open-loop
    /// points; skipped from serialization otherwise, so existing
    /// artifacts stay byte-compatible.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub provenance: Option<ProvenanceMetrics>,
}

/// How a fault-injected point degraded relative to its fault-free twin.
///
/// All durations are noise-free base-run times in simulated seconds;
/// the twin is the same scenario executed without its fault schedule,
/// so the comparison is exact (common seeds, common graph).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResilienceMetrics {
    /// Faulted duration over fault-free duration (≥ 1 for pure
    /// capacity-loss faults; jitter can land marginally below 1).
    pub slowdown_factor: f64,
    /// Base-run duration of the fault-free twin, seconds.
    pub fault_free_seconds: f64,
    /// Base-run duration under the fault schedule, seconds.
    pub faulted_seconds: f64,
    /// Seconds during which every in-flight flow sat at rate zero
    /// waiting for a scheduled recovery (the stall window the
    /// utilization timeline shows at zero).
    pub stall_seconds: f64,
    /// Time-to-drain: seconds from the last applied fault event (the
    /// recovery instant) to the end of the run.
    pub drain_seconds: f64,
    /// Number of capacity events the schedule applied before the run
    /// completed.
    pub fault_events: usize,
}

/// Per-system cross-rep roll-up inside a [`DeckMetricsSummary`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// System display label (one `by_system` group).
    pub system: String,
    /// Number of deck points in the group.
    pub points: usize,
    /// Per-point headline values, in sweep order.
    pub headline: Stats,
    /// Per-point cross-rep CVs, in sweep order.
    pub rep_cv: Stats,
    /// The resource that accumulated the most bottleneck seconds across
    /// the group's points, as "stage-label resource-name".
    pub top_bottleneck: Option<String>,
}

/// Deck-level verdict: per-system statistics plus winner / factor /
/// crossover extraction over the sweep.
///
/// Built from deterministic per-point fields only (never wall clock),
/// so it is bit-identical across rayon worker counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeckMetricsSummary {
    /// Unit of the headline values being compared.
    pub unit: String,
    /// Whether larger headline values win.
    pub higher_is_better: bool,
    /// One roll-up per `by_system` group, in sweep order.
    pub systems: Vec<SystemMetrics>,
    /// The system with the best mean headline (`None` for an empty
    /// deck).
    pub winner: Option<String>,
    /// Mean-headline advantage of the winner over the runner-up
    /// (always ≥ 1; exactly 1 with a single system).
    pub factor: f64,
    /// Sweep positions where the per-point winner changes, as
    /// "loser -> winner at point-name" descriptions (empty without a
    /// multi-system aligned sweep).
    pub crossovers: Vec<String>,
    /// Per-system throughput–latency knee verdicts (empty unless the
    /// deck swept offered load with latency recording; skipped from
    /// serialization then, so closed-loop artifacts stay
    /// byte-compatible).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub knees: Vec<KneeVerdict>,
}

/// Where (if anywhere) a system's tail latency leaves its low-load
/// regime across an offered-load sweep.
///
/// The knee is the first sweep point whose merged p99 exceeds
/// `threshold ×` the first (lowest-load) point's p99 — the classic
/// throughput–latency saturation diagnostic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KneeVerdict {
    /// System display label (one `by_system` group).
    pub system: String,
    /// Multiplier `k` applied to the baseline p99.
    pub threshold: f64,
    /// p99 at the first (lowest-load) sweep point, seconds.
    pub baseline_p99: f64,
    /// Offered load of the baseline point, operations per second.
    pub baseline_rate: f64,
    /// Offered load at the knee (`None` when p99 never exceeded the
    /// threshold inside the sweep — the system never saturated).
    pub knee_rate: Option<f64>,
    /// Deck point name at the knee.
    pub knee_point: Option<String>,
    /// p99 at the knee, seconds.
    pub knee_p99: Option<f64>,
    /// The stage (resource) whose share of per-op latency blame grew
    /// most between the baseline point and the knee point — what the
    /// system saturated *on*. Present only when both points carried
    /// provenance metrics; skipped from serialization otherwise, so
    /// provenance-off artifacts stay byte-compatible.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub knee_blame: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_reference_values() {
        let s = Stats::from_values(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.p50() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_bit_identical_to_the_simkit_kernel() {
        // Both layers must answer percentile queries through the one
        // shared kernel — pinned by comparing raw bit patterns, not
        // approximate values, across unsorted and duplicated samples.
        let fixtures: [&[f64]; 4] = [
            &[3.0, 1.0, 2.0],
            &[9.0, 2.0, 4.0, 4.0, 5.0, 7.0, 5.0, 4.0],
            &[0.1],
            &[1e9, 1e-9, 5.5, 5.5, -3.25, 1e9],
        ];
        for values in fixtures {
            let stats = Stats::from_values(values.to_vec());
            let mut sorted = values.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            for p in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let ours = stats.percentile(p);
                let kernel = hcs_simkit::stats::percentile(values, p);
                let sorted_kernel = hcs_simkit::stats::percentile_sorted(&sorted, p);
                assert_eq!(ours.to_bits(), kernel.to_bits(), "p={p} {values:?}");
                assert_eq!(ours.to_bits(), sorted_kernel.to_bits(), "p={p} {values:?}");
            }
        }
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = Stats::new();
        for v in [
            s.mean(),
            s.std_dev(),
            s.cv(),
            s.min(),
            s.max(),
            s.p50(),
            s.p95(),
        ] {
            assert_eq!(v, 0.0);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn merge_is_concatenation() {
        let mut a = Stats::from_values(vec![1.0, 2.0]);
        let b = Stats::from_values(vec![3.0]);
        let c = Stats::from_values(vec![4.0, 5.0]);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        a.merge(&right_tail);
        assert_eq!(left, a);
        assert_eq!(left.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Stats::from_values(vec![10.0, 20.0, 30.0, 40.0]);
        assert!((s.percentile(50.0) - 25.0).abs() < 1e-12);
        assert!((s.percentile(100.0) - 40.0).abs() < 1e-12);
        assert!((s.percentile(0.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        // Pin the n=1 convention: the lone sample is returned for every
        // quantile, bit for bit — p50 == p95 == p999.
        let s = Stats::from_values(vec![42.5]);
        for p in [0.0, 50.0, 95.0, 99.9, 100.0] {
            assert_eq!(s.percentile(p).to_bits(), 42.5f64.to_bits(), "p={p}");
        }
    }

    #[test]
    fn histogram_small_ticks_are_exact() {
        let mut h = LatencyHistogram::new();
        for us in [0, 1, 17, 31] {
            h.record(us as f64 / 1e6);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile(0.0), Some(0.0));
        assert_eq!(h.percentile(100.0), Some(31.0 / 1e6));
        // Sub-32-tick buckets have width 1: values round-trip exactly.
        let mut one = LatencyHistogram::new();
        one.record(17e-6);
        assert_eq!(one.p50(), Some(17e-6));
        assert_eq!(one.p50(), one.p999());
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        // An empty histogram must answer None, never a 0-second edge
        // that reads as a real zero-latency observation.
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        for p in [0.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), None, "p={p}");
        }
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.p999(), None);
    }

    #[test]
    fn histogram_bucket_width_is_bounded() {
        // Above 32 ticks the reported upper edge exceeds the recorded
        // value by at most one bucket width (1/32 relative).
        for seconds in [33e-6, 1e-3, 0.0427, 1.5, 97.3] {
            let mut h = LatencyHistogram::new();
            h.record(seconds);
            let got = h.p50().expect("non-empty");
            assert!(got >= seconds - 1e-6, "{seconds} -> {got}");
            assert!(
                got <= seconds * (1.0 + 1.0 / 32.0) + 1e-6,
                "{seconds} -> {got}"
            );
        }
    }

    #[test]
    fn histogram_merge_is_bucketwise_addition() {
        let mut a = LatencyHistogram::new();
        a.record(5e-6);
        a.record(1e-3);
        let mut b = LatencyHistogram::new();
        b.record(5e-6);
        b.record_n(2.0, 3);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab.count(), 6);
        // record_n(x, m) ≡ m × record(x).
        let mut c = LatencyHistogram::new();
        for _ in 0..3 {
            c.record(2.0);
        }
        let mut d = LatencyHistogram::new();
        d.record_n(2.0, 3);
        assert_eq!(c, d);
    }

    #[test]
    fn histogram_percentiles_walk_the_tail() {
        let mut h = LatencyHistogram::new();
        h.record_n(1e-3, 99);
        h.record_n(1.0, 1);
        assert!(h.p50().unwrap() < 2e-3);
        assert!(h.p95().unwrap() < 2e-3);
        assert!(h.percentile(100.0).unwrap() >= 1.0);
        // The single 1 s outlier is exactly the 100th of 100 ranks, so
        // p99 still lands on the 99th (fast) observation.
        assert!(h.p99().unwrap() < 2e-3);
    }

    #[test]
    fn histogram_serde_round_trip() {
        let mut h = LatencyHistogram::new();
        h.record(3.7e-4);
        h.record_n(0.25, 7);
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn summary_serde_round_trip() {
        let s = Stats::from_values(vec![1.5, 2.5, 3.5]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Stats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.summary(), s.summary());
    }
}
