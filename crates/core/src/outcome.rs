//! Phase outcomes and repeated-run reports.

use std::fmt;

use serde::{Deserialize, Serialize};

use hcs_simkit::Summary;

use crate::graph::StageKind;

/// The binding constraint of a run, attributed to a deployment stage.
///
/// One vocabulary for everything downstream: `hcs explain` prints it,
/// trace replay retargets what-if questions with it, figure legends
/// label saturation with it. `kind` is the stage category (gateway,
/// server pool, media...); `name` is the specific resource ("vast:gw0").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bottleneck {
    /// Stage category of the saturated resource.
    pub kind: StageKind,
    /// Resource name, as provisioned.
    pub name: String,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind.label())
    }
}

/// The result of running one phase at one scale.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseOutcome {
    /// Client nodes in the run.
    pub nodes: u32,
    /// Ranks per node.
    pub ppn: u32,
    /// Total bytes moved.
    pub total_bytes: f64,
    /// Wall time of the slowest rank, seconds (IOR accounting: the
    /// benchmark's bandwidth is total data over the last finisher).
    pub duration: f64,
    /// Aggregate bandwidth, bytes/s.
    pub agg_bandwidth: f64,
    /// Per-node completion times, seconds.
    pub per_node_duration: Vec<f64>,
    /// Resource utilization at the start of the phase (steady state
    /// with every rank active): `(name, allocated, capacity)`.
    #[serde(default)]
    pub utilization: Vec<(String, f64, f64)>,
    /// The binding constraint: the most-utilized resource at steady
    /// state, when any resource is ≥99 % allocated. Ties break
    /// deterministically toward the earliest stage in the deployment
    /// graph (client side first).
    #[serde(default)]
    pub bottleneck: Option<Bottleneck>,
}

impl PhaseOutcome {
    /// Bandwidth seen per node, bytes/s.
    pub fn per_node_bandwidth(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.agg_bandwidth / self.nodes as f64
        }
    }
}

/// Bandwidths over repeated runs of the same configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RepeatedOutcome {
    /// Scale of the run.
    pub nodes: u32,
    /// Ranks per node.
    pub ppn: u32,
    /// Aggregate bandwidth per repetition, bytes/s.
    pub bandwidths: Vec<f64>,
    /// Summary over repetitions.
    pub summary: Summary,
}

impl RepeatedOutcome {
    /// Builds a repeated outcome from raw per-rep bandwidths.
    ///
    /// # Panics
    /// Panics if `bandwidths` is empty.
    pub fn from_bandwidths(nodes: u32, ppn: u32, bandwidths: Vec<f64>) -> Self {
        let summary = Summary::of(&bandwidths).expect("at least one repetition required");
        RepeatedOutcome {
            nodes,
            ppn,
            bandwidths,
            summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_bandwidth() {
        let o = PhaseOutcome {
            nodes: 4,
            ppn: 8,
            total_bytes: 4e9,
            duration: 1.0,
            agg_bandwidth: 4e9,
            per_node_duration: vec![1.0; 4],
            utilization: vec![],
            bottleneck: None,
        };
        assert_eq!(o.per_node_bandwidth(), 1e9);
    }

    #[test]
    fn repeated_outcome_summarizes() {
        let r = RepeatedOutcome::from_bandwidths(2, 4, vec![1e9, 2e9, 3e9]);
        assert_eq!(r.summary.count, 3);
        assert!((r.summary.mean - 2e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn empty_reps_rejected() {
        RepeatedOutcome::from_bandwidths(1, 1, vec![]);
    }
}
