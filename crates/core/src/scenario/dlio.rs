//! DLIO workload configurations.
//!
//! Lives in the core scenario IR (rather than in `hcs-dlio`) so that a
//! [`crate::scenario::Scenario`] can embed a DLIO workload without the
//! core crate depending on the pipeline simulator; `hcs-dlio`
//! re-exports these types and owns the execution engine.

use serde::{Deserialize, Serialize};

use crate::phase::PhaseSpec;
use hcs_devices::AccessPattern;

/// How the dataset scales with node count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scaling {
    /// Dataset grows with nodes: every node trains `samples` of its
    /// own (the paper's ResNet-50 test, §VI.B).
    Weak,
    /// Fixed dataset of `samples` split across nodes (the paper's
    /// Cosmoflow test, chosen "due to the larger size of this
    /// application's dataset", §VI).
    Strong,
}

/// A DLIO benchmark configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DlioConfig {
    /// Workload name ("ResNet-50", "Cosmoflow").
    pub name: String,
    /// Framework label for reports ("PyTorch", "TensorFlow").
    pub framework: String,
    /// Dataset sample count (per node for weak scaling, total for
    /// strong scaling).
    pub samples: u64,
    /// Bytes per sample.
    pub sample_bytes: f64,
    /// Bytes per read call while consuming a sample.
    pub transfer_size: f64,
    /// Whether each sample is its own file (JPEG-per-sample pays a
    /// metadata open per fetch; TFRecord shards amortize opens away).
    pub file_per_sample: bool,
    /// Access pattern the sample fetches present to storage: shuffled
    /// JPEG loading is random; TFRecord shard streaming is sequential.
    pub pattern: AccessPattern,
    /// Scaling mode.
    pub scaling: Scaling,
    /// Training epochs (the dataset is re-read every epoch).
    pub epochs: u32,
    /// Samples per training step.
    pub batch_size: u32,
    /// I/O pipeline worker threads per node.
    pub read_threads: u32,
    /// Compute threads per process (documentation; compute is modeled
    /// as a single accelerator stream).
    pub compute_threads: u32,
    /// Accelerator time per batch, seconds.
    pub compute_time_per_batch: f64,
    /// Bounded prefetch queue capacity (fetched + in-flight samples).
    pub prefetch_depth: u32,
    /// Synchronous checkpoint every N batches (0 disables). DLIO
    /// supports checkpointing; the paper's runs leave it off, so this
    /// is an extension knob.
    #[serde(default)]
    pub checkpoint_every_batches: u32,
    /// Bytes written per checkpoint.
    #[serde(default)]
    pub checkpoint_bytes: f64,
    /// RNG seed (noise and shuffles).
    pub seed: u64,
}

impl DlioConfig {
    /// Samples one node processes per epoch at the given scale.
    pub fn samples_per_node(&self, nodes: u32, node: u32) -> u64 {
        match self.scaling {
            Scaling::Weak => self.samples,
            Scaling::Strong => {
                let n = nodes as u64;
                let base = self.samples / n;
                let extra = self.samples % n;
                base + if (node as u64) < extra { 1 } else { 0 }
            }
        }
    }

    /// Total samples processed across all nodes and epochs.
    pub fn total_sample_reads(&self, nodes: u32) -> u64 {
        let per_epoch = match self.scaling {
            Scaling::Weak => self.samples * nodes as u64,
            Scaling::Strong => self.samples,
        };
        per_epoch * self.epochs as u64
    }

    /// The storage phase this workload presents (used to provision the
    /// storage system's resources).
    ///
    /// The working set is one epoch's dataset — epochs re-read the same
    /// bytes, so server-side caches see the dataset size, not
    /// `epochs ×` it. Client caches are defeated by the paper's
    /// methodology ("using a different set of nodes to read the dataset
    /// than the one that generated it", §VI.A), but server caches
    /// legitimately help — the ResNet-50 "served by GPFS's caches"
    /// observation (§VI.B).
    pub fn phase(&self, nodes: u32) -> PhaseSpec {
        let per_node_bytes = self.samples_per_node(nodes, 0).max(1) as f64 * self.sample_bytes;
        let base = match self.pattern {
            AccessPattern::Random => PhaseSpec::random_read(self.transfer_size, per_node_bytes),
            AccessPattern::Sequential => PhaseSpec::seq_read(self.transfer_size, per_node_bytes),
        };
        let meta_ops = if self.file_per_sample {
            // open + getattr + close per sample file.
            3.0 / self.sample_bytes
        } else {
            0.0
        };
        base.with_client_cache_defeated(false)
            .with_metadata_ops_per_byte(meta_ops)
    }

    /// The storage phase presented by checkpoint writes (sequential,
    /// buffered, 1 MiB transfers or the whole checkpoint if smaller).
    pub fn checkpoint_phase(&self) -> PhaseSpec {
        let ts = 1_048_576.0_f64.min(self.checkpoint_bytes.max(1.0));
        PhaseSpec::seq_write(ts, self.checkpoint_bytes.max(ts)).with_client_cache_defeated(false)
    }

    /// Enables synchronous checkpointing (builder style).
    pub fn with_checkpointing(mut self, every_batches: u32, bytes: f64) -> Self {
        self.checkpoint_every_batches = every_batches;
        self.checkpoint_bytes = bytes;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        assert!(self.samples >= 1, "need at least one sample");
        assert!(self.sample_bytes > 0.0, "sample bytes must be positive");
        assert!(self.transfer_size > 0.0, "transfer size must be positive");
        assert!(
            self.transfer_size <= self.sample_bytes,
            "transfer larger than sample"
        );
        assert!(self.epochs >= 1, "need at least one epoch");
        assert!(self.batch_size >= 1, "batch size must be positive");
        assert!(self.read_threads >= 1, "need at least one read thread");
        assert!(
            self.prefetch_depth >= self.batch_size,
            "prefetch queue must hold at least one batch"
        );
        assert!(
            self.compute_time_per_batch >= 0.0,
            "compute time must be non-negative"
        );
        if self.checkpoint_every_batches > 0 {
            assert!(
                self.checkpoint_bytes > 0.0,
                "checkpointing enabled but checkpoint_bytes is zero"
            );
        }
    }

    /// Shrinks the dataset (and epochs) for fast CI runs, preserving
    /// per-sample behaviour.
    pub fn smoke(mut self) -> Self {
        self.samples = self.samples.min(64);
        self.epochs = self.epochs.min(2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_weak() -> DlioConfig {
        DlioConfig {
            name: "toy".into(),
            framework: "PyTorch".into(),
            samples: 100,
            sample_bytes: 1e6,
            transfer_size: 1e6,
            file_per_sample: true,
            pattern: AccessPattern::Random,
            scaling: Scaling::Weak,
            epochs: 2,
            batch_size: 1,
            read_threads: 4,
            compute_threads: 4,
            compute_time_per_batch: 1e-3,
            prefetch_depth: 8,
            checkpoint_every_batches: 0,
            checkpoint_bytes: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn scaling_math() {
        let mut c = sample_weak();
        assert_eq!(c.samples_per_node(8, 3), 100);
        assert_eq!(c.total_sample_reads(8), 100 * 8 * 2);
        c.scaling = Scaling::Strong;
        let total: u64 = (0..3).map(|n| c.samples_per_node(3, n)).sum();
        assert_eq!(total, 100);
        assert_eq!(c.total_sample_reads(3), 100 * 2);
    }

    #[test]
    fn file_per_sample_charges_metadata() {
        let with = sample_weak().phase(2);
        let mut c = sample_weak();
        c.file_per_sample = false;
        let without = c.phase(2);
        assert!(with.metadata_ops_per_byte > 0.0);
        assert_eq!(without.metadata_ops_per_byte, 0.0);
    }

    #[test]
    #[should_panic(expected = "transfer larger than sample")]
    fn transfer_bigger_than_sample_rejected() {
        let mut c = sample_weak();
        c.transfer_size = c.sample_bytes * 2.0;
        c.validate();
    }

    #[test]
    fn smoke_shrinks() {
        let mut c = sample_weak();
        c.samples = 5000;
        c.epochs = 10;
        let s = c.smoke();
        assert_eq!(s.samples, 64);
        assert_eq!(s.epochs, 2);
        s.validate();
    }

    #[test]
    fn serde_round_trip() {
        let c = sample_weak();
        let back: DlioConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }
}
