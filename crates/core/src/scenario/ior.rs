//! IOR parameter sets.
//!
//! Lives in the core scenario IR (rather than in `hcs-ior`) so that a
//! [`crate::scenario::Scenario`] can embed an IOR workload without the
//! core crate depending on the benchmark runner; `hcs-ior` re-exports
//! these types and owns the execution engine.

use serde::{Deserialize, Serialize};

use crate::phase::PhaseSpec;
use hcs_simkit::units::MIB;

/// The paper's three workload classes (§IV.C.1), each an IOR access
/// mode: "Sequential write requests were used to simulate scientific
/// applications, sequential reads were used for data analytic
/// applications and random read requests for ML algorithms."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Bulk-synchronous checkpoint writes (CM1, HACC-I/O).
    Scientific,
    /// Embarrassingly parallel scans (BD-CATS, KMeans).
    DataAnalytics,
    /// Shuffled sample fetching (out-of-core sorting, training input).
    MachineLearning,
}

impl WorkloadClass {
    /// All three classes, in paper order.
    pub fn all() -> [WorkloadClass; 3] {
        [
            WorkloadClass::Scientific,
            WorkloadClass::DataAnalytics,
            WorkloadClass::MachineLearning,
        ]
    }

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Scientific => "scientific (seq write)",
            WorkloadClass::DataAnalytics => "data analytics (seq read)",
            WorkloadClass::MachineLearning => "ML (random read)",
        }
    }
}

/// An IOR run configuration (the subset of IOR-4.1.0 options the paper
/// exercises, with IOR's names).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IorConfig {
    /// Client nodes.
    pub nodes: u32,
    /// Tasks (ranks) per node.
    pub tasks_per_node: u32,
    /// `-b` block size: contiguous bytes a rank owns per segment.
    pub block_size: f64,
    /// `-t` transfer size: bytes per I/O call.
    pub transfer_size: f64,
    /// `-s` segment count.
    pub segments: u32,
    /// Workload class (selects write/read and sequential/random).
    pub workload: WorkloadClass,
    /// `-e` fsync after each write.
    pub fsync: bool,
    /// `-F` file-per-process (the paper always uses N-N).
    pub file_per_proc: bool,
    /// `-C` reorder tasks so ranks read data written by another node
    /// (defeats client read caches).
    pub reorder_tasks: bool,
    /// Repetitions (`-i`; the paper uses 10 on the shared machines).
    pub reps: u32,
    /// RNG seed for repetition noise.
    pub seed: u64,
}

impl IorConfig {
    /// The paper's scalability-test geometry (§V): 1 MiB block and
    /// transfer, 3,000 segments (≈2.9 GiB per rank; ≈126 GiB per node at
    /// 44 ppn), task reordering on, fsync off, 10 repetitions.
    pub fn paper_scalability(workload: WorkloadClass, nodes: u32, tasks_per_node: u32) -> Self {
        IorConfig {
            nodes,
            tasks_per_node,
            block_size: MIB,
            transfer_size: MIB,
            segments: 3000,
            workload,
            fsync: false,
            file_per_proc: true,
            reorder_tasks: true,
            reps: 10,
            seed: 0x1082_2024,
        }
    }

    /// The paper's single-node test (§V): one node, 1–32 processes,
    /// synchronization on writes.
    pub fn paper_single_node(workload: WorkloadClass, tasks: u32) -> Self {
        IorConfig {
            nodes: 1,
            tasks_per_node: tasks,
            fsync: true,
            ..Self::paper_scalability(workload, 1, tasks)
        }
    }

    /// A size-reduced variant for fast tests and CI (identical shape,
    /// fewer segments).
    pub fn smoke(workload: WorkloadClass, nodes: u32, tasks_per_node: u32) -> Self {
        IorConfig {
            segments: 64,
            reps: 3,
            ..Self::paper_scalability(workload, nodes, tasks_per_node)
        }
    }

    /// Bytes each rank moves.
    pub fn bytes_per_rank(&self) -> f64 {
        self.block_size * self.segments as f64
    }

    /// Total bytes the run moves.
    pub fn total_bytes(&self) -> f64 {
        self.bytes_per_rank() * self.nodes as f64 * self.tasks_per_node as f64
    }

    /// The measured phase this configuration describes.
    pub fn phase(&self) -> PhaseSpec {
        let base = match self.workload {
            WorkloadClass::Scientific => {
                PhaseSpec::seq_write(self.transfer_size, self.bytes_per_rank())
            }
            WorkloadClass::DataAnalytics => {
                PhaseSpec::seq_read(self.transfer_size, self.bytes_per_rank())
            }
            WorkloadClass::MachineLearning => {
                PhaseSpec::random_read(self.transfer_size, self.bytes_per_rank())
            }
        };
        let mut phase = base
            .with_fsync(self.fsync)
            .with_client_cache_defeated(self.reorder_tasks);
        phase.file_per_proc = self.file_per_proc;
        phase
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on inconsistent geometry.
    pub fn validate(&self) {
        assert!(self.nodes >= 1, "need at least one node");
        assert!(self.tasks_per_node >= 1, "need at least one task");
        assert!(self.reps >= 1, "need at least one repetition");
        assert!(
            self.transfer_size <= self.block_size,
            "IOR requires transferSize <= blockSize"
        );
        self.phase().validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_devices::{AccessPattern, IoOp};
    use hcs_simkit::units::GIB;

    #[test]
    fn paper_geometry_is_120gb_per_node() {
        let c = IorConfig::paper_scalability(WorkloadClass::Scientific, 1, 44);
        // §V: "approximately 120 GB per node".
        let per_node = c.bytes_per_rank() * 44.0;
        assert!((per_node / GIB - 128.9).abs() < 1.0, "{}", per_node / GIB);
        assert!(per_node > 120e9);
    }

    #[test]
    fn workload_to_phase_mapping() {
        let sci = IorConfig::smoke(WorkloadClass::Scientific, 1, 4).phase();
        assert_eq!(
            (sci.op, sci.pattern),
            (IoOp::Write, AccessPattern::Sequential)
        );
        let da = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4).phase();
        assert_eq!((da.op, da.pattern), (IoOp::Read, AccessPattern::Sequential));
        let ml = IorConfig::smoke(WorkloadClass::MachineLearning, 1, 4).phase();
        assert_eq!((ml.op, ml.pattern), (IoOp::Read, AccessPattern::Random));
    }

    #[test]
    fn single_node_preset_has_fsync() {
        let c = IorConfig::paper_single_node(WorkloadClass::Scientific, 32);
        assert!(c.fsync);
        assert_eq!(c.nodes, 1);
        assert!(c.phase().fsync);
    }

    #[test]
    fn reorder_controls_cache_defeat() {
        let mut c = IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 4);
        assert!(c.phase().client_cache_defeated);
        c.reorder_tasks = false;
        assert!(!c.phase().client_cache_defeated);
    }

    #[test]
    #[should_panic(expected = "transferSize <= blockSize")]
    fn oversized_transfer_rejected() {
        let mut c = IorConfig::smoke(WorkloadClass::Scientific, 1, 1);
        c.transfer_size = c.block_size * 2.0;
        c.validate();
    }

    #[test]
    fn serde_round_trip() {
        let c = IorConfig::paper_scalability(WorkloadClass::MachineLearning, 8, 48);
        let back: IorConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }
}
