//! The scenario IR: every workload, sweep and figure as declarative,
//! executable data.
//!
//! The paper is a measurement *campaign* — a cross-product of
//! {storage system × workload class × scale × repetitions} (§V–§VI).
//! PR 1 made deployments data ([`crate::graph::DeploymentGraph`]); this
//! module makes *experiments* data, the same move one layer up:
//!
//! * a [`Workload`] is any of the suite's five benchmark families with
//!   its full parameter set ([`IorConfig`], [`DlioConfig`],
//!   [`MdtestConfig`], [`crate::campaign::JobScript`],
//!   [`ReplayConfig`]);
//! * a [`Scenario`] binds a workload to a *named* storage deployment
//!   (resolved through the executor's system registry), an optional
//!   list of [`GraphEdit`]s (the serializable counterparts of PR 1's
//!   graph mutators), and optional scale overrides;
//! * a [`Deck`] is a scenario plus declarative [`SweepAxes`]
//!   (systems, node counts, processes per node, transfer sizes, edit
//!   sets) that [`Deck::expand`]s into a deterministic, duplicate-free
//!   list of scenario points.
//!
//! Everything here is plain serde-round-trippable data — the executor
//! (`hcs_experiments::deck::run_deck`) lives next to the storage
//! backends it must construct. Decks are the repo's equivalent of the
//! declarative campaign records log-analysis studies of production
//! storage operate on.

use serde::{Deserialize, Serialize};

use crate::campaign::JobScript;
use crate::graph::{DeploymentGraph, StageKind};
use hcs_netsim::TransportSpec;

pub mod dlio;
pub mod ior;
pub mod mdtest;
pub mod replay;

pub use dlio::{DlioConfig, Scaling};
pub use ior::{IorConfig, WorkloadClass};
pub use mdtest::MdtestConfig;
pub use replay::ReplayConfig;

/// Experiment scale: full paper geometry or a fast smoke variant for
/// tests and CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Paper geometry: 3,000 segments, 10 repetitions, full node lists.
    Paper,
    /// Reduced geometry: same shapes, minutes → seconds.
    Smoke,
    /// Datacenter geometry: open-ended node sweeps into the 10^5–10^7
    /// client range, runnable only because the planner compiles node
    /// equivalence classes instead of per-node resources.
    Datacenter,
}

impl Scale {
    /// Parses a CLI-style scale name.
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "paper" | "full" => Some(Scale::Paper),
            "smoke" | "ci" => Some(Scale::Smoke),
            "datacenter" | "dc" => Some(Scale::Datacenter),
            _ => None,
        }
    }

    /// The CLI-facing name.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Smoke => "smoke",
            Scale::Datacenter => "datacenter",
        }
    }

    /// IOR repetitions at this scale.
    pub fn reps(self) -> u32 {
        match self {
            Scale::Paper => 10,
            Scale::Smoke | Scale::Datacenter => 2,
        }
    }

    /// Node counts for the Lassen scalability sweep (full nodes,
    /// 44 ppn, up to 128 nodes — §V).
    pub fn lassen_nodes(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8, 16, 32, 64, 128],
            Scale::Smoke => vec![1, 4, 16, 64],
            Scale::Datacenter => vec![1_000, 10_000, 100_000, 1_000_000],
        }
    }

    /// Node counts for the Wombat scalability sweep (all 8 nodes,
    /// 48 ppn — §V).
    pub fn wombat_nodes(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8],
            Scale::Smoke => vec![1, 2, 4, 8],
            Scale::Datacenter => vec![1_000, 10_000, 100_000],
        }
    }

    /// Process counts for the single-node tests (§V: "scale the number
    /// of processes to 32").
    pub fn single_node_procs(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8, 16, 32],
            Scale::Smoke | Scale::Datacenter => vec![1, 4, 16, 32],
        }
    }

    /// Node counts for the ResNet-50 weak-scaling test (§VI.B: "to 32").
    pub fn resnet_nodes(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8, 16, 32],
            Scale::Smoke | Scale::Datacenter => vec![1, 4],
        }
    }

    /// Node counts for the Cosmoflow strong-scaling test.
    pub fn cosmoflow_nodes(self) -> Vec<u32> {
        match self {
            Scale::Paper => vec![1, 2, 4, 8, 16],
            Scale::Smoke | Scale::Datacenter => vec![1, 4],
        }
    }

    /// DLIO sample count override (`None` = paper dataset).
    pub fn dlio_samples(self) -> Option<u64> {
        match self {
            Scale::Paper => None,
            Scale::Smoke | Scale::Datacenter => Some(96),
        }
    }
}

/// A serializable deployment-graph edit — the data counterpart of the
/// PR 1 mutators ([`DeploymentGraph::widen_gateway`],
/// [`DeploymentGraph::swap_transport`],
/// [`DeploymentGraph::scale_pool`]). A scenario carries a list of these
/// and the executor applies them to every plan the named system
/// produces, so the paper's what-if questions ship as JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GraphEdit {
    /// Re-shard every gateway stage to `count` parallel gateways.
    WidenGateway {
        /// Number of parallel gateway shards.
        count: u32,
    },
    /// Multiply the capacity of every stage of `kind` by `factor`.
    ScalePool {
        /// Which stage kind to scale.
        kind: StageKind,
        /// Multiplicative factor (must be positive and finite).
        factor: f64,
    },
    /// Retarget the capacity of the stages of `kind` to an absolute
    /// value (bytes/s for bandwidth stages, ops/s for ops-rate stages).
    SetPoolCapacity {
        /// Which stage kind to retarget.
        kind: StageKind,
        /// New raw capacity.
        capacity: f64,
    },
    /// Swap the client transport (mount capacity, per-stream ceiling
    /// and metadata latency follow the new spec).
    SwapTransport {
        /// The replacement transport.
        transport: TransportSpec,
        /// Client NIC bandwidth clipping the connection pool, bytes/s.
        client_nic_bw: f64,
    },
}

impl GraphEdit {
    /// Applies the edit to a planned deployment graph.
    ///
    /// # Panics
    /// Panics if a [`GraphEdit::SetPoolCapacity`] names a stage kind
    /// the graph does not plan, or on a non-positive scale factor.
    pub fn apply(&self, graph: &mut DeploymentGraph) {
        match self {
            GraphEdit::WidenGateway { count } => graph.widen_gateway(*count),
            GraphEdit::ScalePool { kind, factor } => graph.scale_pool(*kind, *factor),
            GraphEdit::SetPoolCapacity { kind, capacity } => {
                let current = graph.capacity_of(*kind).unwrap_or_else(|| {
                    panic!(
                        "SetPoolCapacity: deployment plans no {} stage",
                        kind.label()
                    )
                });
                graph.scale_pool(*kind, capacity / current);
            }
            GraphEdit::SwapTransport {
                transport,
                client_nic_bw,
            } => graph.swap_transport(transport, *client_nic_bw),
        }
    }
}

/// One of the suite's five benchmark families, with its full parameter
/// set — the payload of a [`Scenario`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// The IOR-equivalent bandwidth benchmark.
    Ior(IorConfig),
    /// The DLIO-equivalent deep-learning I/O pipeline.
    Dlio(DlioConfig),
    /// The MDTest-equivalent metadata storm.
    Mdtest(MdtestConfig),
    /// A multi-step compute/I-O campaign.
    Job(JobScript),
    /// Trace-driven what-if replay.
    Replay(ReplayConfig),
}

impl Workload {
    /// Short family label ("ior", "dlio", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::Ior(_) => "ior",
            Workload::Dlio(_) => "dlio",
            Workload::Mdtest(_) => "mdtest",
            Workload::Job(_) => "job",
            Workload::Replay(_) => "replay",
        }
    }

    /// Validates the embedded configuration.
    ///
    /// # Panics
    /// Panics on inconsistent parameters (same contract as the configs'
    /// own `validate`).
    pub fn validate(&self) {
        match self {
            Workload::Ior(c) => c.validate(),
            Workload::Dlio(c) => c.validate(),
            Workload::Mdtest(c) => c.validate(),
            Workload::Job(j) => assert!(!j.steps.is_empty(), "job has no steps"),
            Workload::Replay(_) => {}
        }
    }

    /// Sets the transfer size where the family has one (IOR also grows
    /// its block size to stay valid; metadata and job workloads are
    /// unaffected).
    pub fn set_transfer_size(&mut self, transfer_size: f64) {
        match self {
            Workload::Ior(c) => {
                c.transfer_size = transfer_size;
                if c.block_size < transfer_size {
                    c.block_size = transfer_size;
                }
            }
            Workload::Dlio(c) => c.transfer_size = transfer_size,
            Workload::Replay(c) => c.transfer_size = Some(transfer_size),
            Workload::Mdtest(_) | Workload::Job(_) => {}
        }
    }

    /// A size-reduced variant for fast runs (same shape, less data) —
    /// what `--scale smoke` applies to a scenario file.
    pub fn smoked(mut self) -> Self {
        match &mut self {
            Workload::Ior(c) => {
                c.segments = c.segments.min(64);
                c.reps = c.reps.min(3);
            }
            Workload::Dlio(c) => {
                c.samples = c.samples.min(64);
                c.epochs = c.epochs.min(2);
            }
            Workload::Mdtest(c) => {
                c.files_per_proc = c.files_per_proc.min(200);
                c.reps = c.reps.min(3);
            }
            Workload::Job(_) | Workload::Replay(_) => {}
        }
        self
    }
}

/// What happens to a faulted stage inside its `[start, end)` window.
///
/// Serialized externally tagged like [`GraphEdit`]:
/// `"Outage"`, `{"Degrade": {"factor": 0.1}}`,
/// `{"Jitter": {"seed": 7, "amplitude": 0.5, "steps": 8}}`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Full outage: the stage's capacity drops to zero for the window.
    /// Flows through it stall (the engine waits — no panic) until the
    /// scheduled recovery at `end`.
    Outage,
    /// Partial degradation: capacity is scaled to `factor` times its
    /// provisioned value for the window.
    Degrade {
        /// Capacity multiplier in `(0, 1]` applied during the window.
        factor: f64,
    },
    /// Deterministic capacity flapping: the window is cut into `steps`
    /// equal slices, each scaled by a mean-one multiplicative jitter
    /// factor drawn from a stream split off `seed` (per-resource
    /// substreams, so sharded stages flap independently but
    /// reproducibly).
    Jitter {
        /// Seed of the jitter stream (independent of the workload's
        /// noise seed).
        seed: u64,
        /// Jitter amplitude: the sigma of the mean-one factor.
        amplitude: f64,
        /// Number of equal capacity slices in the window (≥ 1).
        steps: u32,
    },
}

/// A windowed fault against one deployment stage, as scenario IR.
///
/// The target is named the way bottlenecks are reported: by
/// [`StageKind`], optionally narrowed to a stage name. The executor
/// resolves the spec against the scenario's planned
/// [`DeploymentGraph`](crate::graph::DeploymentGraph) into concrete
/// timed capacity events (`hcs_simkit::FaultTimeline`); sharded and
/// per-node stages fan out to every member resource.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The stage kind to fault (every matching stage is hit).
    pub stage: StageKind,
    /// Optional stage-name filter (exact match on the planned stage
    /// name, e.g. `"gw-eth"`) for graphs with several stages of one
    /// kind.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub name: Option<String>,
    /// Window start, simulated seconds from phase start.
    pub start: f64,
    /// Window end (recovery instant), simulated seconds. Capacity is
    /// restored to the provisioned value at `end`.
    pub end: f64,
    /// What happens during the window.
    pub fault: FaultKind,
}

impl FaultSpec {
    /// A full outage of every `stage`-kind stage over `[start, end)`.
    pub fn outage(stage: StageKind, start: f64, end: f64) -> Self {
        FaultSpec {
            stage,
            name: None,
            start,
            end,
            fault: FaultKind::Outage,
        }
    }

    /// A capacity degradation to `factor` over `[start, end)`.
    pub fn degrade(stage: StageKind, start: f64, end: f64, factor: f64) -> Self {
        FaultSpec {
            stage,
            name: None,
            start,
            end,
            fault: FaultKind::Degrade { factor },
        }
    }

    /// Narrows the spec to stages with this exact planned name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Validates the window and the variant parameters, returning a
    /// one-line diagnostic on failure (the CLI prints it and exits 2).
    pub fn check(&self) -> Result<(), String> {
        if !(self.start.is_finite() && self.start >= 0.0) {
            return Err(format!(
                "fault on {} stage: start must be finite and >= 0 (got {})",
                self.stage.label(),
                self.start
            ));
        }
        if self.end == self.start {
            return Err(format!(
                "fault on {} stage: zero-length window [{}, {}) — end must be strictly after start",
                self.stage.label(),
                self.start,
                self.end
            ));
        }
        if !(self.end.is_finite() && self.end > self.start) {
            return Err(format!(
                "fault on {} stage: end must be finite and after start (got [{}, {}))",
                self.stage.label(),
                self.start,
                self.end
            ));
        }
        match self.fault {
            FaultKind::Outage => Ok(()),
            FaultKind::Degrade { factor } => {
                if factor.is_finite() && factor > 0.0 && factor < 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "fault on {} stage: Degrade factor must be in (0, 1) (got {factor}; factor 1 is a no-op — drop the fault or pick a factor below 1)",
                        self.stage.label()
                    ))
                }
            }
            FaultKind::Jitter {
                amplitude, steps, ..
            } => {
                if !(amplitude.is_finite() && amplitude > 0.0 && amplitude < 1.0) {
                    Err(format!(
                        "fault on {} stage: Jitter amplitude must be in (0, 1) (got {amplitude})",
                        self.stage.label()
                    ))
                } else if steps == 0 {
                    Err(format!(
                        "fault on {} stage: Jitter needs at least one step",
                        self.stage.label()
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Whether a planned stage with this kind and name is targeted.
    pub fn matches(&self, kind: StageKind, stage_name: &str) -> bool {
        self.stage == kind
            && self
                .name
                .as_deref()
                .map(|n| n == stage_name)
                .unwrap_or(true)
    }
}

/// How inter-arrival gaps of an open-loop schedule are drawn — the IR
/// counterpart of [`hcs_simkit::ArrivalDiscipline`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// Deterministic spacing: one arrival every `1/rate` seconds.
    FixedRate,
    /// Poisson process via inverse CDF over the seeded noise stream
    /// (the default — the memoryless arrival model latency studies
    /// assume).
    #[default]
    Poisson,
}

impl Discipline {
    /// The simkit discipline this IR value drives.
    pub fn as_simkit(self) -> hcs_simkit::ArrivalDiscipline {
        match self {
            Discipline::FixedRate => hcs_simkit::ArrivalDiscipline::FixedRate,
            Discipline::Poisson => hcs_simkit::ArrivalDiscipline::Poisson,
        }
    }
}

/// How operations are offered to the system.
///
/// `Closed` (the default) is the paper's regime: every rank re-issues
/// as soon as its previous operation completes, and the headline is
/// aggregate bandwidth. `Open` decouples offered load from service:
/// operations are injected at seeded deterministic inter-arrival
/// times and the headline becomes the per-operation latency
/// distribution. Serialized externally tagged (`"Closed"` or
/// `{"Open": {...}}`) and skipped when closed, so every pre-existing
/// scenario file and result artifact stays byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Arrival {
    /// Closed loop: ranks re-issue on completion (the existing
    /// `run_to_completion` pipeline, untouched).
    #[default]
    Closed,
    /// Open loop: operations arrive at `rate` ops/s for `duration`
    /// simulated seconds, gaps drawn per `discipline` from a stream
    /// seeded by `seed`.
    Open {
        /// Offered load, operations per second across the whole client
        /// population (must be finite and positive).
        rate: f64,
        /// Inter-arrival gap discipline.
        #[serde(default)]
        discipline: Discipline,
        /// Injection window length, simulated seconds (must be finite
        /// and positive).
        duration: f64,
        /// Seed of the arrival stream (independent of the workload's
        /// noise seed).
        #[serde(default)]
        seed: u64,
    },
}

impl Arrival {
    /// True for the closed-loop default (drives
    /// `skip_serializing_if`).
    pub fn is_closed(&self) -> bool {
        matches!(self, Arrival::Closed)
    }

    /// The arrival with its offered rate replaced — how the
    /// `offered_load` sweep axis fans one open-loop base out. Inert on
    /// `Closed` (deck validation rejects that combination).
    pub fn with_rate(self, rate: f64) -> Arrival {
        match self {
            Arrival::Closed => Arrival::Closed,
            Arrival::Open {
                discipline,
                duration,
                seed,
                ..
            } => Arrival::Open {
                rate,
                discipline,
                duration,
                seed,
            },
        }
    }

    /// Validates the spec, returning a one-line diagnostic on failure
    /// (the CLI prints it and exits 2).
    pub fn check(&self) -> Result<(), String> {
        match self {
            Arrival::Closed => Ok(()),
            Arrival::Open { rate, duration, .. } => {
                if !(rate.is_finite() && *rate > 0.0) {
                    return Err(format!(
                        "open-loop arrival rate must be finite and positive (got {rate})"
                    ));
                }
                if !(duration.is_finite() && *duration > 0.0) {
                    return Err(format!(
                        "open-loop duration must be finite and positive (got {duration})"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// One executable experiment point: a workload against a named storage
/// deployment, with optional graph edits and scale overrides.
///
/// The `system` string is resolved through the executor's system
/// registry (the same names `hcs systems` lists); `edits` are applied
/// to every deployment plan the system produces. The `Option` fields
/// override the corresponding workload-config fields when set, so one
/// base scenario can be fanned out by [`Deck::expand`] without
/// re-stating whole configs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Point label (filled by [`Deck::expand`]; free-form otherwise).
    #[serde(default)]
    pub name: String,
    /// Registry name of the storage deployment ("vast-lassen", "gpfs",
    /// ...).
    pub system: String,
    /// Graph edits applied on top of the system's deployment plan.
    #[serde(default)]
    pub edits: Vec<GraphEdit>,
    /// Windowed faults injected into the run (empty = fault-free; the
    /// field is skipped from serialization then, so existing scenario
    /// files and result artifacts stay byte-identical).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub faults: Vec<FaultSpec>,
    /// Arrival discipline: closed loop (default) or open loop at a
    /// fixed offered rate. Skipped from serialization when closed, so
    /// existing scenario files and result artifacts stay
    /// byte-identical.
    #[serde(default, skip_serializing_if = "Arrival::is_closed")]
    pub arrival: Arrival,
    /// The workload to run.
    pub workload: Workload,
    /// Client node count override.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub nodes: Option<u32>,
    /// Processes-per-node override.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub ppn: Option<u32>,
    /// When `ppn` is unset, use the machine's full-node process count
    /// from the registry (44 on Lassen, 48 on Wombat, ...).
    #[serde(default)]
    pub full_node: bool,
    /// Repetition-count override.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub reps: Option<u32>,
    /// Noise-seed override.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Request telemetry: the traced executor records this point's
    /// flows and resource timelines into the shared recorder.
    #[serde(default)]
    pub trace: bool,
}

impl Scenario {
    /// A scenario with no overrides.
    pub fn new(system: impl Into<String>, workload: Workload) -> Self {
        Scenario {
            name: String::new(),
            system: system.into(),
            edits: Vec::new(),
            faults: Vec::new(),
            arrival: Arrival::Closed,
            workload,
            nodes: None,
            ppn: None,
            full_node: false,
            reps: None,
            seed: None,
            trace: false,
        }
    }

    /// Sets the node-count override (builder style).
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Sets the ppn override (builder style).
    pub fn with_ppn(mut self, ppn: u32) -> Self {
        self.ppn = Some(ppn);
        self
    }

    /// Requests the machine's full-node process count (builder style).
    pub fn at_full_node(mut self) -> Self {
        self.full_node = true;
        self
    }

    /// Sets the repetition override (builder style).
    pub fn with_reps(mut self, reps: u32) -> Self {
        self.reps = Some(reps);
        self
    }

    /// Adds a fault to the scenario's schedule (builder style).
    pub fn with_fault(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the arrival discipline (builder style).
    pub fn with_arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// The ppn this scenario resolves to given the machine's full-node
    /// process count, if any override applies.
    fn resolved_ppn(&self, full_ppn: u32) -> Option<u32> {
        self.ppn
            .or(if self.full_node { Some(full_ppn) } else { None })
    }

    /// The workload with every scenario-level override folded into its
    /// configuration. `full_ppn` is the machine's full-node process
    /// count (consumed when [`Scenario::full_node`] is set).
    pub fn resolved_workload(&self, full_ppn: u32) -> Workload {
        let mut w = self.workload.clone();
        let ppn = self.resolved_ppn(full_ppn);
        match &mut w {
            Workload::Ior(c) => {
                if let Some(n) = self.nodes {
                    c.nodes = n;
                }
                if let Some(p) = ppn {
                    c.tasks_per_node = p;
                }
                if let Some(r) = self.reps {
                    c.reps = r;
                }
                if let Some(s) = self.seed {
                    c.seed = s;
                }
            }
            Workload::Mdtest(c) => {
                if let Some(n) = self.nodes {
                    c.nodes = n;
                }
                if let Some(p) = ppn {
                    c.tasks_per_node = p;
                }
                if let Some(r) = self.reps {
                    c.reps = r;
                }
                if let Some(s) = self.seed {
                    c.seed = s;
                }
            }
            Workload::Dlio(c) => {
                if let Some(s) = self.seed {
                    c.seed = s;
                }
            }
            Workload::Job(_) | Workload::Replay(_) => {}
        }
        w
    }

    /// Client node count the executor runs this scenario at.
    pub fn run_nodes(&self) -> u32 {
        self.nodes.unwrap_or(match &self.workload {
            Workload::Ior(c) => c.nodes,
            Workload::Mdtest(c) => c.nodes,
            Workload::Dlio(_) | Workload::Job(_) | Workload::Replay(_) => 1,
        })
    }

    /// Processes per node the executor runs this scenario at.
    pub fn run_ppn(&self, full_ppn: u32) -> u32 {
        self.resolved_ppn(full_ppn).unwrap_or(match &self.workload {
            Workload::Ior(c) => c.tasks_per_node,
            Workload::Mdtest(c) => c.tasks_per_node,
            Workload::Dlio(_) | Workload::Job(_) | Workload::Replay(_) => full_ppn,
        })
    }
}

/// Declarative sweep axes: each non-empty axis fans the base scenario
/// out over its values; empty axes leave the base untouched. The
/// cross-product is expanded in a fixed nesting order (systems → edit
/// sets → fault sets → nodes → ppn → transfer sizes) with
/// first-occurrence deduplication per axis, so expansion is
/// deterministic and duplicate-free by construction.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepAxes {
    /// Registry names to sweep.
    #[serde(default)]
    pub systems: Vec<String>,
    /// Node counts to sweep.
    #[serde(default)]
    pub nodes: Vec<u32>,
    /// Processes-per-node values to sweep.
    #[serde(default)]
    pub ppn: Vec<u32>,
    /// Transfer sizes (bytes) to sweep.
    #[serde(default)]
    pub transfer_sizes: Vec<f64>,
    /// Alternative graph-edit sets to sweep (each entry is appended to
    /// the base scenario's edits) — how ablations like the
    /// gateway-width sweep become one deck.
    #[serde(default)]
    pub edit_sets: Vec<Vec<GraphEdit>>,
    /// Alternative fault schedules to sweep (each entry is appended to
    /// the base scenario's faults) — outage/degradation what-ifs as a
    /// deck axis. An empty inner set is a valid fault-free twin point.
    /// Skipped from serialization when empty so pre-fault deck files
    /// round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub fault_sets: Vec<Vec<FaultSpec>>,
    /// Offered-load values (ops/s) to sweep — each rewrites the rate of
    /// the base scenario's open-loop [`Arrival`], so a latency-vs-load
    /// saturation study is one deck. Requires an open-loop base
    /// (`validate_deck` rejects the axis on a closed-loop scenario).
    /// Skipped from serialization when empty so pre-latency deck files
    /// round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub offered_load: Vec<f64>,
}

impl SweepAxes {
    /// True when every axis is empty (the deck is a single point).
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
            && self.nodes.is_empty()
            && self.ppn.is_empty()
            && self.transfer_sizes.is_empty()
            && self.edit_sets.is_empty()
            && self.fault_sets.is_empty()
            && self.offered_load.is_empty()
    }
}

/// A deck: one base scenario plus sweep axes — the declarative form of
/// a whole figure, ablation, or campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Deck {
    /// Deck name (doubles as the output artifact id).
    pub name: String,
    /// Human-readable description (figure title).
    #[serde(default)]
    pub title: String,
    /// The base scenario every point is derived from.
    pub base: Scenario,
    /// The sweep axes.
    #[serde(default)]
    pub axes: SweepAxes,
}

/// First-occurrence deduplication, preserving order.
fn dedup<T: PartialEq + Clone>(values: &[T]) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(values.len());
    for v in values {
        if !out.contains(v) {
            out.push(v.clone());
        }
    }
    out
}

impl Deck {
    /// A single-point deck around `base`.
    pub fn single(name: impl Into<String>, base: Scenario) -> Self {
        Deck {
            name: name.into(),
            title: String::new(),
            base,
            axes: SweepAxes::default(),
        }
    }

    /// Sets the title (builder style).
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// Expands the axes into concrete scenario points.
    ///
    /// Deterministic: the nesting order is systems → edit sets → fault
    /// sets → nodes → ppn → transfer sizes → offered load, each axis
    /// deduplicated to its first occurrences. Duplicate-free: every
    /// point differs from every other in at least one swept coordinate
    /// (encoded in its name).
    pub fn expand(&self) -> Vec<Scenario> {
        let systems = if self.axes.systems.is_empty() {
            vec![self.base.system.clone()]
        } else {
            dedup(&self.axes.systems)
        };
        let edit_sets: Vec<Option<(usize, &Vec<GraphEdit>)>> = if self.axes.edit_sets.is_empty() {
            vec![None]
        } else {
            dedup(&self.axes.edit_sets)
                .into_iter()
                .enumerate()
                .map(|(i, _)| (i, &self.axes.edit_sets[i]))
                .map(Some)
                .collect()
        };
        let fault_sets: Vec<Option<(usize, Vec<FaultSpec>)>> = if self.axes.fault_sets.is_empty() {
            vec![None]
        } else {
            dedup(&self.axes.fault_sets)
                .into_iter()
                .enumerate()
                .map(Some)
                .collect()
        };
        let nodes: Vec<Option<u32>> = if self.axes.nodes.is_empty() {
            vec![None]
        } else {
            dedup(&self.axes.nodes).into_iter().map(Some).collect()
        };
        let ppns: Vec<Option<u32>> = if self.axes.ppn.is_empty() {
            vec![None]
        } else {
            dedup(&self.axes.ppn).into_iter().map(Some).collect()
        };
        let transfers: Vec<Option<f64>> = if self.axes.transfer_sizes.is_empty() {
            vec![None]
        } else {
            dedup(&self.axes.transfer_sizes)
                .into_iter()
                .map(Some)
                .collect()
        };
        let rates: Vec<Option<f64>> = if self.axes.offered_load.is_empty() {
            vec![None]
        } else {
            dedup(&self.axes.offered_load)
                .into_iter()
                .map(Some)
                .collect()
        };

        let mut points = Vec::with_capacity(
            systems.len() * edit_sets.len() * fault_sets.len() * nodes.len() * ppns.len(),
        );
        for system in &systems {
            for edit_set in &edit_sets {
                for fault_set in &fault_sets {
                    for &n in &nodes {
                        for &p in &ppns {
                            for &ts in &transfers {
                                let mut s = self.base.clone();
                                let mut label = vec![system.clone()];
                                s.system = system.clone();
                                if let Some((i, edits)) = edit_set {
                                    s.edits.extend((*edits).clone());
                                    label.push(format!("e{i}"));
                                }
                                if let Some((i, faults)) = fault_set {
                                    s.faults.extend(faults.iter().cloned());
                                    label.push(format!("f{i}"));
                                }
                                if let Some(n) = n {
                                    s.nodes = Some(n);
                                    label.push(format!("n{n}"));
                                }
                                if let Some(p) = p {
                                    s.ppn = Some(p);
                                    label.push(format!("p{p}"));
                                }
                                for &rate in &rates {
                                    let mut s = s.clone();
                                    let mut label = label.clone();
                                    if let Some(ts) = ts {
                                        s.workload.set_transfer_size(ts);
                                        label.push(format!("t{ts}"));
                                    }
                                    if let Some(rate) = rate {
                                        s.arrival = s.arrival.with_rate(rate);
                                        label.push(format!("r{rate}"));
                                    }
                                    s.name = label.join("/");
                                    points.push(s);
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// The deck with its base workload shrunk for fast runs — what
    /// `hcs run --scale smoke` applies to a scenario file.
    pub fn smoked(mut self) -> Self {
        self.base.workload = self.base.workload.smoked();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ior_scenario() -> Scenario {
        Scenario::new(
            "vast-lassen",
            Workload::Ior(IorConfig::smoke(WorkloadClass::DataAnalytics, 1, 44)),
        )
    }

    #[test]
    fn scale_parses_and_labels() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::parse(Scale::Smoke.label()), Some(Scale::Smoke));
    }

    #[test]
    fn scales_differ() {
        assert!(Scale::Paper.lassen_nodes().len() > Scale::Smoke.lassen_nodes().len());
        assert_eq!(Scale::Paper.reps(), 10);
        assert!(Scale::Smoke.dlio_samples().is_some());
        assert_eq!(*Scale::Paper.lassen_nodes().last().unwrap(), 128);
        assert_eq!(*Scale::Paper.wombat_nodes().last().unwrap(), 8);
        assert_eq!(*Scale::Paper.single_node_procs().last().unwrap(), 32);
        assert_eq!(*Scale::Paper.resnet_nodes().last().unwrap(), 32);
    }

    #[test]
    fn overrides_fold_into_ior_config() {
        let mut s = ior_scenario().with_nodes(16).with_reps(5);
        s.seed = Some(99);
        s.full_node = true;
        match s.resolved_workload(44) {
            Workload::Ior(c) => {
                assert_eq!(c.nodes, 16);
                assert_eq!(c.tasks_per_node, 44);
                assert_eq!(c.reps, 5);
                assert_eq!(c.seed, 99);
            }
            _ => panic!("still an IOR workload"),
        }
        assert_eq!(s.run_nodes(), 16);
        assert_eq!(s.run_ppn(44), 44);
    }

    #[test]
    fn explicit_ppn_beats_full_node() {
        let s = ior_scenario().with_ppn(8).at_full_node();
        assert_eq!(s.run_ppn(44), 8);
    }

    #[test]
    fn unset_overrides_leave_config_alone() {
        let s = ior_scenario();
        assert_eq!(s.resolved_workload(44), s.workload);
        assert_eq!(s.run_nodes(), 1);
        assert_eq!(s.run_ppn(99), 44);
    }

    #[test]
    fn expansion_covers_cross_product_in_order() {
        let mut deck = Deck::single("d", ior_scenario());
        deck.axes.systems = vec!["vast-lassen".into(), "gpfs".into()];
        deck.axes.nodes = vec![1, 4];
        let points = deck.expand();
        assert_eq!(points.len(), 4);
        assert_eq!(
            points.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
            vec!["vast-lassen/n1", "vast-lassen/n4", "gpfs/n1", "gpfs/n4"]
        );
        assert_eq!(points[3].system, "gpfs");
        assert_eq!(points[3].nodes, Some(4));
    }

    #[test]
    fn expansion_dedups_axis_values() {
        let mut deck = Deck::single("d", ior_scenario());
        deck.axes.nodes = vec![1, 4, 1, 4, 2];
        let points = deck.expand();
        assert_eq!(
            points.iter().map(|p| p.nodes.unwrap()).collect::<Vec<_>>(),
            vec![1, 4, 2]
        );
    }

    #[test]
    fn empty_axes_yield_the_base_point() {
        let deck = Deck::single("d", ior_scenario());
        assert!(deck.axes.is_empty());
        let points = deck.expand();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].system, "vast-lassen");
        assert_eq!(points[0].nodes, None);
    }

    #[test]
    fn edit_sets_append_to_base_edits() {
        let mut base = ior_scenario();
        base.edits = vec![GraphEdit::WidenGateway { count: 2 }];
        let mut deck = Deck::single("d", base);
        deck.axes.edit_sets = vec![
            vec![GraphEdit::ScalePool {
                kind: StageKind::Gateway,
                factor: 2.0,
            }],
            vec![GraphEdit::ScalePool {
                kind: StageKind::Gateway,
                factor: 4.0,
            }],
        ];
        let points = deck.expand();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].edits.len(), 2);
        assert_eq!(points[0].name, "vast-lassen/e0");
        assert_eq!(points[1].name, "vast-lassen/e1");
    }

    #[test]
    fn transfer_axis_rewrites_workload() {
        let mut deck = Deck::single("d", ior_scenario());
        deck.axes.transfer_sizes = vec![4096.0, 4.0 * 1024.0 * 1024.0];
        let points = deck.expand();
        match &points[1].workload {
            Workload::Ior(c) => {
                assert_eq!(c.transfer_size, 4.0 * 1024.0 * 1024.0);
                assert!(c.block_size >= c.transfer_size, "stays valid");
                c.validate();
            }
            _ => panic!("ior workload"),
        }
    }

    #[test]
    fn smoked_workloads_shrink() {
        let w = Workload::Ior(IorConfig::paper_scalability(
            WorkloadClass::Scientific,
            4,
            44,
        ));
        match w.smoked() {
            Workload::Ior(c) => {
                assert_eq!(c.segments, 64);
                assert_eq!(c.reps, 3);
            }
            _ => unreachable!(),
        }
        let m = Workload::Mdtest(MdtestConfig::new(4, 16)).smoked();
        match m {
            Workload::Mdtest(c) => {
                assert_eq!(c.files_per_proc, 200);
                assert_eq!(c.reps, 3);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn scenario_serde_round_trip() {
        let mut s = ior_scenario().with_nodes(8).at_full_node();
        s.edits = vec![
            GraphEdit::WidenGateway { count: 4 },
            GraphEdit::SetPoolCapacity {
                kind: StageKind::Gateway,
                capacity: 5e10,
            },
        ];
        s.trace = true;
        let back: Scenario = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn deck_serde_round_trip() {
        let mut deck = Deck::single("fig", ior_scenario()).with_title("a title");
        deck.axes.systems = vec!["vast-lassen".into(), "nvme".into()];
        deck.axes.nodes = vec![1, 2, 4];
        deck.axes.transfer_sizes = vec![65536.0];
        let back: Deck = serde_json::from_str(&serde_json::to_string(&deck).unwrap()).unwrap();
        assert_eq!(back, deck);
        assert_eq!(back.expand(), deck.expand());
    }

    #[test]
    fn sparse_scenario_json_parses_with_defaults() {
        let json = r#"{
            "system": "gpfs",
            "workload": {"Mdtest": {"nodes": 2, "tasks_per_node": 4,
                                     "files_per_proc": 10, "reps": 2, "seed": 1}}
        }"#;
        let s: Scenario = serde_json::from_str(json).unwrap();
        assert_eq!(s.name, "");
        assert!(s.edits.is_empty());
        assert!(s.faults.is_empty());
        assert!(!s.full_node);
        assert!(!s.trace);
        assert_eq!(s.run_nodes(), 2);
    }

    #[test]
    fn fault_spec_serde_round_trips_every_kind() {
        let specs = vec![
            FaultSpec::outage(StageKind::Gateway, 1.0, 2.0),
            FaultSpec::degrade(StageKind::Media, 0.5, 3.5, 0.25).named("vast:media"),
            FaultSpec {
                stage: StageKind::ServerPool,
                name: None,
                start: 2.0,
                end: 4.0,
                fault: FaultKind::Jitter {
                    seed: 7,
                    amplitude: 0.5,
                    steps: 8,
                },
            },
        ];
        for spec in specs {
            let json = serde_json::to_string(&spec).unwrap();
            let back: FaultSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn fault_free_scenario_json_has_no_faults_key() {
        // Byte-compat: pre-fault scenario files and result artifacts
        // must serialize exactly as before this field existed.
        let json = serde_json::to_string(&ior_scenario()).unwrap();
        assert!(!json.contains("faults"), "{json}");
        let mut deck = Deck::single("d", ior_scenario());
        deck.axes.nodes = vec![1, 2];
        let deck_json = serde_json::to_string(&deck).unwrap();
        assert!(!deck_json.contains("fault_sets"), "{deck_json}");
    }

    #[test]
    fn faulted_scenario_round_trips_through_deck_json() {
        let mut deck = Deck::single(
            "d",
            ior_scenario().with_fault(FaultSpec::outage(StageKind::Gateway, 1.0, 2.0)),
        );
        deck.axes.fault_sets = vec![
            Vec::new(),
            vec![FaultSpec::degrade(StageKind::Media, 0.5, 1.5, 0.1)],
        ];
        let back: Deck = serde_json::from_str(&serde_json::to_string(&deck).unwrap()).unwrap();
        assert_eq!(back, deck);
        assert_eq!(back.expand(), deck.expand());
    }

    #[test]
    fn fault_sets_axis_expands_with_labels() {
        let mut deck = Deck::single("d", ior_scenario());
        deck.axes.fault_sets = vec![
            Vec::new(),
            vec![FaultSpec::outage(StageKind::Gateway, 1.0, 2.0)],
            vec![FaultSpec::degrade(StageKind::Media, 0.0, 5.0, 0.5)],
        ];
        let points = deck.expand();
        assert_eq!(points.len(), 3);
        assert_eq!(
            points.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
            vec!["vast-lassen/f0", "vast-lassen/f1", "vast-lassen/f2"]
        );
        assert!(points[0].faults.is_empty());
        assert_eq!(points[1].faults[0].fault, FaultKind::Outage);
        assert_eq!(
            points[2].faults[0].fault,
            FaultKind::Degrade { factor: 0.5 }
        );
    }

    #[test]
    fn fault_sets_append_to_base_faults() {
        let base = ior_scenario().with_fault(FaultSpec::outage(StageKind::Gateway, 1.0, 2.0));
        let mut deck = Deck::single("d", base);
        deck.axes.fault_sets = vec![vec![FaultSpec::degrade(StageKind::Media, 3.0, 4.0, 0.5)]];
        let points = deck.expand();
        assert_eq!(points[0].faults.len(), 2);
        assert_eq!(points[0].faults[0].fault, FaultKind::Outage);
    }

    #[test]
    fn fault_spec_check_rejects_bad_windows_and_params() {
        assert!(FaultSpec::outage(StageKind::Gateway, 1.0, 2.0)
            .check()
            .is_ok());
        assert!(FaultSpec::outage(StageKind::Gateway, -1.0, 2.0)
            .check()
            .is_err());
        let zero = FaultSpec::outage(StageKind::Gateway, 2.0, 2.0)
            .check()
            .unwrap_err();
        assert!(zero.contains("zero-length window"), "{zero}");
        assert!(FaultSpec::outage(StageKind::Gateway, 0.0, f64::INFINITY)
            .check()
            .is_err());
        assert!(FaultSpec::degrade(StageKind::Media, 0.0, 1.0, 0.0)
            .check()
            .is_err());
        assert!(FaultSpec::degrade(StageKind::Media, 0.0, 1.0, 1.5)
            .check()
            .is_err());
        // factor == 1.0 is a silent no-op that would inflate chaos
        // fault budgets without degrading anything: rejected.
        let noop = FaultSpec::degrade(StageKind::Media, 0.0, 1.0, 1.0)
            .check()
            .unwrap_err();
        assert!(noop.contains("no-op"), "{noop}");
        assert!(FaultSpec::degrade(StageKind::Media, 0.0, 1.0, 0.999)
            .check()
            .is_ok());
        let jitter = |amplitude, steps| FaultSpec {
            stage: StageKind::Fabric,
            name: None,
            start: 0.0,
            end: 1.0,
            fault: FaultKind::Jitter {
                seed: 1,
                amplitude,
                steps,
            },
        };
        assert!(jitter(0.5, 4).check().is_ok());
        assert!(jitter(1.0, 4).check().is_err());
        assert!(jitter(0.5, 0).check().is_err());
    }

    #[test]
    fn closed_scenario_json_has_no_arrival_key() {
        // Byte-compat: pre-latency scenario files and result artifacts
        // must serialize exactly as before this field existed.
        let json = serde_json::to_string(&ior_scenario()).unwrap();
        assert!(!json.contains("arrival"), "{json}");
        let mut deck = Deck::single("d", ior_scenario());
        deck.axes.nodes = vec![1, 2];
        let deck_json = serde_json::to_string(&deck).unwrap();
        assert!(!deck_json.contains("offered_load"), "{deck_json}");
    }

    #[test]
    fn arrival_serde_round_trips_and_defaults() {
        let open = Arrival::Open {
            rate: 500.0,
            discipline: Discipline::FixedRate,
            duration: 2.0,
            seed: 9,
        };
        let s = ior_scenario().with_arrival(open);
        let back: Scenario = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        // Sparse JSON: discipline and seed default (Poisson, 0).
        let json = r#"{"Open": {"rate": 100.0, "duration": 1.0}}"#;
        let a: Arrival = serde_json::from_str(json).unwrap();
        assert_eq!(
            a,
            Arrival::Open {
                rate: 100.0,
                discipline: Discipline::Poisson,
                duration: 1.0,
                seed: 0,
            }
        );
    }

    #[test]
    fn arrival_check_rejects_bad_rates_and_durations() {
        let open = |rate, duration| Arrival::Open {
            rate,
            discipline: Discipline::Poisson,
            duration,
            seed: 0,
        };
        assert!(Arrival::Closed.check().is_ok());
        assert!(open(100.0, 1.0).check().is_ok());
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let err = open(bad, 1.0).check().unwrap_err();
            assert!(
                err.contains("arrival rate must be finite and positive"),
                "{err}"
            );
            assert!(!err.contains('\n'), "one-line diagnostic: {err}");
        }
        for bad in [0.0, -1.0, f64::NAN] {
            let err = open(100.0, bad).check().unwrap_err();
            assert!(
                err.contains("duration must be finite and positive"),
                "{err}"
            );
        }
    }

    #[test]
    fn offered_load_axis_rewrites_open_arrivals() {
        let base = ior_scenario().with_arrival(Arrival::Open {
            rate: 1.0,
            discipline: Discipline::Poisson,
            duration: 2.0,
            seed: 3,
        });
        let mut deck = Deck::single("d", base);
        deck.axes.offered_load = vec![100.0, 400.0, 100.0];
        let points = deck.expand();
        assert_eq!(
            points.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
            vec!["vast-lassen/r100", "vast-lassen/r400"]
        );
        match points[1].arrival {
            Arrival::Open {
                rate,
                duration,
                seed,
                ..
            } => {
                assert_eq!(rate, 400.0);
                assert_eq!(duration, 2.0, "other fields preserved");
                assert_eq!(seed, 3);
            }
            Arrival::Closed => panic!("still open"),
        }
    }

    #[test]
    fn offered_load_axis_is_inert_on_a_closed_base() {
        // The executor's validate_deck rejects this combination; the
        // expander itself just leaves the arrival closed.
        let mut deck = Deck::single("d", ior_scenario());
        deck.axes.offered_load = vec![100.0];
        let points = deck.expand();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].arrival, Arrival::Closed);
        assert_eq!(points[0].name, "vast-lassen/r100");
    }

    #[test]
    fn fault_spec_matching_honors_kind_and_name() {
        let any_gw = FaultSpec::outage(StageKind::Gateway, 1.0, 2.0);
        assert!(any_gw.matches(StageKind::Gateway, "vast:gw"));
        assert!(!any_gw.matches(StageKind::Media, "vast:gw"));
        let named = any_gw.clone().named("vast:gw");
        assert!(named.matches(StageKind::Gateway, "vast:gw"));
        assert!(!named.matches(StageKind::Gateway, "other:gw"));
    }
}
