//! Trace-replay parameter sets.
//!
//! Lives in the core scenario IR (rather than in `hcs-replay`) so that
//! a [`crate::scenario::Scenario`] can embed a replay workload without
//! the core crate depending on the replay engine; `hcs-replay`
//! re-exports this type and owns the execution engine.

use serde::{Deserialize, Serialize};

/// Replay parameters.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Path of the Chrome-format source trace to replay. Only consumed
    /// by the scenario executor (`hcs run` / `run_deck`), which loads
    /// the trace before re-driving it; programmatic callers that
    /// already hold a parsed trace can leave it unset.
    pub trace: Option<String>,
    /// Request size used to provision the target system (the dominant
    /// transfer size of the trace; taken from the median read when not
    /// set).
    pub transfer_size: Option<f64>,
    /// Prefetch queue depth per process (defaults to 2× threads).
    pub prefetch_depth: Option<u32>,
    /// Whether each read opened its own file (pays the target system's
    /// per-file metadata latency). `None` infers it from the trace:
    /// sub-MiB requests are treated as file-per-sample datasets (JPEG
    /// folders), larger ones as shard streaming.
    pub file_per_read: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_inferred() {
        let c = ReplayConfig::default();
        assert_eq!(c.trace, None);
        assert_eq!(c.transfer_size, None);
        assert_eq!(c.prefetch_depth, None);
        assert_eq!(c.file_per_read, None);
    }

    #[test]
    fn serde_round_trip_tolerates_missing_keys() {
        let c = ReplayConfig {
            trace: Some("results/trace.json".into()),
            transfer_size: Some(1e6),
            prefetch_depth: None,
            file_per_read: Some(true),
        };
        let back: ReplayConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
        let sparse: ReplayConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(sparse, ReplayConfig::default());
    }
}
