//! MDTest parameter sets.
//!
//! Lives in the core scenario IR (rather than in `hcs-mdtest`) so that
//! a [`crate::scenario::Scenario`] can embed a metadata workload
//! without the core crate depending on the benchmark runner;
//! `hcs-mdtest` re-exports this type and owns the execution engine.

use serde::{Deserialize, Serialize};

/// An MDTest run configuration (the `-n` files-per-process,
/// file-per-process-directory layout).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MdtestConfig {
    /// Client nodes.
    pub nodes: u32,
    /// Ranks per node.
    pub tasks_per_node: u32,
    /// Files each rank creates/stats/unlinks (`-n`).
    pub files_per_proc: u32,
    /// Repetitions (`-i`).
    pub reps: u32,
    /// Noise seed.
    pub seed: u64,
}

impl MdtestConfig {
    /// A typical configuration: 1,000 files per process.
    pub fn new(nodes: u32, tasks_per_node: u32) -> Self {
        MdtestConfig {
            nodes,
            tasks_per_node,
            files_per_proc: 1000,
            reps: 10,
            seed: 0x3d7e_2024,
        }
    }

    /// Total operations per phase.
    pub fn total_ops(&self) -> f64 {
        self.files_per_proc as f64 * self.nodes as f64 * self.tasks_per_node as f64
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on zero-sized dimensions.
    pub fn validate(&self) {
        assert!(self.nodes >= 1, "need at least one node");
        assert!(self.tasks_per_node >= 1, "need at least one task");
        assert!(self.files_per_proc >= 1, "need at least one file");
        assert!(self.reps >= 1, "need at least one repetition");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_validation() {
        let c = MdtestConfig::new(4, 16);
        assert_eq!(c.total_ops(), 4.0 * 16.0 * 1000.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn zero_files_rejected() {
        let mut c = MdtestConfig::new(1, 1);
        c.files_per_proc = 0;
        c.validate();
    }

    #[test]
    fn serde_round_trip() {
        let c = MdtestConfig::new(8, 32);
        let back: MdtestConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }
}
