//! Workload phase descriptions.
//!
//! A *phase* is one homogeneous I/O activity performed by every rank of
//! a job: "each rank writes 3,000 one-MiB segments to its own file,
//! fsync after every write". The IOR crate builds phases from IOR
//! parameters; the DLIO crate builds per-sample read phases.

use serde::{Deserialize, Serialize};

use hcs_devices::{AccessPattern, IoOp};

/// One homogeneous I/O phase executed by every rank.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Direction.
    pub op: IoOp,
    /// Spatial pattern.
    pub pattern: AccessPattern,
    /// Bytes per individual operation.
    pub transfer_size: f64,
    /// Total bytes each rank moves in this phase.
    pub bytes_per_rank: f64,
    /// Whether every write is followed by fsync (paper §V: "Write
    /// synchronization or fsync flushes the file to the storage server's
    /// device after each write").
    pub fsync: bool,
    /// File-per-process (N-N) versus shared file (N-1). The paper uses
    /// N-N throughout (§IV.C.1).
    pub file_per_proc: bool,
    /// Whether the benchmark defeats client-side caches (IOR task
    /// reordering / reading from nodes other than the writers, §V).
    pub client_cache_defeated: bool,
    /// Metadata RPCs issued per *byte* moved, on top of the one data
    /// operation per transfer. Bulk workloads (one file per rank,
    /// §IV.C.1) amortize metadata to ~0; file-per-sample DL input
    /// pipelines (a JPEG per sample, §VI.B) pay several RPCs per tiny
    /// file, which is what saturates an NFS server's operation rate
    /// long before its byte rate.
    #[serde(default)]
    pub metadata_ops_per_byte: f64,
}

impl PhaseSpec {
    /// Sequential write phase (the scientific-simulation proxy).
    pub fn seq_write(transfer_size: f64, bytes_per_rank: f64) -> Self {
        PhaseSpec {
            op: IoOp::Write,
            pattern: AccessPattern::Sequential,
            transfer_size,
            bytes_per_rank,
            fsync: false,
            file_per_proc: true,
            client_cache_defeated: true,
            metadata_ops_per_byte: 0.0,
        }
    }

    /// Sequential read phase (the data-analytics proxy).
    pub fn seq_read(transfer_size: f64, bytes_per_rank: f64) -> Self {
        PhaseSpec {
            op: IoOp::Read,
            pattern: AccessPattern::Sequential,
            ..Self::seq_write(transfer_size, bytes_per_rank)
        }
    }

    /// Random read phase (the ML proxy).
    pub fn random_read(transfer_size: f64, bytes_per_rank: f64) -> Self {
        PhaseSpec {
            op: IoOp::Read,
            pattern: AccessPattern::Random,
            ..Self::seq_write(transfer_size, bytes_per_rank)
        }
    }

    /// Enables or disables per-write fsync.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Overrides the client-cache-defeated flag.
    pub fn with_client_cache_defeated(mut self, defeated: bool) -> Self {
        self.client_cache_defeated = defeated;
        self
    }

    /// Sets the metadata RPC density (RPCs per byte moved).
    pub fn with_metadata_ops_per_byte(mut self, ops_per_byte: f64) -> Self {
        self.metadata_ops_per_byte = ops_per_byte;
        self
    }

    /// Total operations (data + metadata) issued per byte moved.
    pub fn ops_per_byte(&self) -> f64 {
        1.0 / self.transfer_size + self.metadata_ops_per_byte
    }

    /// Number of operations each rank performs.
    pub fn ops_per_rank(&self) -> f64 {
        (self.bytes_per_rank / self.transfer_size).ceil()
    }

    /// Total bytes the phase moves for a given scale.
    pub fn total_bytes(&self, nodes: u32, ppn: u32) -> f64 {
        self.bytes_per_rank * nodes as f64 * ppn as f64
    }

    /// Validates the spec.
    ///
    /// # Panics
    /// Panics on non-positive sizes or a transfer larger than the phase.
    pub fn validate(&self) {
        assert!(self.transfer_size > 0.0, "transfer size must be positive");
        assert!(self.bytes_per_rank > 0.0, "bytes per rank must be positive");
        assert!(
            self.transfer_size <= self.bytes_per_rank,
            "transfer ({}) larger than phase ({})",
            self.transfer_size,
            self.bytes_per_rank
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcs_simkit::units::MIB;

    #[test]
    fn presets_map_to_paper_workloads() {
        let sci = PhaseSpec::seq_write(MIB, 3000.0 * MIB);
        assert_eq!(sci.op, IoOp::Write);
        assert_eq!(sci.pattern, AccessPattern::Sequential);

        let da = PhaseSpec::seq_read(MIB, 3000.0 * MIB);
        assert_eq!(da.op, IoOp::Read);
        assert_eq!(da.pattern, AccessPattern::Sequential);

        let ml = PhaseSpec::random_read(MIB, 3000.0 * MIB);
        assert_eq!(ml.op, IoOp::Read);
        assert_eq!(ml.pattern, AccessPattern::Random);
    }

    #[test]
    fn ops_and_totals() {
        let p = PhaseSpec::seq_write(MIB, 3000.0 * MIB);
        assert_eq!(p.ops_per_rank(), 3000.0);
        // 128 nodes × 44 ppn × ~2.93 GiB ≈ 16.5 TiB
        let total = p.total_bytes(128, 44);
        assert!((total - 3000.0 * MIB * 128.0 * 44.0).abs() < 1.0);
    }

    #[test]
    fn builder_flags() {
        let p = PhaseSpec::seq_write(MIB, MIB)
            .with_fsync(true)
            .with_client_cache_defeated(false);
        assert!(p.fsync);
        assert!(!p.client_cache_defeated);
    }

    #[test]
    #[should_panic(expected = "larger than phase")]
    fn validate_rejects_oversized_transfer() {
        PhaseSpec::seq_write(2.0 * MIB, MIB).validate();
    }
}
