//! Multi-phase job campaigns: compute/checkpoint/restart cycles.
//!
//! The paper's scientific workload class is checkpoint-shaped — HACC-I/O
//! "emulates checkpoint/restart on simulation data" (§III.B), and the
//! background cites the optimal checkpoint/restart interval literature.
//! A [`JobScript`] strings alternating compute and I/O steps into one
//! job and runs them serially against a storage system, yielding the
//! job-level numbers an application team plans with: total wall time,
//! I/O fraction, and the checkpoint overhead a given storage system
//! imposes.
//!
//! [`young_interval`] gives Young's first-order optimal checkpoint
//! period for a measured checkpoint cost — so the suite can answer "on
//! this storage system, how often should this job checkpoint?"

use serde::{Deserialize, Serialize};

use crate::phase::PhaseSpec;
use crate::runner::{run_phase, run_phase_traced_labeled};
use crate::system::StorageSystem;
use crate::telemetry::Recorder;

/// One step of a job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobStep {
    /// Pure computation for a fixed time.
    Compute {
        /// Seconds of computation.
        seconds: f64,
    },
    /// A labeled I/O phase executed by every rank.
    Io {
        /// Step label ("checkpoint", "restart", "analysis dump"...).
        label: String,
        /// The phase.
        phase: PhaseSpec,
    },
}

/// A serial multi-step job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobScript {
    /// Job name.
    pub name: String,
    /// Steps, executed in order with a barrier between steps (bulk-
    /// synchronous, like the applications of §III.B).
    pub steps: Vec<JobStep>,
}

impl JobScript {
    /// A classic checkpoint/restart cycle job: one initial restart
    /// read, then `cycles` × (compute + synchronized checkpoint write).
    pub fn checkpoint_restart(
        compute_per_cycle: f64,
        cycles: u32,
        state_bytes_per_rank: f64,
        transfer_size: f64,
    ) -> Self {
        let mut steps = vec![JobStep::Io {
            label: "restart".into(),
            phase: PhaseSpec::seq_read(transfer_size, state_bytes_per_rank),
        }];
        for _ in 0..cycles {
            steps.push(JobStep::Compute {
                seconds: compute_per_cycle,
            });
            steps.push(JobStep::Io {
                label: "checkpoint".into(),
                phase: PhaseSpec::seq_write(transfer_size, state_bytes_per_rank).with_fsync(true),
            });
        }
        JobScript {
            name: "checkpoint-restart".into(),
            steps,
        }
    }

    /// Runs the job against a storage system at the given scale.
    pub fn run(&self, system: &dyn StorageSystem, nodes: u32, ppn: u32) -> JobOutcome {
        self.run_impl(system, nodes, ppn, None)
    }

    /// Runs the job while feeding step-labeled telemetry into
    /// `recorder`: each I/O step becomes a traced phase (flow and
    /// resource events under the step's label), each compute step a
    /// compute span. The outcome is bit-identical to [`Self::run`]'s.
    pub fn run_traced(
        &self,
        system: &dyn StorageSystem,
        nodes: u32,
        ppn: u32,
        recorder: &mut Recorder,
    ) -> JobOutcome {
        self.run_impl(system, nodes, ppn, Some(recorder))
    }

    fn run_impl(
        &self,
        system: &dyn StorageSystem,
        nodes: u32,
        ppn: u32,
        mut recorder: Option<&mut Recorder>,
    ) -> JobOutcome {
        let mut per_step = Vec::with_capacity(self.steps.len());
        let mut compute = 0.0;
        let mut io = 0.0;
        for step in &self.steps {
            match step {
                JobStep::Compute { seconds } => {
                    compute += seconds;
                    if let Some(rec) = recorder.as_deref_mut() {
                        rec.record_compute("compute", *seconds);
                    }
                    per_step.push(("compute".to_string(), *seconds));
                }
                JobStep::Io { label, phase } => {
                    let out = match recorder.as_deref_mut() {
                        Some(rec) => {
                            run_phase_traced_labeled(label, system, nodes, ppn, phase, rec)
                        }
                        None => run_phase(system, nodes, ppn, phase),
                    };
                    io += out.duration;
                    per_step.push((label.clone(), out.duration));
                }
            }
        }
        JobOutcome {
            system: system.description(),
            job: self.name.clone(),
            nodes,
            ppn,
            total: compute + io,
            compute,
            io,
            per_step,
        }
    }
}

/// Job-level outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Storage system description.
    pub system: String,
    /// Job name.
    pub job: String,
    /// Nodes used.
    pub nodes: u32,
    /// Ranks per node.
    pub ppn: u32,
    /// Total wall time, seconds.
    pub total: f64,
    /// Compute seconds.
    pub compute: f64,
    /// I/O seconds.
    pub io: f64,
    /// Per-step `(label, seconds)` in execution order.
    pub per_step: Vec<(String, f64)>,
}

impl JobOutcome {
    /// Fraction of wall time spent in I/O.
    pub fn io_fraction(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.io / self.total
        }
    }

    /// Total seconds of the steps with the given label.
    pub fn step_total(&self, label: &str) -> f64 {
        self.per_step
            .iter()
            .filter(|(l, _)| l == label)
            .map(|(_, t)| t)
            .sum()
    }
}

/// Young's first-order optimal checkpoint interval: `√(2 · C · MTBF)`,
/// where `C` is the cost of one checkpoint and `MTBF` the system's mean
/// time between failures. Checkpointing more often wastes I/O;
/// less often wastes recomputation after failures.
///
/// # Panics
/// Panics on non-positive inputs.
pub fn young_interval(checkpoint_seconds: f64, mtbf_seconds: f64) -> f64 {
    assert!(checkpoint_seconds > 0.0, "checkpoint cost must be positive");
    assert!(mtbf_seconds > 0.0, "MTBF must be positive");
    (2.0 * checkpoint_seconds * mtbf_seconds).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::UniformSystem;
    use hcs_simkit::units::{GIB, MIB};

    fn toy() -> UniformSystem {
        UniformSystem::new("toy", 10.0 * GIB)
    }

    #[test]
    fn checkpoint_restart_structure() {
        let job = JobScript::checkpoint_restart(100.0, 3, GIB, MIB);
        // restart + 3 × (compute, checkpoint) = 7 steps.
        assert_eq!(job.steps.len(), 7);
        match &job.steps[0] {
            JobStep::Io { label, phase } => {
                assert_eq!(label, "restart");
                assert!(!phase.fsync);
            }
            _ => panic!("first step is the restart read"),
        }
        match &job.steps[2] {
            JobStep::Io { label, phase } => {
                assert_eq!(label, "checkpoint");
                assert!(phase.fsync, "checkpoints are synchronized");
            }
            _ => panic!("third step is a checkpoint"),
        }
    }

    #[test]
    fn accounting_adds_up() {
        let sys = toy();
        let job = JobScript::checkpoint_restart(50.0, 4, GIB, MIB);
        let out = job.run(&sys, 2, 8);
        assert!((out.compute - 200.0).abs() < 1e-9);
        assert!((out.total - out.compute - out.io).abs() < 1e-9);
        assert!(out.io > 0.0);
        assert_eq!(out.per_step.len(), 9);
        // One restart + four checkpoints.
        assert!(out.step_total("restart") > 0.0);
        assert!(out.step_total("checkpoint") > out.step_total("restart"));
        assert!((0.0..1.0).contains(&out.io_fraction()));
    }

    #[test]
    fn faster_storage_cuts_io_fraction() {
        let slow = UniformSystem::new("slow", 1.0 * GIB);
        let fast = UniformSystem::new("fast", 100.0 * GIB);
        let job = JobScript::checkpoint_restart(10.0, 4, GIB, MIB);
        let s = job.run(&slow, 4, 8).io_fraction();
        let f = job.run(&fast, 4, 8).io_fraction();
        assert!(s > 5.0 * f, "slow {s} vs fast {f}");
    }

    #[test]
    fn young_interval_math() {
        // C = 50 s, MTBF = 24 h → ~2940 s between checkpoints.
        let t = young_interval(50.0, 24.0 * 3600.0);
        assert!((t - (2.0_f64 * 50.0 * 86400.0).sqrt()).abs() < 1e-9);
        assert!((2930.0..2950.0).contains(&t));
        // Cheaper checkpoints → checkpoint more often.
        assert!(young_interval(5.0, 86400.0) < t);
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn young_rejects_bad_mtbf() {
        young_interval(10.0, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let job = JobScript::checkpoint_restart(10.0, 2, GIB, MIB);
        let back: JobScript = serde_json::from_str(&serde_json::to_string(&job).unwrap()).unwrap();
        assert_eq!(back, job);
    }
}
